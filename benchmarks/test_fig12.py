"""E9 / Fig. 12: remote DMA write bandwidth to the adjacent node."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import fig12
from repro.bench.harness import TwoNodeRig
from repro.units import KiB


def test_fig12_full_sweep(benchmark):
    table = benchmark.pedantic(fig12, rounds=1, iterations=1)
    record_table(table.render())
    remote_cpu = table.series["remote CPU"]
    local_cpu = table.series["local CPU (write)"]
    remote_gpu = table.series["remote GPU"]
    local_gpu = table.series["local GPU (write)"]
    # "The bandwidth to the CPU memory decreases for the small data size."
    assert remote_cpu.y_at(512) < 0.6 * local_cpu.y_at(512)
    # "The bandwidth at 4 Kbytes is approximately the same."
    assert remote_cpu.y_at(4 * KiB) == pytest.approx(
        local_cpu.y_at(4 * KiB), rel=0.05)
    # "The bandwidth to the GPU memory is approximately the same as the
    # bandwidth within a node" at every size.
    for size, y in remote_gpu.points:
        assert y == pytest.approx(local_gpu.y_at(size), rel=0.05)


@pytest.mark.parametrize("target", ["cpu", "gpu"])
def test_fig12_cell_4k(benchmark, target):
    def cell():
        rig = TwoNodeRig()
        _, bw = rig.measure_remote_write(4 * KiB, target)
        return bw

    bw = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert bw > 3.0
