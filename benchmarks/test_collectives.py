"""E18: TCA-native collectives vs MPI over InfiniBand."""

from benchmarks.conftest import record_table
from repro.bench.experiments import collectives
from repro.units import KiB


def test_collectives(benchmark):
    table = benchmark.pedantic(collectives, rounds=1, iterations=1)
    record_table(table.render())
    tca = table.series["tca"]
    mpi = table.series["mpi-ib"]
    # No MPI stack at the sub-cluster level (§V): the flag-synchronized
    # PIO allgather wins for small blocks...
    assert tca.y_at(1 * KiB) < 0.8 * mpi.y_at(1 * KiB)
    # ...while a QDR rail out-streams the two-phase DMAC for bulk.
    assert mpi.y_at(64 * KiB) < tca.y_at(64 * KiB)
