"""E4 / Fig. 7: data size vs bandwidth, 255 chained DMAs, CPU/GPU x R/W."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import fig7
from repro.bench.harness import SingleNodeRig
from repro.units import KiB


def test_fig7_full_sweep(benchmark):
    table = benchmark.pedantic(fig7, rounds=1, iterations=1)
    record_table(table.render())
    write_cpu = table.series["CPU (write)"]
    read_cpu = table.series["CPU (read)"]
    read_gpu = table.series["GPU (read)"]
    # Shape assertions straight from the paper's text.
    assert write_cpu.y_at(4 * KiB) == pytest.approx(3.3, abs=0.1)
    assert read_gpu.peak == pytest.approx(0.83, abs=0.02)
    assert read_cpu.y_at(256) < write_cpu.y_at(256)
    assert read_cpu.y_at(4 * KiB) > 0.8 * write_cpu.y_at(4 * KiB)
    # Monotone rise to the 4 KB peak.
    ys = [y for _, y in sorted(write_cpu.points)]
    assert ys == sorted(ys)


@pytest.mark.parametrize("op,target", [("write", "cpu"), ("write", "gpu"),
                                       ("read", "cpu"), ("read", "gpu")])
def test_fig7_cell_4k(benchmark, op, target):
    def cell():
        rig = SingleNodeRig()
        _, bw = rig.measure(op, target, 4 * KiB, 255)
        return bw

    bw = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert bw > 0.5
