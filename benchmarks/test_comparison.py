"""E10: the motivation comparison — TCA vs MPI/IB paths, host and GPU."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import comparison_gpu, comparison_host
from repro.baselines.paths import TCADMAPath, TCAPIOPath, VerbsPath
from repro.units import KiB, MiB


def test_comparison_host(benchmark):
    table = benchmark.pedantic(comparison_host, rounds=1, iterations=1)
    record_table(table.render())
    # Short messages: TCA PIO wins outright (the paper's core claim).
    assert (table.series["tca-pio"].y_at(8)
            < table.series["ib-verbs"].y_at(8)
            < table.series["mpi-ib"].y_at(8))
    # Large messages: a QDR rail out-streams the two-phase DMAC.
    assert (table.series["ib-verbs"].y_at(1 * MiB)
            < table.series["tca-dma"].y_at(1 * MiB))


def test_comparison_gpu(benchmark):
    table = benchmark.pedantic(comparison_gpu, rounds=1, iterations=1)
    record_table(table.render())
    # Short GPU-GPU messages: TCA DMA beats both MPI paths (it can tie
    # GDR at 8 B where both are dominated by their ~1 us fixed costs).
    assert (table.series["tca-dma-gpu"].y_at(8)
            <= table.series["gpu-mpi-gdr"].y_at(8)
            < table.series["gpu-mpi-3copy"].y_at(8))
    assert (table.series["tca-dma-gpu"].y_at(512)
            <= table.series["gpu-mpi-gdr"].y_at(512))
    assert (table.series["tca-dma-gpu"].y_at(4096)
            < table.series["gpu-mpi-gdr"].y_at(4096))
    # The three-copy path is ~4-5x worse for short messages (§I).
    assert (table.series["gpu-mpi-3copy"].y_at(64)
            > 3 * table.series["tca-dma-gpu"].y_at(64))
    # Large messages: the pipelined host-staged path wins (GPU BAR reads
    # cap both direct paths at ~830 MB/s).
    assert (table.series["gpu-mpi-pipelined"].y_at(1 * MiB)
            < table.series["tca-dma-gpu"].y_at(1 * MiB))


@pytest.mark.parametrize("path_cls,size", [
    (TCAPIOPath, 8),
    (TCADMAPath, 4 * KiB),
    (VerbsPath, 4 * KiB),
])
def test_comparison_cell(benchmark, path_cls, size):
    def cell():
        return path_cls().transfer(size).latency_us

    benchmark.pedantic(cell, rounds=3, iterations=1)
