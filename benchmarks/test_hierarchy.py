"""E17: the §II-B hierarchical network — TCA locally, InfiniBand globally."""

from benchmarks.conftest import record_table
from repro.bench.experiments import hierarchy
from repro.units import KiB


def test_hierarchy(benchmark):
    table = benchmark.pedantic(hierarchy, rounds=1, iterations=1)
    record_table(table.render())
    local = table.series["local (TCA)"]
    global_ = table.series["global (IB)"]
    # "TCA interconnect for local communication with low latency":
    assert local.y_at(64) < 0.5 * global_.y_at(64)
    assert local.y_at(1 * KiB) < global_.y_at(1 * KiB)
    # "InfiniBand for global communication with high bandwidth":
    assert global_.y_at(256 * KiB) < local.y_at(256 * KiB)
