"""Benchmark-suite configuration.

Each ``benchmarks/test_*.py`` module regenerates one paper table/figure:
a full-sweep run (executed once, its paper-style table printed to the
report) plus pytest-benchmark timings of representative cells.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import List

import pytest

_tables: List[str] = []


def record_table(text: str) -> None:
    """Collect a rendered experiment table for the terminal summary."""
    _tables.append(text)


@pytest.hookimpl(trylast=True)
def pytest_terminal_summary(terminalreporter):
    if not _tables:
        return
    terminalreporter.section("paper tables/figures (regenerated)")
    for text in _tables:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
