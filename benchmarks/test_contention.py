"""E19: ring contention under simultaneous k-hop shift traffic."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import contention
from repro.units import KiB


def test_contention(benchmark):
    table = benchmark.pedantic(
        lambda: contention(ring_sizes=(4, 8, 16), nbytes=64 * KiB),
        rounds=1, iterations=1)
    record_table(table.render())
    ring16 = table.series["16-node ring"]
    # Per-flow bandwidth falls roughly as 1/k (each flow's packets occupy
    # k consecutive ring links, §II-B's scaling limit); at 64 KiB per
    # flow the ~2 us fixed chain overhead softens the small-k ratios.
    one_hop = ring16.y_at(1)
    assert ring16.y_at(2) < 0.75 * one_hop
    assert ring16.y_at(8) == pytest.approx(one_hop / 8, rel=0.4)
    assert ring16.y_at(8) < ring16.y_at(2) < one_hop
    # And the run completed at all: bubble flow control prevented the
    # cyclic-saturation deadlock this workload otherwise creates.
