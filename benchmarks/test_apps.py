"""Application-level benchmarks on the sub-cluster (ping-pong, collectives,
halo exchange) — the workloads the paper's applications motivate (§II)."""

import pytest

from benchmarks.conftest import record_table
from repro.apps.allgather import ring_allgather
from repro.apps.halo import HaloExchange2D
from repro.apps.pingpong import pingpong_rtt_ns
from repro.hw.node import NodeParams
from repro.tca.subcluster import TCASubCluster


def _cluster(n):
    return TCASubCluster(n, node_params=NodeParams(num_gpus=1))


def test_pingpong(benchmark):
    def cell():
        return pingpong_rtt_ns(_cluster(2), iterations=8)

    rtt = benchmark.pedantic(cell, rounds=3, iterations=1)
    record_table(f"PIO ping-pong RTT (2 nodes): {rtt:.0f} ns "
                 f"(one-way {rtt / 2:.0f} ns)")
    assert rtt < 1800


def test_allgather_4nodes(benchmark):
    def cell():
        cluster = _cluster(4)
        ring_allgather(cluster, block_bytes=4096)
        return cluster.engine.now_ns

    sim_ns = benchmark.pedantic(cell, rounds=3, iterations=1)
    record_table(f"ring allgather, 4 nodes x 4 KiB blocks: "
                 f"{sim_ns / 1000:.1f} us simulated")
    assert sim_ns > 0


def test_halo_exchange(benchmark):
    def cell():
        cluster = _cluster(4)
        halo = HaloExchange2D(cluster, rows=32, cols_per_node=16)
        stats = halo.run(2)
        return stats

    stats = benchmark.pedantic(cell, rounds=2, iterations=1)
    record_table(
        f"2-D halo exchange (4 nodes, 32x16 strips, 2 iters): "
        f"{stats.total_ns / 1000:.1f} us simulated, "
        f"{stats.exchange_fraction * 100:.0f}% exchange")
    assert stats.iterations == 2
