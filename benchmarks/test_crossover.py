"""E16: the PIO/DMA transport split of §III-F."""

from benchmarks.conftest import record_table
from repro.bench.experiments import pio_dma_crossover
from repro.units import KiB


def test_pio_dma_crossover(benchmark):
    table = benchmark.pedantic(pio_dma_crossover, rounds=1, iterations=1)
    record_table(table.render())
    pio = table.series["tca-pio"]
    dma = table.series["tca-dma"]
    # "PIO communication is useful for the short message transfer": PIO
    # wins below ~2 KB, the DMA machinery wins beyond.
    assert pio.y_at(64) < dma.y_at(64)
    assert pio.y_at(1 * KiB) < dma.y_at(1 * KiB)
    assert dma.y_at(4 * KiB) < pio.y_at(4 * KiB)
    assert dma.y_at(16 * KiB) < pio.y_at(16 * KiB)
