"""E1/E2/E3: specification tables and Eq. (1)."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import table1, table2, theory


def test_table1(benchmark):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_table(text)
    assert "802 TFlops" in text


def test_table2(benchmark):
    text = benchmark.pedantic(table2, rounds=1, iterations=1)
    record_table(text)
    assert "NVIDIA K20" in text


def test_theory_eq1(benchmark):
    numbers = benchmark.pedantic(theory, rounds=1, iterations=1)
    record_table("Eq. (1) and bounds:\n" + "\n".join(
        f"  {k} = {v:.3f}" for k, v in numbers.items()))
    assert numbers["eq1_peak_gbytes"] == pytest.approx(3.66, abs=0.01)
    assert numbers["gpu_read_bound_gbytes"] == pytest.approx(0.83, abs=0.01)
