"""E7 / §IV-A2: GPU-read ceiling and QPI peer-to-peer degradation."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import limits


def test_limits(benchmark):
    numbers = benchmark.pedantic(limits, rounds=1, iterations=1)
    record_table("§IV-A2 limits:\n" + "\n".join(
        f"  {k} = {v:.3f} GB/s" for k, v in numbers.items()))
    # "the maximum DMA read performance is only 830 Mbytes/sec"
    assert numbers["gpu_read_gbytes"] == pytest.approx(0.83, abs=0.02)
    # "DMA write access to the GPU on another socket over QPI is severely
    # degraded by up to several hundred Mbytes/sec"
    assert numbers["gpu_write_over_qpi_gbytes"] < 0.5
    assert numbers["gpu_write_same_socket_gbytes"] > 3.0
