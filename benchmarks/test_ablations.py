"""E11/E12/E14: design-choice ablations.

* E11 — the §IV-B2 two-phase DMAC vs the announced pipelined DMAC;
* E12 — ring size vs worst-case latency (why sub-clusters are 8-16 nodes);
* E14 — NTB (related work) vs PEACH2: latency parity, operability gap.
"""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import ablation_dmac, ablation_ntb, ablation_ring
from repro.baselines.paths import TCADMAPath
from repro.units import KiB, MiB


def test_ablation_dmac(benchmark):
    table = benchmark.pedantic(ablation_dmac, rounds=1, iterations=1)
    record_table(table.render())
    two_phase = table.series["tca-dma"]
    pipelined = table.series["tca-dma-pipelined"]
    # The pipelined engine roughly doubles large-put bandwidth — the
    # reason the paper announces it as the successor design.
    assert pipelined.y_at(1 * MiB) > 1.7 * two_phase.y_at(1 * MiB)
    assert pipelined.y_at(1 * MiB) == pytest.approx(3.3, abs=0.2)


def test_ablation_ring(benchmark):
    table = benchmark.pedantic(ablation_ring, rounds=1, iterations=1)
    record_table(table.render())
    lat = table.series["one-way latency"]
    # Latency to the antipodal node grows with ring size: at 16 nodes the
    # worst case is several times the adjacent-node figure — the §II-B
    # rationale for keeping sub-clusters at 8-16 nodes.
    assert lat.y_at(2) < lat.y_at(4) < lat.y_at(8) < lat.y_at(16)
    assert lat.y_at(16) > 2.5 * lat.y_at(2)


def test_ablation_ntb(benchmark):
    numbers = benchmark.pedantic(ablation_ntb, rounds=1, iterations=1)
    record_table("E14 NTB vs PEACH2:\n" + "\n".join(
        f"  {k} = {v}" for k, v in numbers.items()))
    # Data-path latency is comparable...
    ratio = (numbers["ntb_store_latency_ns"]
             / numbers["peach2_store_latency_ns"])
    assert 0.8 < ratio < 1.4
    # ...but the failure modes differ exactly as §V argues.
    assert numbers["ntb_hosts_require_reboot_after_unplug"] is True
    assert numbers["peach2_host_link_up_after_ring_cut"] is True


def test_pipelined_put_cell(benchmark):
    def cell():
        return TCADMAPath(pipelined=True).transfer(256 * KiB).bandwidth_gbytes

    bw = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert bw > 2.5
