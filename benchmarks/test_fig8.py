"""E5 / Fig. 8: data size vs bandwidth for a single DMA request."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import fig8
from repro.bench.harness import SingleNodeRig
from repro.units import KiB


def test_fig8_full_sweep(benchmark):
    table = benchmark.pedantic(fig8, rounds=1, iterations=1)
    record_table(table.render())
    write_cpu = table.series["CPU (write)"]
    # Severe degradation below the knee; recovering by 32 KB.
    assert write_cpu.y_at(1 * KiB) < 0.5
    assert write_cpu.y_at(4 * KiB) < 1.3
    assert write_cpu.y_at(32 * KiB) > 2.4
    ys = [y for _, y in sorted(write_cpu.points)]
    assert ys == sorted(ys)


def test_fig8_single_4k_write(benchmark):
    def cell():
        rig = SingleNodeRig()
        _, bw = rig.measure("write", "cpu", 4 * KiB, count=1)
        return bw

    bw = benchmark.pedantic(cell, rounds=5, iterations=1)
    assert 0.8 < bw < 1.4
