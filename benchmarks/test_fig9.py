"""E6 / Fig. 9: number of DMA requests vs bandwidth at 4 Kbytes."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import fig9
from repro.bench.harness import SingleNodeRig
from repro.units import KiB


def test_fig9_full_sweep(benchmark):
    table = benchmark.pedantic(fig9, rounds=1, iterations=1)
    record_table(table.render())
    write_cpu = table.series["CPU (write)"]
    peak = write_cpu.y_at(255)
    # "DMA transfer including four requests achieves approximately 70% of
    # the maximum performance."
    assert write_cpu.y_at(4) / peak == pytest.approx(0.70, abs=0.07)
    ys = [y for _, y in sorted(write_cpu.points)]
    assert ys == sorted(ys)


@pytest.mark.parametrize("count", [1, 4, 255])
def test_fig9_cell(benchmark, count):
    def cell():
        rig = SingleNodeRig()
        _, bw = rig.measure("write", "cpu", 4 * KiB, count)
        return bw

    benchmark.pedantic(cell, rounds=3, iterations=1)
