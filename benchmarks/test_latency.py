"""E8 / Fig. 10 + §IV-B1: PIO loopback latency through two PEACH2 chips."""

import pytest

from benchmarks.conftest import record_table
from repro.bench.experiments import latency
from repro.bench.loopback import LoopbackRig


def test_latency_report(benchmark):
    numbers = benchmark.pedantic(latency, rounds=1, iterations=1)
    record_table("Fig. 10 PIO loopback latency:\n" + "\n".join(
        f"  {k} = {v:.1f} ns" for k, v in numbers.items()))
    assert numbers["pio_one_way_ns"] == pytest.approx(782.0, abs=1.0)
    assert numbers["pio_one_way_ns"] < numbers["infiniband_fdr_claim_ns"]


def test_latency_single_store(benchmark):
    def cell():
        return LoopbackRig().pio_commit_latency_ns()

    ns_value = benchmark.pedantic(cell, rounds=3, iterations=1)
    assert ns_value == pytest.approx(782.0, abs=1.0)
