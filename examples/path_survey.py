#!/usr/bin/env python3
"""Survey of GPU-to-GPU and host-to-host communication paths.

Reproduces the paper's motivation (§I): the conventional three-copy
GPU-to-GPU path over MPI+InfiniBand versus direct TCA communication, plus
the IB+GPUDirect-RDMA middle ground.  Shows where each path wins.

Run:  python examples/path_survey.py          (quick survey)
      python examples/path_survey.py --full   (more sizes)
"""

import sys

from repro.baselines.paths import (ConventionalPath, GDRPath, MPIHostPath,
                                   TCADMAPath, TCAPIOPath, VerbsPath)
from repro.units import KiB, MiB, pretty_size


def survey(title, paths, sizes):
    print(f"\n== {title} ==")
    names = [p.name for p in paths]
    print(f"{'size':>6} | " + " | ".join(f"{n:>18}" for n in names))
    print("-" * (9 + 21 * len(names)))
    for size in sizes:
        cells = []
        for path in paths:
            try:
                result = path.transfer(size)
            except Exception:
                cells.append(f"{'-':>18}")
                continue
            if result.latency_us < 100:
                cells.append(f"{result.latency_us:>12.2f} us   ")
            else:
                cells.append(f"{result.bandwidth_gbytes:>12.2f} GB/s ")
        print(f"{pretty_size(size):>6} | " + " | ".join(cells))


def main(tiny: bool = False) -> None:
    full = "--full" in sys.argv and not tiny
    if tiny:
        host_sizes = [8, 4 * KiB]
    elif full:
        host_sizes = [8, 64, 512, 4 * KiB, 32 * KiB, 256 * KiB, 1 * MiB,
                      4 * MiB]
    else:
        host_sizes = [8, 256, 4 * KiB, 64 * KiB, 1 * MiB]
    gpu_sizes = host_sizes if full or tiny else host_sizes[1:]

    survey("host-to-host (one-way, observed at destination)",
           [TCAPIOPath(), TCADMAPath(), TCADMAPath(pipelined=True),
            VerbsPath(), MPIHostPath()],
           host_sizes)

    survey("GPU-to-GPU across nodes",
           [TCADMAPath(gpu=True), GDRPath(), ConventionalPath(),
            ConventionalPath(chunk_bytes=256 * KiB)],
           gpu_sizes)

    print("""
reading the table:
  * small messages: TCA wins outright — no MPI stack, no staging copies,
    sub-microsecond PIO (the paper's 782 ns anchor).
  * large host messages: a QDR IB rail out-streams the *current*
    two-phase DMAC; the pipelined next-generation DMAC (§IV-B2) closes
    that gap to the PCIe line rate.
  * large GPU messages: every path that READS GPU memory over PCIe hits
    the ~830 MB/s BAR1 ceiling (§IV-A2); the host-staged pipeline avoids
    it because cudaMemcpy D2H is a GPU-side *write*.
""")


if __name__ == "__main__":
    main()
