#!/usr/bin/env python3
"""Collectives on the TCA sub-cluster: ping-pong and ring allgather.

Shows the programming style TCA enables at the sub-cluster level (§I):
no explicit MPI — remote memory is just addresses, synchronization is a
flag store that PCIe ordering guarantees arrives after the data.

Run:  python examples/ring_collectives.py
"""

from repro.apps.allgather import ring_allgather
from repro.apps.pingpong import pingpong_rtt_ns
from repro.hw.node import NodeParams
from repro.tca.subcluster import DUAL_RING, TCASubCluster
from repro.units import KiB


def main() -> None:
    print("PIO ping-pong (round trip / 2 = one-way latency):")
    for hops, peer in ((1, 1), (2, 2), (4, 4)):
        cluster = TCASubCluster(8, node_params=NodeParams(num_gpus=1))
        rtt = pingpong_rtt_ns(cluster, 0, peer, iterations=8)
        print(f"  node0 <-> node{peer} ({hops} hop{'s' if hops > 1 else ''}):"
              f" RTT {rtt:7.0f} ns,  one-way {rtt / 2:6.0f} ns")

    print("\nring allgather (every node ends with every block):")
    for n, block in ((4, 4 * KiB), (8, 4 * KiB), (8, 64 * KiB)):
        cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1))
        ring_allgather(cluster, block_bytes=block)
        sim_us = cluster.engine.now_ns / 1000
        moved = (n - 1) * n * block / 1024
        print(f"  {n} nodes x {block // 1024:3d} KiB blocks: "
              f"{sim_us:8.1f} us simulated ({moved:.0f} KiB moved)")

    print("\ndual-ring topology (S-port coupling, §III-D):")
    cluster = TCASubCluster(8, topology=DUAL_RING,
                            node_params=NodeParams(num_gpus=1))
    print(f"  rings: {cluster.rings()}")
    rtt = pingpong_rtt_ns(cluster, 0, 4, iterations=4)  # cross-ring pair
    print(f"  cross-ring node0 <-> node4 (one S hop): RTT {rtt:.0f} ns")
    ring_allgather(cluster, block_bytes=4 * KiB)
    print(f"  allgather over both rings: {cluster.engine.now_ns / 1000:.1f} "
          "us simulated, verified")


if __name__ == "__main__":
    main()
