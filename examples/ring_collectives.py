#!/usr/bin/env python3
"""Collectives on the TCA sub-cluster, via ``repro.collectives``.

Shows the programming style TCA enables at the sub-cluster level (§I):
no explicit MPI — remote memory is just addresses, synchronization is a
flag store that PCIe ordering guarantees arrives after the data.  The
``repro.collectives`` subsystem composes chained-DMA puts into ring
allgather / reduce-scatter / allreduce / broadcast / barrier, and on a
dual-ring topology (§III-D) runs a hierarchical allreduce over both
rings at once (docs/collectives.md).

Run:  python examples/ring_collectives.py
"""

from repro.apps.pingpong import pingpong_rtt_ns
from repro.collectives import (ring_allgather, ring_allreduce,
                               ring_barrier, ring_broadcast)
from repro.hw.node import NodeParams
from repro.tca.subcluster import DUAL_RING, TCASubCluster
from repro.units import KiB


def main(tiny: bool = False) -> None:
    """Run every scenario; ``tiny=True`` shrinks sizes for smoke tests."""
    pingpong_pairs = ((1, 1),) if tiny else ((1, 1), (2, 2), (4, 4))
    gather_cases = (((4, 4 * KiB),) if tiny else
                    ((4, 4 * KiB), (8, 4 * KiB), (8, 64 * KiB)))
    iterations = 2 if tiny else 8
    ar_nodes, ar_bytes = (4, 1 * KiB) if tiny else (8, 16 * KiB)

    print("PIO ping-pong (round trip / 2 = one-way latency):")
    for hops, peer in pingpong_pairs:
        cluster = TCASubCluster(8, node_params=NodeParams(num_gpus=1))
        rtt = pingpong_rtt_ns(cluster, 0, peer, iterations=iterations)
        print(f"  node0 <-> node{peer} ({hops} hop{'s' if hops > 1 else ''}):"
              f" RTT {rtt:7.0f} ns,  one-way {rtt / 2:6.0f} ns")

    print("\nring allgather (every node ends with every block):")
    for n, block in gather_cases:
        cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1))
        ring_allgather(cluster, block_bytes=block)
        sim_us = cluster.engine.now_ns / 1000
        moved = (n - 1) * n * block / 1024
        print(f"  {n} nodes x {block // 1024:3d} KiB blocks: "
              f"{sim_us:8.1f} us simulated ({moved:.0f} KiB moved)")

    print("\nring allreduce (reduce-scatter + allgather, verified):")
    cluster = TCASubCluster(ar_nodes, node_params=NodeParams(num_gpus=1))
    ring_allreduce(cluster, nbytes=ar_bytes)
    print(f"  {ar_nodes} nodes x {ar_bytes // 1024} KiB vectors: "
          f"{cluster.engine.now_ns / 1000:.2f} us (single ring)")

    print("\nbroadcast and barrier:")
    cluster = TCASubCluster(ar_nodes, node_params=NodeParams(num_gpus=1))
    ring_broadcast(cluster, nbytes=ar_bytes, root=0)
    print(f"  bidirectional broadcast, root 0: "
          f"{cluster.engine.now_ns / 1000:.2f} us")
    cluster = TCASubCluster(ar_nodes, node_params=NodeParams(num_gpus=1))
    elapsed_ps = ring_barrier(cluster)
    print(f"  dissemination barrier: {elapsed_ps / 1e3:.0f} ns")

    print("\ndual-ring topology (S-port coupling, §III-D):")
    cluster = TCASubCluster(ar_nodes, topology=DUAL_RING,
                            node_params=NodeParams(num_gpus=1))
    print(f"  rings: {cluster.rings()}")
    rtt = pingpong_rtt_ns(cluster, 0, ar_nodes // 2, iterations=2)
    print(f"  cross-ring node0 <-> node{ar_nodes // 2} (one S hop): "
          f"RTT {rtt:.0f} ns")
    cluster = TCASubCluster(ar_nodes, topology=DUAL_RING,
                            node_params=NodeParams(num_gpus=1))
    ring_allreduce(cluster, nbytes=ar_bytes)
    print(f"  hierarchical allreduce over both rings: "
          f"{cluster.engine.now_ns / 1000:.2f} us, verified")


if __name__ == "__main__":
    main()
