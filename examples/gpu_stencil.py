#!/usr/bin/env python3
"""Multi-GPU Jacobi across nodes: kernels on GPUs, halos over TCA.

The §II application pattern end to end: the field lives in GPU memory on
every node; each iteration launches a roofline-timed kernel and exchanges
boundary rows *directly between GPUs on different nodes* over the PEACH2
ring (GPUDirect-pinned BARs on both ends) — zero host staging.

Run:  python examples/gpu_stencil.py
"""

import numpy as np

from repro.apps.gpu_stencil import GPUStencil
from repro.hw.node import NodeParams
from repro.tca.subcluster import TCASubCluster


def main(tiny: bool = False) -> None:
    nodes, rows, cols = (2, 16, 32) if tiny else (4, 64, 128)
    rounds, iterations = (1, 2) if tiny else (3, 8)
    print(f"{nodes} nodes x 1 GPU, {rows}x{cols} strip per GPU "
          f"({nodes * rows}x{cols} global), hot wall at the top\n")
    cluster = TCASubCluster(nodes, node_params=NodeParams(num_gpus=2))
    stencil = GPUStencil(cluster, rows_per_node=rows, cols=cols)

    for round_no in range(rounds):
        stats = stencil.run(iterations=iterations)
        grid = stencil.global_interior()
        frontier = int(np.argmax((grid > 0.5).sum(axis=1) == 0))
        print(f"after {iterations * (round_no + 1):2d} iterations: "
              f"heat={grid.sum():10.1f}  warm frontier at row "
              f"{frontier or nodes * rows}/{nodes * rows}  "
              f"[{stats.kernel_ns / 1e3:6.1f} us kernels, "
              f"{stats.exchange_ns / 1e3:6.1f} us halos]")

    stats = stencil.run(iterations=iterations)
    comm_fraction = stats.exchange_ns / stats.total_ns
    print(f"\ncommunication fraction at this grid size: "
          f"{comm_fraction * 100:.0f}%")
    print("halo path: GPU BAR -> PEACH2 internal memory -> ring -> "
          "remote GPU BAR (no host copies);")
    print("each halo row is one two-phase chained-DMA put with a "
          "PCIe-ordered flag behind it.")

    # Show that host memory saw (almost) none of it.
    dram_bytes = sum(cluster.node(r).dram.bytes_written
                     for r in range(nodes))
    gpu_bytes = sum(cluster.node(r).gpus[0].bytes_written
                    for r in range(nodes))
    print(f"\nbytes written to GPU memories over PCIe: {gpu_bytes:,}")
    print(f"bytes written to host DRAMs (flags only):  {dram_bytes:,}")


if __name__ == "__main__":
    main()
