#!/usr/bin/env python3
"""2-D Jacobi heat diffusion across a TCA sub-cluster.

The domain is split into vertical strips; every iteration the boundary
*columns* are exchanged with ring neighbours using chained block-stride
DMA — the multidimensional-array use case §III-B and §III-H call out for
the chaining mechanism.  Heat from the hot left wall diffuses across node
boundaries, proving the exchange carries real data.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.apps.halo import HaloExchange2D
from repro.hw.node import NodeParams
from repro.tca.subcluster import TCASubCluster


def render_strip(grid: np.ndarray) -> list:
    """Coarse ASCII heat map of one strip's interior."""
    shades = " .:-=+*#%@"
    rows = []
    for row in grid[::8, 1:-1]:
        rows.append("".join(
            shades[min(9, int(v / 100 * 9.99))] for v in row))
    return rows


def main(tiny: bool = False) -> None:
    nodes, rows, cols = (2, 16, 8) if tiny else (4, 64, 16)
    rounds, iterations = (1, 2) if tiny else (4, 8)
    print(f"{nodes}-node ring, {rows}x{cols} strip per node "
          f"({rows}x{nodes * cols} global grid), hot wall at x=0\n")
    cluster = TCASubCluster(nodes, node_params=NodeParams(num_gpus=1))
    halo = HaloExchange2D(cluster, rows=rows, cols_per_node=cols)

    total_exchange_ns = 0.0
    for round_no in range(rounds):
        stats = halo.run(iterations=iterations)
        total_exchange_ns += stats.exchange_ns
        heat = halo.global_heat()
        frontier = max(
            (rank * cols + int(np.argmax(
                halo.read_grid(rank)[rows // 2, 1:-1] > 0.5)))
            for rank in range(nodes)
            if (halo.read_grid(rank)[rows // 2, 1:-1] > 0.5).any())
        print(f"after {iterations * (round_no + 1):3d} iterations: "
              f"total heat {heat:9.1f}, warm frontier at column "
              f"{frontier}/{nodes * cols}")

    print("\nglobal heat map (every 8th row; strips joined at '|'):")
    strips = [render_strip(halo.read_grid(r)) for r in range(nodes)]
    for line_parts in zip(*strips):
        print("|".join(line_parts))

    print(f"\nhalo-exchange time: {total_exchange_ns / 1000:.1f} us of "
          f"simulated time over {rounds * iterations} iterations")
    print("each exchange = 2 chained block-stride DMAs of "
          f"{rows} x 8-byte blocks (one per ring neighbour)")


if __name__ == "__main__":
    main()
