#!/usr/bin/env python3
"""Quickstart: build a TCA sub-cluster and do direct puts between nodes.

Demonstrates the three §III-F transports on a 4-node ring:

1. PIO put   — CPU stores through the mmapped TCA window (lowest latency);
2. DMA put   — the chaining DMA controller, two-phase via internal memory;
3. GPU put   — ``tca_memcpy_peer``: the §III-H cudaMemcpyPeer-with-node-ID.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TCASubCluster, TCAComm
from repro.hw.node import NodeParams


def main(tiny: bool = False) -> None:
    """Run all three transports; ``tiny=True`` shrinks the payloads."""
    dma_bytes = 4 * 1024 if tiny else 64 * 1024
    gpu_bytes = 2 * 1024 if tiny else 32 * 1024
    print("Building a 4-node TCA sub-cluster (ring of PEACH2 boards)...")
    cluster = TCASubCluster(num_nodes=4, node_params=NodeParams(num_gpus=2))
    comm = TCAComm(cluster)
    engine = cluster.engine
    print(f"  TCA window at 0x{cluster.address_map.base:x}, "
          f"{cluster.address_map.node_stride >> 30} GiB per node\n")

    # ---- 1. PIO put: node 0 -> node 2 host memory -------------------------
    message = np.frombuffer(b"hello from node 0 over the PCIe ring!",
                            dtype=np.uint8).copy()
    dst_offset = cluster.driver(2).dma_buffer(0)
    dst_global = comm.host_global(2, dst_offset)
    t0 = engine.now_ns
    comm.put_pio(0, dst_global, message)
    engine.run()
    got = cluster.driver(2).read_dma_buffer(0, len(message))
    print(f"PIO put, node0 -> node2 ({len(message)} B): "
          f"{bytes(got).decode()!r}")
    print(f"  delivered in {engine.now_ns - t0:.0f} ns "
          "(2 ring hops, no MPI, no host staging)\n")

    # ---- 2. chained DMA put: node 1 -> node 3 ----------------------------
    payload = np.random.default_rng(42).integers(0, 256, dma_bytes,
                                                 dtype=np.uint8)
    src = cluster.driver(1).dma_buffer(0)
    cluster.node(1).dram.cpu_write(src, payload)
    dst_global = comm.host_global(3, cluster.driver(3).dma_buffer(0))

    elapsed_ps = engine.run_process(
        comm.put_dma(1, src, dst_global, len(payload)))
    engine.run()
    ok = np.array_equal(cluster.driver(3).read_dma_buffer(0, len(payload)),
                        payload)
    gbs = len(payload) / (elapsed_ps / 1e12) / 1e9
    print(f"DMA put, node1 -> node3 ({len(payload) // 1024} KiB): "
          f"verified={ok}, "
          f"{elapsed_ps / 1e6:.1f} us doorbell-to-interrupt, "
          f"{gbs:.2f} GB/s")
    print("  (two-phase through PEACH2 internal memory — the current "
          "DMAC, §IV-B2)\n")

    # ---- 3. GPU-to-GPU across nodes (§III-H) ------------------------------
    src_ptr = cluster.cuda[0].cu_mem_alloc(0, gpu_bytes)
    dst_ptr = cluster.cuda[1].cu_mem_alloc(1, gpu_bytes)
    gpu_data = np.random.default_rng(7).integers(0, 256, gpu_bytes,
                                                 dtype=np.uint8)
    cluster.cuda[0].upload(src_ptr, gpu_data)

    elapsed_ps = engine.run_process(
        comm.tca_memcpy_peer(dst_node=1, dst_ptr=dst_ptr,
                             src_node=0, src_ptr=src_ptr, nbytes=gpu_bytes))
    engine.run()
    ok = np.array_equal(cluster.cuda[1].download(dst_ptr, gpu_bytes),
                        gpu_data)
    print(f"tca_memcpy_peer, node0.GPU0 -> node1.GPU1 "
          f"({gpu_bytes // 1024} KiB): verified={ok}, "
          f"{elapsed_ps / 1e6:.1f} us")
    print("  (GPUDirect-pinned BARs on both ends; data never touches "
          "host memory)\n")

    # ---- health ------------------------------------------------------------
    print(cluster.board(0).chip.firmware.health_report())


if __name__ == "__main__":
    main()
