#!/usr/bin/env python3
"""The HA-PACS/TCA production machine: TCA sub-clusters + InfiniBand.

§VI: "the HA-PACS/TCA cluster ... will include several dozen compute
nodes (each of which has four GPUs, an InfiniBand host adaptor, and a
PEACH2 board)".  This example builds a small version of that machine —
two 4-node TCA sub-clusters on a switched QDR fabric — and shows the
hierarchical communication policy of §II-B in action.

Run:  python examples/hybrid_cluster.py
"""

import numpy as np

from repro.hw.node import NodeParams
from repro.tca.hybrid import HybridCluster, HybridComm
from repro.units import KiB, pretty_size


def main(tiny: bool = False) -> None:
    sizes = (64, 1 * KiB) if tiny else (64, 1 * KiB, 64 * KiB)
    cluster = HybridCluster(num_subclusters=2, nodes_per_subcluster=4,
                            node_params=NodeParams(num_gpus=2))
    comm = HybridComm(cluster)
    print(f"hybrid machine: {cluster.num_nodes} nodes = "
          f"2 TCA sub-clusters x 4, QDR fabric between them\n")

    pairs = [(0, 1, "same sub-cluster, adjacent"),
             (0, 2, "same sub-cluster, 2 hops"),
             (0, 4, "different sub-clusters"),
             (3, 7, "different sub-clusters")]

    print(f"{'pair':>8}  {'size':>6}  {'transport':>9}  {'time':>10}  note")
    for size in sizes:
        for src, dst, note in pairs:
            sub, local = cluster.locate(src)
            data = np.random.default_rng(src * 8 + dst).integers(
                0, 256, size, dtype=np.uint8)
            cluster.subclusters[sub].driver(local).fill_dma_buffer(0, data)
            start = cluster.engine.now_ps
            transport = cluster.engine.run_process(
                comm.put(src, dst, 0, 0x100000, size))
            elapsed_us = (cluster.engine.now_ps - start) / 1e6
            # Verify delivery.
            dsub, dlocal = cluster.locate(dst)
            got = cluster.subclusters[dsub].driver(dlocal).read_dma_buffer(
                0x100000, size)
            assert np.array_equal(got, data)
            print(f"  {src}->{dst:<3}  {pretty_size(size):>6}  "
                  f"{transport:>9}  {elapsed_us:8.2f}us  {note}")
        print()

    print(f"puts via TCA: {comm.puts_via_tca}, via InfiniBand: "
          f"{comm.puts_via_ib}")
    print("\npolicy: local + small -> PIO stores over the PCIe ring;")
    print("        local + bulk  -> chained DMA over the ring;")
    print("        global        -> MPI over the InfiniBand fabric (§II-B)")


if __name__ == "__main__":
    main()
