#!/usr/bin/env python3
"""PEARL reliability demo: cable failure, detection, reroute, recovery.

PEARL is the PCI Express *Adaptive and Reliable* Link (§III-A).  This
example cuts a ring cable on a live sub-cluster, shows the NIOS firmware
noticing, reroutes every node's comparators onto the surviving chain, and
proves traffic flows again — including the pair that lost its direct
cable, now taking the long way around.  It also contrasts the §V NTB
failure mode: there, unplugging means rebooting both hosts.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.baselines.ntb import NTBPair
from repro.hw.node import NodeParams
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster


def one_way_ns(cluster, comm, src, dst, value):
    engine = cluster.engine
    slot = 0xC00 + value % 256 * 8
    target = comm.host_global(dst, cluster.driver(dst).dma_buffer(slot))
    addr = cluster.driver(dst).dma_buffer(slot)
    dram = cluster.node(dst).dram
    start = engine.now_ps
    cluster.node(src).cpu.store_u32(target, value)

    def observe():
        while True:
            word = dram.cpu_read(addr, 4)
            if int.from_bytes(word.tobytes(), "little") == value:
                return engine.now_ps
            yield 100

    return (engine.run_process(observe()) - start) / 1000.0


def main(tiny: bool = False) -> None:
    nodes = 4 if tiny else 6
    dma_bytes = 1024 if tiny else 8192
    cluster = TCASubCluster(nodes, node_params=NodeParams(num_gpus=1))
    comm = TCAComm(cluster)
    console = cluster.board(0).chip.console

    print(f"healthy ring of {nodes}:")
    print(f"  node0 -> node1: {one_way_ns(cluster, comm, 0, 1, 0x11):6.0f} ns")
    print(f"  node0 -> node3: {one_way_ns(cluster, comm, 0, 3, 0x12):6.0f} ns")
    print(f"  console> links: {console.execute('links')}\n")

    print("--- cutting the cable node0.E -> node1.W ---")
    cluster.cut_ring_cable(0)
    print(f"  console> links: {console.execute('links')}")
    print("  host link to PEACH2 is untouched (unlike NTB, §V)\n")

    chain = cluster.heal()
    print(f"healed: ring degraded to chain {chain}")
    print("  comparators reprogrammed on every node:")
    for line in console.execute("routes").splitlines():
        print(f"    {line}")

    print("\ntraffic after healing:")
    t_long = one_way_ns(cluster, comm, 0, 1, 0x21)
    t_other = one_way_ns(cluster, comm, 0, 3, 0x22)
    print(f"  node0 -> node1 (now {nodes - 1} hops the other way): "
          f"{t_long:6.0f} ns")
    print(f"  node0 -> node3 ({nodes - 3} hop(s) westward):        "
          f"{t_other:6.0f} ns")

    data = np.random.default_rng(1).integers(0, 256, dma_bytes,
                                             dtype=np.uint8)
    src_bus = cluster.driver(0).dma_buffer(0)
    cluster.node(0).dram.cpu_write(src_bus, data)
    dst = comm.host_global(1, cluster.driver(1).dma_buffer(0))
    cluster.engine.run_process(comm.put_dma(0, src_bus, dst, len(data)))
    cluster.engine.run()
    ok = np.array_equal(cluster.driver(1).read_dma_buffer(0, len(data)),
                        data)
    print(f"  {len(data) // 1024} KiB DMA put across the healed chain: "
          f"verified={ok}")

    print("\nautomatic recovery (NIOS watchdog, no operator):")
    auto = TCASubCluster(nodes, node_params=NodeParams(num_gpus=1))
    auto.enable_auto_heal()
    auto.engine.at(1_000_000, lambda: auto.cut_ring_cable(2))

    def until_healed():
        while auto.heals_completed == 0:
            yield 10_000_000

    auto.engine.run_process(until_healed())
    auto.disable_auto_heal()
    print(f"  watchdog healed the ring in "
          f"{auto.last_time_to_heal_ps / 1000.0:.0f} ns "
          f"-> chain {auto.last_heal_chain}")

    print("\nthe NTB alternative (§V):")
    pair = NTBPair()
    pair.cut_cable()
    print(f"  cable cut -> hosts_require_reboot = "
          f"{pair.hosts_require_reboot}")


if __name__ == "__main__":
    main()
