"""PCIe non-transparent bridge (NTB) baseline (§V related work).

An NTB pair lets two root complexes address each other through translating
windows.  The §V critique is modelled faithfully:

* the NTB endpoints must exist at BIOS scan time ("during the BIOS scan at
  boot time, the host must recognize the EPs in the NTB") — installing one
  after :meth:`ComputeNode.enumerate` fails;
* "disconnection of the node causes a system reboot" — cutting the cable
  marks both hosts reboot-required, whereas a PEACH2 ring link going down
  leaves the host<->PEACH2 connection untouched;
* the data path itself is competitive: a translating window hop is as fast
  as a switch traversal, which is why the latency comparison (E14) shows
  NTB close to PEACH2 for two nodes — the difference is operability and
  scale (fixed windows vs a routed 16-node sub-cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError, PCIeError
from repro.hw.node import ComputeNode, NodeParams
from repro.pcie.address import Region
from repro.pcie.config_space import (CAP_PCIE, Capability, ConfigSpace,
                                     VENDOR_PLX)
from repro.pcie.device import Device
from repro.pcie.gen import PCIeGen
from repro.pcie.link import LinkParams, PCIeLink
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind
from repro.sim.core import Engine
from repro.units import MiB, ns


@dataclass(frozen=True)
class NTBParams:
    """Translation-window size and per-packet bridge cost."""

    window_bytes: int = 256 * MiB
    forward_latency_ps: int = ns(150)
    issue_interval_ps: int = ns(8)


class NTBBridge(Device):
    """One NTB endpoint function (half of a back-to-back NTB pair)."""

    def __init__(self, engine: Engine, name: str,
                 params: NTBParams = NTBParams()):
        super().__init__(engine, name)
        self.params = params
        self.host_port = Port(engine, f"{name}.host", PortRole.EP, self,
                              rx_credits=64)
        self.cable_port = Port(engine, f"{name}.cable", PortRole.INTERNAL,
                               self, rx_credits=64)
        self.node: Optional[ComputeNode] = None
        self.window: Optional[Region] = None
        # The NTB endpoint function the BIOS must see at boot (§V).
        self.config_space = ConfigSpace(VENDOR_PLX, 0x8749, 0x06, name=name)
        self.config_space.add_bar(0, params.window_bytes)
        self.config_space.add_capability(Capability(CAP_PCIE))
        #: Peer-side bus address the window's base translates to.
        self.translation_base = 0
        self.tlps_forwarded = 0

    # -- adapter protocol ---------------------------------------------------------

    def on_enumerated(self, node: ComputeNode,
                      bars: Dict[int, Region]) -> None:
        """Record the window placed by the BIOS scan."""
        self.node = node
        self.window = bars[0]

    def set_translation(self, peer_bus_base: int) -> None:
        """Program where the window lands in the peer's address space."""
        self.translation_base = peer_bus_base

    # -- data path -------------------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """Translate host-side window traffic; pass cable traffic up."""
        if port is self.host_port:
            if tlp.kind is TLPKind.CPLD:
                # A completion returning toward the peer's requester:
                # forwarded untouched (ID-routed, no address).
                out_tlp, out_port = tlp, self.cable_port
            else:
                if self.window is None or not self.window.contains(
                        tlp.address):
                    raise PCIeError(
                        f"{self.name}: address outside the NTB window")
                translated = (self.translation_base
                              + self.window.offset_of(tlp.address))
                out_tlp = TLP(tlp.kind, address=translated,
                              length=tlp.length, payload=tlp.payload,
                              requester_id=tlp.requester_id, tag=tlp.tag)
                out_port = self.cable_port
        else:
            out_tlp, out_port = tlp, self.host_port
        remaining = max(0, self.params.forward_latency_ps
                        - self.params.issue_interval_ps)
        self.engine.after(remaining, self._emit, out_port, out_tlp)
        return self._occupy()

    def _occupy(self):
        yield self.params.issue_interval_ps

    def _emit(self, port: Port, tlp: TLP) -> None:
        self.tlps_forwarded += 1
        port.send(tlp)


class NTBPair:
    """Two nodes joined by back-to-back NTB endpoints."""

    def __init__(self, engine: Optional[Engine] = None,
                 node_params: NodeParams = NodeParams(num_gpus=1),
                 ntb_params: NTBParams = NTBParams()):
        self.engine = engine or Engine()
        self.node_a = ComputeNode(self.engine, "ntbA", node_params)
        self.node_b = ComputeNode(self.engine, "ntbB", node_params)
        self.ntb_a = NTBBridge(self.engine, "ntbA.ep", ntb_params)
        self.ntb_b = NTBBridge(self.engine, "ntbB.ep", ntb_params)
        self.node_a.install_adapter(self.ntb_a)
        self.node_b.install_adapter(self.ntb_b)
        self.node_a.enumerate()
        self.node_b.enumerate()
        cable = LinkParams(gen=PCIeGen.GEN2, lanes=8,
                           latency_ps=ns(130))
        self.cable = PCIeLink(self.engine, self.ntb_a.cable_port,
                              self.ntb_b.cable_port, cable, name="ntb-cable")
        #: §V: unplugging an NTB node forces reboots; set by cut_cable().
        self.hosts_require_reboot = False
        # Windows point at the peer's DRAM base by default.
        self.ntb_a.set_translation(0)
        self.ntb_b.set_translation(0)
        # Requester-ID translation: completions for the peer's requesters
        # route back through the bridge (this is what lets reads cross).
        self.node_b.sw0.map_device(self.node_a.cpu.device_id,
                                   self.node_b.adapter_slot(self.ntb_b))
        self.node_a.sw0.map_device(self.node_b.cpu.device_id,
                                   self.node_a.adapter_slot(self.ntb_a))

    def cut_cable(self) -> None:
        """Unplug: with NTB, both hosts must reboot to recover (§V)."""
        self.cable.take_down()
        self.hosts_require_reboot = True

    def remote_read(self, nbytes: int = 8, src_offset: int = 0xA000):
        """Process: node A's CPU reads node B's DRAM through the window
        (NTBs, unlike PEACH2, do support remote reads)."""
        data = yield self.node_a.cpu.load(self.ntb_a.window.base + src_offset,
                                          nbytes)
        return data

    def store_latency_ns(self, payload: int = 0xC0FFEE01,
                         dst_offset: int = 0x9000) -> float:
        """One 4-byte store from node A's CPU into node B's DRAM."""
        target = self.ntb_a.window.base + dst_offset
        dram_b = self.node_b.dram
        start = self.engine.now_ps
        self.node_a.cpu.store_u32(target, payload)

        def until_visible():
            while True:
                word = dram_b.cpu_read(dst_offset, 4)
                if int.from_bytes(word.tobytes(), "little") == payload:
                    return self.engine.now_ps
                yield 100

        end = self.engine.run_process(until_visible(), name="ntb-observe")
        return (end - start) / 1000.0
