"""A switched InfiniBand fabric: many HCAs behind one (logical) switch.

The HA-PACS base cluster connects 268 nodes through 288-port QDR switches
(Table I).  :class:`SwitchedFabric` models that star: every HCA gets a
LID, frames are routed by destination LID with one switch-hop latency,
and each source's uplink serializes at the wire rate.
"""

from __future__ import annotations

from typing import List

from repro.baselines.ib import IBHca, IBParams, IBSwitch, QDR_PARAMS
from repro.baselines.mpi import MPIParams, MPIWorld
from repro.errors import ConfigError
from repro.hw.node import ComputeNode, NodeParams
from repro.sim.core import Engine
from repro.sim.queues import Store
from repro.units import MiB, ns, transfer_ps


class SwitchedHca(IBHca):
    """An HCA cabled to a :class:`SwitchedFabric` instead of a peer."""

    def __init__(self, engine, name, params: IBParams,
                 fabric: "SwitchedFabric"):
        super().__init__(engine, name, params)
        self.fabric = fabric
        self.lid = fabric.register(self)

    def _send_frame(self, frame) -> None:
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        self.fabric.transmit(self, frame)


class SwitchedFabric:
    """Central switch: routes frames by destination LID."""

    def __init__(self, engine: Engine, params: IBParams = QDR_PARAMS,
                 switch_latency_ps: int = ns(110)):
        self.engine = engine
        self.params = params
        self.switch = IBSwitch(engine, switch_latency_ps)
        self.endpoints: List[SwitchedHca] = []
        self._uplinks = {}

    def register(self, hca: SwitchedHca) -> int:
        """Assign the next LID."""
        self.endpoints.append(hca)
        return len(self.endpoints) - 1

    def transmit(self, source: SwitchedHca, frame) -> None:
        """Accept a frame onto the source's uplink."""
        uplink = self._uplinks.get(id(source))
        if uplink is None:
            uplink = Store(self.engine)
            self._uplinks[id(source)] = uplink
            self.engine.process(self._pump(uplink), name="ib-fabric")
        uplink.put(frame)

    def _pump(self, uplink: Store):
        while True:
            frame = yield uplink.get()
            yield transfer_ps(frame.wire_bytes, self.params.wire_bytes_per_ps)
            if not 0 <= frame.dst_lid < len(self.endpoints):
                raise ConfigError(f"no endpoint with LID {frame.dst_lid}")
            dest = self.endpoints[frame.dst_lid]
            self.engine.after(
                self.params.link_latency_ps + self.switch.delay(),
                dest.receive_frame, frame)


class IBGroup:
    """N nodes with switched HCAs and an MPI world — an IB-only cluster."""

    def __init__(self, num_nodes: int,
                 node_params: NodeParams = NodeParams(num_gpus=1),
                 ib_params: IBParams = QDR_PARAMS,
                 mpi_params: MPIParams = MPIParams(),
                 engine: Engine = None):
        if num_nodes < 2:
            raise ConfigError("an IB group needs at least two nodes")
        self.engine = engine or Engine()
        self.fabric = SwitchedFabric(self.engine, ib_params)
        self.nodes: List[ComputeNode] = []
        self.hcas: List[SwitchedHca] = []
        self.world = MPIWorld(mpi_params)
        self.ranks = []
        self.buffers: List[int] = []
        for i in range(num_nodes):
            node = ComputeNode(self.engine, f"ibg{i}", node_params)
            hca = SwitchedHca(self.engine, f"ibg{i}.hca", ib_params,
                              self.fabric)
            from repro.pcie.gen import PCIeGen
            node.install_adapter(hca, lanes=8, gen=PCIeGen.GEN3)
            node.enumerate()
            self.nodes.append(node)
            self.hcas.append(hca)
            self.ranks.append(self.world.add_endpoint(node, hca))
            self.buffers.append(node.dram_alloc(16 * MiB))
