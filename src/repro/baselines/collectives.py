"""MPI collectives over the point-to-point stack.

Classic algorithms, enough to compare against the TCA-native collectives
in :mod:`repro.apps`: ring allgather, binomial broadcast, and a
dissemination barrier.  All of them move real bytes through the simulated
HCAs and fabric.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.baselines.mpi import MPIWorld
from repro.errors import ConfigError
from repro.sim.core import Engine


def ring_allgather_mpi(world: MPIWorld, buffers: List[int],
                       block_bytes: int):
    """Process-per-rank ring allgather; returns the list of processes.

    ``buffers[r]`` is rank r's base bus address; slot i (at
    ``base + i*block_bytes``) ends up holding rank i's block, like
    MPI_Allgather with MPI_IN_PLACE.
    """
    n = len(world.endpoints)
    if len(buffers) != n:
        raise ConfigError("one buffer per rank required")
    engine: Engine = world.endpoints[0].engine

    def worker(rank: int):
        right = (rank + 1) % n
        left = (rank - 1) % n
        for step in range(n - 1):
            send_block = (rank - step) % n
            recv_block = (rank - step - 1) % n
            send = world.rank(rank).isend(
                right, buffers[rank] + send_block * block_bytes,
                block_bytes, tag=1000 + step)
            recv = world.rank(rank).irecv(
                left, buffers[rank] + recv_block * block_bytes,
                block_bytes, tag=1000 + step)
            yield send
            yield recv

    return [engine.process(worker(r), name=f"mpi-ag{r}") for r in range(n)]


def ring_allreduce_mpi(world: MPIWorld, buffers: List[int], nbytes: int):
    """Ring allreduce (reduce-scatter + allgather) of uint32 vectors.

    ``buffers[r]`` holds rank r's vector; on completion every rank's
    buffer holds the elementwise modular sum (MPI_SUM over unsigned
    ints).  Receives stage at ``buffers[r] + nbytes`` so a chunk is
    reduced only after it fully arrives.  This is the software baseline
    the E20 experiment races :meth:`repro.collectives.TCACollectives.
    allreduce` against.
    """
    n = len(world.endpoints)
    if len(buffers) != n:
        raise ConfigError("one buffer per rank required")
    if nbytes % (4 * n):
        raise ConfigError(f"vector must split into {n} uint32 chunks")
    chunk = nbytes // n
    engine: Engine = world.endpoints[0].engine

    def reduce_into(rank: int, accum: int, staging: int) -> None:
        dram = world.rank(rank).node.dram
        acc = dram.cpu_read(accum, chunk).view(np.uint32)
        inc = dram.cpu_read(staging, chunk).view(np.uint32)
        dram.cpu_write(accum, (acc + inc).view(np.uint8))

    def worker(rank: int):
        right = (rank + 1) % n
        left = (rank - 1) % n
        staging = buffers[rank] + nbytes
        # Reduce-scatter: after n-1 steps rank r owns chunk (r+1) % n.
        for step in range(n - 1):
            send_chunk = (rank - step) % n
            recv_chunk = (rank - step - 1) % n
            send = world.rank(rank).isend(
                right, buffers[rank] + send_chunk * chunk, chunk,
                tag=3000 + step)
            recv = world.rank(rank).irecv(
                left, staging + step * chunk, chunk, tag=3000 + step)
            yield send
            yield recv
            reduce_into(rank, buffers[rank] + recv_chunk * chunk,
                        staging + step * chunk)
        # Allgather the owned chunks around the ring.
        for step in range(n - 1):
            send_chunk = (rank + 1 - step) % n
            recv_chunk = (rank - step) % n
            send = world.rank(rank).isend(
                right, buffers[rank] + send_chunk * chunk, chunk,
                tag=4000 + step)
            recv = world.rank(rank).irecv(
                left, buffers[rank] + recv_chunk * chunk, chunk,
                tag=4000 + step)
            yield send
            yield recv

    return [engine.process(worker(r), name=f"mpi-ar{r}") for r in range(n)]


def broadcast_mpi(world: MPIWorld, buffers: List[int], nbytes: int,
                  root: int = 0):
    """Binomial-tree broadcast; returns the per-rank processes."""
    n = len(world.endpoints)
    engine: Engine = world.endpoints[0].engine

    def vrank(rank: int) -> int:
        return (rank - root) % n

    def rank_of(v: int) -> int:
        return (v + root) % n

    def worker(rank: int):
        v = vrank(rank)
        # Receive from the parent (clear the lowest set bit).
        if v != 0:
            parent = rank_of(v & (v - 1))
            yield world.rank(rank).irecv(parent, buffers[rank], nbytes,
                                         tag=77)
        # Forward to children.
        mask = 1
        while mask < n:
            if v & (mask - 1) == 0 and v | mask != v and v | mask < n:
                child = rank_of(v | mask)
                yield world.rank(rank).isend(child, buffers[rank], nbytes,
                                             tag=77)
            mask <<= 1

    return [engine.process(worker(r), name=f"mpi-bcast{r}")
            for r in range(n)]


def barrier_mpi(world: MPIWorld, scratch: List[int]):
    """Dissemination barrier (log2(n) rounds of 1-byte messages)."""
    n = len(world.endpoints)
    engine: Engine = world.endpoints[0].engine
    rounds = max(1, math.ceil(math.log2(n)))

    def worker(rank: int):
        for k in range(rounds):
            dist = 1 << k
            to = (rank + dist) % n
            frm = (rank - dist) % n
            send = world.rank(rank).isend(to, scratch[rank], 1,
                                          tag=2000 + k)
            recv = world.rank(rank).irecv(frm, scratch[rank] + 64, 1,
                                          tag=2000 + k)
            yield send
            yield recv

    return [engine.process(worker(r), name=f"mpi-bar{r}") for r in range(n)]


def run_all(engine: Engine, procs) -> int:
    """Drive the engine until every collective process finished."""
    while not all(p.done for p in procs):
        if not engine.step():
            raise ConfigError("collective deadlocked")
    return engine.now_ps
