"""Comparators: InfiniBand verbs, MPI, host-staged GPU paths, NTB.

These implement the communication stacks the paper positions TCA against
(§I, §V): the conventional three-copy GPU-to-GPU path over MPI+InfiniBand,
the IB + GPUDirect-RDMA zero-copy path, and the PCIe non-transparent
bridge approach.
"""

from repro.baselines.ib import IBHca, IBLink, IBParams, IBSwitch
from repro.baselines.mpi import MPIEndpoint, MPIParams, MPIWorld
from repro.baselines.paths import (ConventionalPath, GDRPath, MPIHostPath,
                                   PathResult, TCADMAPath, TCAPIOPath,
                                   VerbsPath, build_ib_pair)
from repro.baselines.ntb import NTBBridge, NTBPair

__all__ = [
    "IBHca",
    "IBLink",
    "IBParams",
    "IBSwitch",
    "MPIEndpoint",
    "MPIParams",
    "MPIWorld",
    "ConventionalPath",
    "GDRPath",
    "MPIHostPath",
    "VerbsPath",
    "TCADMAPath",
    "TCAPIOPath",
    "PathResult",
    "build_ib_pair",
    "NTBBridge",
    "NTBPair",
]
