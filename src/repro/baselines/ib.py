"""InfiniBand: links, a two-port switch, and Verbs-level HCAs.

The HA-PACS base cluster uses Mellanox ConnectX-3 QDR (Table I); QDR 4X
signals 40 Gbit/s with 8b/10b encoding, i.e. 4 Gbytes/s of data rate per
rail.  The HCA is a PCIe device like any other in this simulation: an RDMA
write DMA-reads the local source over PCIe (or takes it inline for tiny
messages, as real verbs do), streams MTU-sized frames over the IB wire,
and the peer HCA DMA-writes them to the destination bus address — which
may be host DRAM or, with GPUDirect RDMA, a pinned GPU BAR (§V).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, DriverError
from repro.hw.node import ComputeNode
from repro.model.calibration import CALIB
from repro.pcie.address import Region
from repro.pcie.config_space import (CAP_MSI, CAP_PCIE, Capability,
                                     ConfigSpace, VENDOR_MELLANOX)
from repro.pcie.device import Device, TagPool
from repro.pcie.packetizer import split_read_requests, split_transfer
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind, make_read, make_write
from repro.sim.core import Engine, Signal
from repro.sim.queues import Resource, Store
from repro.units import KiB, ns, transfer_ps, us


@dataclass(frozen=True)
class IBParams:
    """Wire and HCA timing for one IB generation."""

    #: Post-encoding data rate (bytes/ps).  QDR 4X: 40 Gb/s * 8/10 / 8.
    wire_bytes_per_ps: float = 4e9 / 1e12
    #: One-way cable+PHY latency.
    link_latency_ps: int = ns(200)
    #: Per-frame overhead: LRH(8)+BTH(12)+RETH(16)+ICRC(4)+VCRC(2).
    frame_overhead_bytes: int = 42
    mtu_bytes: int = 2048
    #: Verbs software: build WQE + post_send.
    post_send_ps: int = ns(200)
    #: Doorbell MMIO write reaching the HCA (uncached store).
    doorbell_ps: int = ns(250)
    #: HCA packet-processing per frame, each side.
    hca_frame_ps: int = ns(60)
    #: WQE fetch/translation before the first frame.
    hca_wqe_ps: int = ns(150)
    #: Max payload carried inline in the WQE (skips the local DMA read).
    inline_threshold: int = 188
    #: Completion-queue poll granularity at the requester.
    cq_poll_ps: int = ns(100)
    #: Outstanding PCIe reads the HCA keeps while fetching source data.
    dma_window: int = 16


QDR_PARAMS = IBParams()
FDR_PARAMS = IBParams(wire_bytes_per_ps=6.8e9 / 1e12, link_latency_ps=ns(180))
#: The base cluster's dual-rail configuration (Table I: "Dual-port QDR";
#: §II-A: "the interface can provide approximately 8 Gbytes/sec"): the
#: driver stripes bulk transfers across both rails, modelled as a doubled
#: wire rate on one logical rail.
QDR_DUAL_PARAMS = IBParams(wire_bytes_per_ps=8e9 / 1e12)

_frame_serial = itertools.count()


@dataclass
class IBFrame:
    """One wire frame of an RDMA write (or a 0-byte completion/ack)."""

    kind: str                 # "rdma-write" | "ack" | "send"
    dst_addr: int
    payload: Optional[np.ndarray]
    wr_id: int
    last: bool
    #: Source/destination LIDs; point-to-point cables ignore them, the
    #: switched fabric (repro.tca.hybrid) routes by dst_lid.
    src_lid: int = 0
    dst_lid: int = 0
    serial: int = field(default_factory=lambda: next(_frame_serial))

    @property
    def wire_bytes(self) -> int:
        """Framed size on the IB wire."""
        body = 0 if self.payload is None else len(self.payload)
        return body + 42


class IBLink:
    """Full-duplex IB cable between two HCAs (or HCA and switch)."""

    def __init__(self, engine: Engine, end_a: "IBHca", end_b: "IBHca",
                 params: IBParams, name: str = "ib-link"):
        self.engine = engine
        self.params = params
        self.name = name
        self._tx: Dict[int, Store] = {id(end_a): Store(engine),
                                      id(end_b): Store(engine)}
        self._peer = {id(end_a): end_b, id(end_b): end_a}
        end_a.attach_link(self)
        end_b.attach_link(self)
        for end in (end_a, end_b):
            engine.process(self._pump(end), name=f"{name}.pump")

    def transmit(self, source: "IBHca", frame: IBFrame) -> None:
        """Queue a frame for the wire."""
        self._tx[id(source)].put(frame)

    def _pump(self, source: "IBHca"):
        tx = self._tx[id(source)]
        peer = self._peer[id(source)]
        while True:
            frame = yield tx.get()
            yield transfer_ps(frame.wire_bytes, self.params.wire_bytes_per_ps)
            self.engine.after(self.params.link_latency_ps,
                              peer.receive_frame, frame)


class IBSwitch:
    """A cut-through IB switch hop (fixed added latency per frame)."""

    def __init__(self, engine: Engine, latency_ps: int = ns(110)):
        self.engine = engine
        self.latency_ps = latency_ps
        self.frames = 0

    def delay(self) -> int:
        """Latency this hop adds (counted per traversing frame)."""
        self.frames += 1
        return self.latency_ps


class IBHca(Device):
    """A ConnectX-style HCA: PCIe endpoint + IB port + verbs queue pairs."""

    def __init__(self, engine: Engine, name: str,
                 params: IBParams = QDR_PARAMS):
        super().__init__(engine, name)
        self.params = params
        self.host_port = Port(engine, f"{name}.pcie", PortRole.EP, self,
                              rx_credits=64)
        # ConnectX-3-style type-0 function.
        self.config_space = ConfigSpace(VENDOR_MELLANOX, 0x1003, 0x02,
                                        name=name)
        self.config_space.add_bar(0, 64 * KiB, prefetchable=False)
        self.config_space.add_capability(Capability(CAP_MSI))
        self.config_space.add_capability(Capability(CAP_PCIE))
        self.tags = TagPool(engine, name=f"{name}.tags")
        self.node: Optional[ComputeNode] = None
        self.bar0: Optional[Region] = None
        #: This port's LID on a switched fabric (0 on point-to-point).
        self.lid = 0
        self.link: Optional[IBLink] = None
        self.switch: Optional[IBSwitch] = None
        self._dma_window = Resource(engine, params.dma_window,
                                    name=f"{name}.window")
        self._wr_serial = itertools.count(1)
        self._completions: Dict[int, Signal] = {}
        self._pending_last: Dict[int, int] = {}  # wr_id -> frames not yet written
        self._recv_handlers: List[Callable[[IBFrame], None]] = []
        self.frames_sent = 0
        self.bytes_sent = 0

    # -- node-adapter protocol -----------------------------------------------------

    def on_enumerated(self, node: ComputeNode,
                      bars: Dict[int, Region]) -> None:
        """Record the node and BAR after the BIOS scan."""
        self.node = node
        self.bar0 = bars[0]

    # -- cabling ----------------------------------------------------------------------

    def attach_link(self, link: IBLink) -> None:
        """Called by IBLink construction."""
        if self.link is not None:
            raise ConfigError(f"{self.name}: IB port already cabled")
        self.link = link

    # -- PCIe-facing -------------------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """PCIe-side ingress: match read completions to pending fetches."""
        if tlp.kind is TLPKind.CPLD:
            self.tags.complete(tlp)
        # Doorbell writes are modelled by the explicit delays in post().
        return None

    # -- verbs -------------------------------------------------------------------------

    def rdma_write(self, local_bus_addr: int, remote_bus_addr: int,
                   nbytes: int,
                   inline_data: Optional[np.ndarray] = None,
                   dst_lid: int = 0) -> Signal:
        """Post an RDMA WRITE work request; returns the CQE signal.

        The signal fires (with the wr_id) once the remote HCA has written
        the last byte and the ACK has returned — the semantics of polling
        the send CQ with ``IBV_SEND_SIGNALED``.
        """
        wr_id = next(self._wr_serial)
        cqe = self.engine.signal(f"{self.name}.cqe{wr_id}")
        self._completions[wr_id] = cqe
        self.engine.process(
            self._execute_write(wr_id, local_bus_addr, remote_bus_addr,
                                nbytes, inline_data, dst_lid),
            name=f"{self.name}.wr{wr_id}")
        return cqe

    def _execute_write(self, wr_id: int, local: int, remote: int,
                       nbytes: int, inline_data: Optional[np.ndarray],
                       dst_lid: int = 0):
        p = self.params
        yield p.post_send_ps + p.doorbell_ps + p.hca_wqe_ps
        mtu = p.mtu_bytes
        chunks = split_transfer(remote, nbytes, mtu)
        if inline_data is not None and nbytes <= p.inline_threshold:
            # Inline send: payload came with the WQE, no local DMA read.
            data = np.ascontiguousarray(inline_data, dtype=np.uint8)
            for i, (addr, size) in enumerate(chunks):
                off = addr - remote
                yield p.hca_frame_ps
                self._send_frame(IBFrame("rdma-write", addr,
                                         data[off:off + size].copy(), wr_id,
                                         i == len(chunks) - 1,
                                         src_lid=self.lid, dst_lid=dst_lid))
            return
        # Streaming pipeline: the source fetch runs ahead, emitting a
        # frame as soon as its bytes are contiguous — so PCIe reads and
        # the IB wire overlap like on a real HCA.
        frame_q: Store = Store(self.engine, name=f"{self.name}.frames")
        self.engine.process(
            self._stream_source(wr_id, local, remote, nbytes, chunks,
                                frame_q, dst_lid),
            name=f"{self.name}.src")
        for _ in range(len(chunks)):
            frame = yield frame_q.get()
            yield p.hca_frame_ps
            self._send_frame(frame)

    def _stream_source(self, wr_id: int, local: int, remote: int,
                       nbytes: int, chunks, frame_q: Store,
                       dst_lid: int = 0):
        """Windowed PCIe reads of the source; emit frames at the frontier."""
        buf = np.zeros(nbytes, dtype=np.uint8)
        state = {"frontier": 0, "next_frame": 0}
        landed: Dict[int, int] = {}

        def _advance() -> None:
            while state["frontier"] in landed:
                state["frontier"] += landed.pop(state["frontier"])
            while state["next_frame"] < len(chunks):
                addr, size = chunks[state["next_frame"]]
                start = addr - remote
                if start + size > state["frontier"]:
                    break
                frame_q.put(IBFrame(
                    "rdma-write", addr, buf[start:start + size].copy(),
                    wr_id, state["next_frame"] == len(chunks) - 1,
                    src_lid=self.lid, dst_lid=dst_lid))
                state["next_frame"] += 1

        for addr, size in split_read_requests(local, nbytes,
                                              CALIB.mrrs_bytes):
            yield self._dma_window.acquire()
            tag, done = self.tags.issue(size)
            accepted = self.host_port.send(make_read(
                addr, size, requester_id=self.device_id, tag=tag))
            if not accepted.fired:
                yield accepted
            offset = addr - local

            def _land(data: bytes, _off: int = offset) -> None:
                buf[_off:_off + len(data)] = np.frombuffer(data,
                                                           dtype=np.uint8)
                landed[_off] = len(data)
                self._dma_window.release()
                _advance()

            done.add_callback(_land)

    def _send_frame(self, frame: IBFrame) -> None:
        if self.link is None:
            raise ConfigError(f"{self.name}: no IB cable attached")
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes
        if self.switch is not None:
            self.engine.after(self.switch.delay(), self.link.transmit,
                              self, frame)
        else:
            self.link.transmit(self, frame)

    # -- receive side -------------------------------------------------------------------

    def receive_frame(self, frame: IBFrame) -> None:
        """Wire delivery: land RDMA data over PCIe, ack when complete."""
        self.engine.process(self._ingest(frame), name=f"{self.name}.rx")

    def _ingest(self, frame: IBFrame):
        p = self.params
        yield p.hca_frame_ps
        if frame.kind == "ack":
            cqe = self._completions.pop(frame.wr_id, None)
            if cqe is None:
                raise DriverError(f"{self.name}: ack for unknown WR "
                                  f"{frame.wr_id}")
            yield p.cq_poll_ps
            cqe.fire(frame.wr_id)
            return
        if frame.kind == "send":
            for handler in self._recv_handlers:
                handler(frame)
            return
        # RDMA write data: split to PCIe MWr toward the destination.
        rate = self.host_port.link.params.bytes_per_ps
        data = frame.payload
        for addr, size in split_transfer(frame.dst_addr, len(data),
                                         CALIB.mps_bytes):
            off = addr - frame.dst_addr
            tlp = make_write(addr, data[off:off + size],
                             requester_id=self.device_id)
            yield transfer_ps(tlp.wire_bytes, rate)
            accepted = self.host_port.send(tlp)
            if not accepted.fired:
                yield accepted
        if frame.last:
            self._send_frame(IBFrame("ack", 0, None, frame.wr_id, True,
                                     src_lid=self.lid,
                                     dst_lid=frame.src_lid))

    # -- two-sided small messages (eager MPI uses these) ----------------------------------

    def register_recv_handler(self,
                              handler: Callable[[IBFrame], None]) -> None:
        """Deliver incoming ``send`` frames to the (MPI) upper layer."""
        self._recv_handlers.append(handler)

    def post_send_message(self, payload: np.ndarray, wr_id: int = 0,
                          dst_lid: int = 0) -> None:
        """Fire-and-forget two-sided send of a small control message."""
        self.engine.process(self._execute_send(payload, wr_id, dst_lid),
                            name=f"{self.name}.send")

    def _execute_send(self, payload: np.ndarray, wr_id: int,
                      dst_lid: int = 0):
        p = self.params
        yield p.post_send_ps + p.doorbell_ps + p.hca_wqe_ps
        yield p.hca_frame_ps
        self._send_frame(IBFrame("send", 0,
                                 np.ascontiguousarray(payload,
                                                      dtype=np.uint8),
                                 wr_id, True, src_lid=self.lid,
                                 dst_lid=dst_lid))


def install_hca(node: ComputeNode, params: IBParams = QDR_PARAMS) -> IBHca:
    """Create an HCA and plug it into a Gen3 x8 slot (Table I's NIC)."""
    from repro.pcie.gen import PCIeGen

    hca = IBHca(node.engine, f"{node.name}.hca", params)
    node.install_adapter(hca, lanes=8, gen=PCIeGen.GEN3)
    return hca
