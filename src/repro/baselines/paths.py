"""End-to-end communication paths for the motivation experiment (E10).

Each path measures the same thing: move N bytes from a source buffer on
node 0 to a destination buffer on node 1 and observe the destination's
*last byte* (a polling observer with identical cost on every path), so
latencies and bandwidths are directly comparable across:

* ``TCAPIOPath``       — TCA PIO stores, host-to-host (§III-F1);
* ``TCADMAPath``       — TCA chained DMA put (host or GPU endpoints);
* ``VerbsPath``        — raw IB RDMA write, host-to-host;
* ``ConventionalPath`` — GPU-GPU via cudaMemcpy D2H + MPI + H2D (§I's
  three-copy path), optionally chunk-pipelined;
* ``GDRPath``          — GPU-GPU via MPI whose HCA reads/writes pinned
  GPU BARs directly (IB + GPUDirect RDMA, §V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines.ib import IBHca, IBLink, IBParams, QDR_PARAMS, install_hca
from repro.baselines.mpi import MPIParams, MPIWorld
from repro.cuda.pointer import CU_POINTER_ATTRIBUTE_P2P_TOKENS
from repro.cuda.runtime import CudaContext
from repro.drivers.p2p_driver import P2PDriver
from repro.errors import ConfigError
from repro.hw.node import ComputeNode, NodeParams
from repro.sim.core import Engine
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster
from repro.units import KiB, MiB, bw_gbytes_per_s, ns


@dataclass(frozen=True)
class PathResult:
    """One measurement: elapsed time and derived bandwidth."""

    path: str
    nbytes: int
    elapsed_ps: int

    @property
    def latency_us(self) -> float:
        """End-to-end time in microseconds."""
        return self.elapsed_ps / 1e6

    @property
    def bandwidth_gbytes(self) -> float:
        """Payload bandwidth in Gbytes/s."""
        return bw_gbytes_per_s(self.nbytes, self.elapsed_ps)


def _observe_destination(engine: Engine, read_last_byte, expect: int,
                         poll_ps: int = ns(50)):
    """Poll until the destination's final byte holds ``expect``."""
    while True:
        if read_last_byte() == expect:
            return engine.now_ps
        yield poll_ps


def _payload(nbytes: int) -> np.ndarray:
    data = np.arange(nbytes, dtype=np.int64) % 251
    out = data.astype(np.uint8)
    out[-1] = 0xA5  # sentinel the observer polls for
    return out


class _IBPair:
    """Two nodes with HCAs, an IB cable, MPI ranks and CUDA contexts."""

    def __init__(self, ib_params: IBParams = QDR_PARAMS,
                 mpi_params: MPIParams = MPIParams(),
                 node_params: NodeParams = NodeParams(num_gpus=1)):
        self.engine = Engine()
        self.nodes = [ComputeNode(self.engine, f"ib{i}", node_params)
                      for i in range(2)]
        self.hcas = [install_hca(node, ib_params) for node in self.nodes]
        for node in self.nodes:
            node.enumerate()
        self.link = IBLink(self.engine, self.hcas[0], self.hcas[1],
                           ib_params)
        self.world = MPIWorld(mpi_params)
        self.ranks = [self.world.add_endpoint(node, hca)
                      for node, hca in zip(self.nodes, self.hcas)]
        self.cuda = [CudaContext(node) for node in self.nodes]
        self.p2p = P2PDriver()
        # Per-node staging/user buffers in DRAM.
        self.host_buffers = [node.dram_alloc(16 * MiB)
                             for node in self.nodes]


def build_ib_pair(**kwargs) -> _IBPair:
    """Public constructor for a two-node IB testbed."""
    return _IBPair(**kwargs)


class VerbsPath:
    """Raw IB RDMA write, host DRAM to host DRAM.

    ``dual_rail=True`` uses the base cluster's dual-port QDR striping
    (~8 Gbytes/s aggregate, Table I).
    """

    def __init__(self, dual_rail: bool = False):
        self.dual_rail = dual_rail
        self.name = "ib-verbs-dual" if dual_rail else "ib-verbs"

    def transfer(self, nbytes: int) -> PathResult:
        """Run one transfer on a fresh pair."""
        from repro.baselines.ib import QDR_DUAL_PARAMS

        pair = _IBPair(ib_params=QDR_DUAL_PARAMS) if self.dual_rail \
            else _IBPair()
        engine = pair.engine
        data = _payload(nbytes)
        src, dst = pair.host_buffers
        pair.nodes[0].dram.cpu_write(src, data)
        start = engine.now_ps
        inline = data if nbytes <= pair.hcas[0].params.inline_threshold \
            else None
        pair.hcas[0].rdma_write(src, dst, nbytes, inline_data=inline)
        dram = pair.nodes[1].dram
        end = engine.run_process(_observe_destination(
            engine, lambda: int(dram.cpu_read(dst + nbytes - 1, 1)[0]),
            0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)


class MPIHostPath:
    """MPI send/recv between host buffers (eager/rendezvous as sized)."""

    name = "mpi-ib"

    def transfer(self, nbytes: int) -> PathResult:
        """One MPI send/recv on a fresh pair, destination-observed."""
        pair = _IBPair()
        engine = pair.engine
        data = _payload(nbytes)
        src, dst = pair.host_buffers
        pair.nodes[0].dram.cpu_write(src, data)
        start = engine.now_ps
        pair.ranks[1].irecv(0, dst, nbytes)
        pair.ranks[0].isend(1, src, nbytes)
        dram = pair.nodes[1].dram
        end = engine.run_process(_observe_destination(
            engine, lambda: int(dram.cpu_read(dst + nbytes - 1, 1)[0]),
            0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)


class ConventionalPath:
    """The §I three-copy GPU path: D2H, MPI host-host, H2D.

    ``chunk_bytes`` enables the MVAPICH-style pipeline that overlaps the
    three stages for large messages.
    """

    def __init__(self, chunk_bytes: Optional[int] = None):
        self.chunk_bytes = chunk_bytes
        self.name = ("gpu-mpi-pipelined" if chunk_bytes
                     else "gpu-mpi-3copy")

    def transfer(self, nbytes: int) -> PathResult:
        """One three-copy GPU-to-GPU transfer, destination-observed."""
        pair = _IBPair()
        engine = pair.engine
        data = _payload(nbytes)
        src_gpu = pair.cuda[0].cu_mem_alloc(0, nbytes)
        dst_gpu = pair.cuda[1].cu_mem_alloc(0, nbytes)
        pair.cuda[0].upload(src_gpu, data)
        src_host, dst_host = pair.host_buffers
        chunk = self.chunk_bytes or nbytes

        def sender():
            moved = 0
            while moved < nbytes:
                take = min(chunk, nbytes - moved)
                yield engine.process(pair.cuda[0].memcpy_dtoh(
                    src_host + moved, src_gpu + moved, take))
                yield pair.ranks[0].isend(1, src_host + moved, take,
                                          tag=moved)
                moved += take

        def receiver():
            moved = 0
            while moved < nbytes:
                take = min(chunk, nbytes - moved)
                yield pair.ranks[1].irecv(0, dst_host + moved, take,
                                          tag=moved)
                yield engine.process(pair.cuda[1].memcpy_htod(
                    dst_gpu + moved, dst_host + moved, take))
                moved += take

        start = engine.now_ps
        engine.process(sender(), name="sender")
        engine.process(receiver(), name="receiver")
        gpu1 = pair.nodes[1].gpus[0]
        end = engine.run_process(_observe_destination(
            engine,
            lambda: int(gpu1.memory.read(dst_gpu.offset + nbytes - 1, 1)[0]),
            0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)


class GDRPath:
    """MPI on GPU pointers with GPUDirect RDMA (zero host copies)."""

    name = "gpu-mpi-gdr"

    def transfer(self, nbytes: int) -> PathResult:
        """One GPUDirect-RDMA MPI transfer, destination-observed."""
        pair = _IBPair()
        engine = pair.engine
        data = _payload(nbytes)
        src_gpu = pair.cuda[0].cu_mem_alloc(0, nbytes)
        dst_gpu = pair.cuda[1].cu_mem_alloc(0, nbytes)
        pair.cuda[0].upload(src_gpu, data)
        buses = []
        for cuda, ptr in ((pair.cuda[0], src_gpu), (pair.cuda[1], dst_gpu)):
            token = cuda.cu_pointer_get_attribute(
                CU_POINTER_ATTRIBUTE_P2P_TOKENS, ptr)
            mapping = pair.p2p.pin(ptr.gpu, token, ptr.offset, ptr.nbytes)
            buses.append(mapping.bus_address)
        start = engine.now_ps
        pair.ranks[1].irecv(0, buses[1], nbytes)
        pair.ranks[0].isend(1, buses[0], nbytes)
        gpu1 = pair.nodes[1].gpus[0]
        end = engine.run_process(_observe_destination(
            engine,
            lambda: int(gpu1.memory.read(dst_gpu.offset + nbytes - 1, 1)[0]),
            0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)


class TCAPIOPath:
    """TCA PIO put, host-to-host (short-message champion, §III-F1)."""

    name = "tca-pio"

    def transfer(self, nbytes: int) -> PathResult:
        """One WC-paced PIO put on a fresh 2-node sub-cluster."""
        if nbytes > 64 * KiB:
            raise ConfigError("PIO is a short-message transport")
        cluster = TCASubCluster(2, node_params=NodeParams(num_gpus=1))
        comm = TCAComm(cluster)
        engine = cluster.engine
        data = _payload(nbytes)
        dst_off = cluster.driver(1).dma_buffer(0)
        dst = comm.host_global(1, dst_off)
        dram = cluster.node(1).dram
        start = engine.now_ps
        # Paced by the CPU's write-combining cadence (honest streaming).
        engine.process(comm.put_pio_timed(0, dst, data), name="pio")
        end = engine.run_process(_observe_destination(
            engine, lambda: int(dram.cpu_read(dst_off + nbytes - 1, 1)[0]),
            0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)


class TCADMAPath:
    """TCA chained-DMA put; host-to-host or GPU-to-GPU endpoints."""

    def __init__(self, gpu: bool = False, pipelined: bool = False):
        self.gpu = gpu
        self.pipelined = pipelined
        base = "tca-dma-gpu" if gpu else "tca-dma"
        self.name = base + ("-pipelined" if pipelined else "")

    def transfer(self, nbytes: int) -> PathResult:
        """One chained-DMA put on a fresh 2-node sub-cluster."""
        cluster = TCASubCluster(2, node_params=NodeParams(num_gpus=1))
        comm = TCAComm(cluster)
        engine = cluster.engine
        data = _payload(nbytes)
        if self.pipelined:
            cluster.board(0).chip.dma.pipelined = True
        if self.gpu:
            src_ptr = cluster.cuda[0].cu_mem_alloc(0, nbytes)
            dst_ptr = cluster.cuda[1].cu_mem_alloc(0, nbytes)
            cluster.cuda[0].upload(src_ptr, data)
            comm.register_gpu_memory(0, src_ptr)
            dst_global = comm.register_gpu_memory(1, dst_ptr)
            src_local = src_ptr.gpu.offset_to_bar(src_ptr.offset)
            read_last = lambda: int(dst_ptr.gpu.memory.read(
                dst_ptr.offset + nbytes - 1, 1)[0])
        else:
            src_local = cluster.driver(0).dma_buffer(0)
            cluster.node(0).dram.cpu_write(src_local, data)
            dst_off = cluster.driver(1).dma_buffer(0)
            dst_global = comm.host_global(1, dst_off)
            dram = cluster.node(1).dram
            read_last = lambda: int(dram.cpu_read(dst_off + nbytes - 1,
                                                  1)[0])
        start = engine.now_ps
        if self.pipelined:
            engine.process(comm.put_dma_pipelined(0, src_local, dst_global,
                                                  nbytes), name="put")
        else:
            engine.process(comm.put_dma(0, src_local, dst_global, nbytes),
                           name="put")
        end = engine.run_process(_observe_destination(engine, read_last,
                                                      0xA5), name="observe")
        return PathResult(self.name, nbytes, end - start)
