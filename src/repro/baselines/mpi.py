"""A small MPI point-to-point stack over IB verbs.

Implements the two protocols every MPI uses on InfiniBand:

* **eager** (small messages): the payload is RDMA-written into the
  receiver's pre-registered eager ring buffer together with a control
  header; the receiver's MPI library copies it out on match.  Costs two
  host-memory copies plus the verbs round trip — the overhead TCA
  eliminates (§V: "the overhead of MPI protocol stack can be eliminated").
* **rendezvous** (large messages): RTS/CTS handshake, then a zero-copy
  RDMA write straight into the posted receive buffer, then FIN.

The endpoints speak through :class:`~repro.baselines.ib.IBHca` devices,
so every byte still moves as simulated PCIe + IB traffic.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.ib import IBFrame, IBHca
from repro.errors import ConfigError
from repro.hw.node import ComputeNode
from repro.sim.core import Engine, Signal
from repro.units import KiB, MiB, ns, transfer_ps

_HDR = "<BIIQQQ"  # kind, src_rank, tag, size, addr, token
_HDR_BYTES = struct.calcsize(_HDR)

K_EAGER = 1
K_RTS = 2
K_CTS = 3
K_FIN = 4


@dataclass(frozen=True)
class MPIParams:
    """Software costs and protocol thresholds of the MPI library."""

    eager_threshold: int = 12 * KiB
    #: Library call overhead (argument checking, protocol selection).
    call_overhead_ps: int = ns(300)
    #: Host memcpy bandwidth for eager-buffer copies.
    memcpy_bytes_per_ps: float = 6e9 / 1e12
    #: Size of each endpoint's eager ring buffer.
    eager_buffer_bytes: int = 1 * MiB
    #: Matching-engine cost per message.
    match_ps: int = ns(150)


def _pack(kind: int, src_rank: int, tag: int, size: int, addr: int,
          token: int) -> np.ndarray:
    return np.frombuffer(struct.pack(_HDR, kind, src_rank, tag, size, addr,
                                     token), dtype=np.uint8).copy()


def _unpack(payload: np.ndarray) -> Tuple[int, int, int, int, int, int]:
    return struct.unpack(_HDR, payload.tobytes()[:_HDR_BYTES])


class MPIWorld:
    """A communicator: ranks, endpoints, and the wiring between them."""

    def __init__(self, params: MPIParams = MPIParams()):
        self.params = params
        self.endpoints: List["MPIEndpoint"] = []

    def add_endpoint(self, node: ComputeNode, hca: IBHca) -> "MPIEndpoint":
        """Register the next rank."""
        endpoint = MPIEndpoint(self, len(self.endpoints), node, hca)
        self.endpoints.append(endpoint)
        return endpoint

    def rank(self, index: int) -> "MPIEndpoint":
        """Endpoint by rank."""
        return self.endpoints[index]


class MPIEndpoint:
    """One rank: eager buffers, matching engine, protocol state."""

    def __init__(self, world: MPIWorld, rank: int, node: ComputeNode,
                 hca: IBHca):
        self.world = world
        self.rank = rank
        self.node = node
        self.hca = hca
        self.engine: Engine = node.engine
        self.params = world.params
        self.eager_base = node.dram_alloc(self.params.eager_buffer_bytes)
        self._eager_cursor = 0
        # Unexpected-message queue and posted receives, keyed by
        # (src_rank, tag); tag -1 is the wildcard.
        self._unexpected: List[Tuple[int, int, int, int, int]] = []
        self._posted: List[Tuple[int, int, int, int, Signal]] = []
        self._pending_cts: Dict[int, Signal] = {}
        self._pending_fin: Dict[int, Signal] = {}
        self._token = 0
        hca.register_recv_handler(self._on_control)
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- helpers -------------------------------------------------------------------

    def _alloc_eager_slot(self, nbytes: int) -> int:
        if nbytes > self.params.eager_buffer_bytes:
            raise ConfigError("eager message larger than the ring buffer")
        if self._eager_cursor + nbytes > self.params.eager_buffer_bytes:
            self._eager_cursor = 0
        slot = self.eager_base + self._eager_cursor
        self._eager_cursor += nbytes
        return slot

    def _next_token(self) -> int:
        self._token += 1
        return self._token

    def _memcpy_ps(self, nbytes: int) -> int:
        return transfer_ps(nbytes, self.params.memcpy_bytes_per_ps)

    # -- the two-sided API ------------------------------------------------------------

    def isend(self, dest_rank: int, src_bus_addr: int, nbytes: int,
              tag: int = 0) -> Signal:
        """Non-blocking send; the signal fires at sender completion."""
        done = self.engine.signal(f"mpi{self.rank}.send")
        self.engine.process(
            self._send_proc(dest_rank, src_bus_addr, nbytes, tag, done),
            name=f"mpi{self.rank}.send")
        return done

    def irecv(self, src_rank: int, dst_bus_addr: int, nbytes: int,
              tag: int = -1) -> Signal:
        """Non-blocking receive; the signal fires when data has landed."""
        done = self.engine.signal(f"mpi{self.rank}.recv")
        self.engine.process(
            self._recv_proc(src_rank, dst_bus_addr, nbytes, tag, done),
            name=f"mpi{self.rank}.recv")
        return done

    def send(self, dest_rank: int, src_bus_addr: int, nbytes: int,
             tag: int = 0):
        """Process: blocking send."""
        result = yield self.isend(dest_rank, src_bus_addr, nbytes, tag)
        return result

    def recv(self, src_rank: int, dst_bus_addr: int, nbytes: int,
             tag: int = -1):
        """Process: blocking receive."""
        result = yield self.irecv(src_rank, dst_bus_addr, nbytes, tag)
        return result

    # -- sender side --------------------------------------------------------------------

    def _send_proc(self, dest_rank: int, src: int, nbytes: int, tag: int,
                   done: Signal):
        peer = self.world.rank(dest_rank)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        yield self.params.call_overhead_ps
        if nbytes <= self.params.eager_threshold:
            yield self.engine.process(
                self._send_eager(peer, src, nbytes, tag))
        else:
            yield self.engine.process(
                self._send_rendezvous(peer, src, nbytes, tag))
        done.fire(nbytes)

    def _send_eager(self, peer: "MPIEndpoint", src: int, nbytes: int,
                    tag: int):
        # Copy user data into the send-side bounce buffer (first copy of
        # the conventional path).
        yield self._memcpy_ps(nbytes)
        slot = peer._alloc_eager_slot(max(nbytes, 1))
        if nbytes > 0:
            cqe = self.hca.rdma_write(src, slot, nbytes,
                                      dst_lid=peer.hca.lid)
            yield cqe
        self.hca.post_send_message(
            _pack(K_EAGER, self.rank, tag, nbytes, slot, 0),
            dst_lid=peer.hca.lid)

    def _send_rendezvous(self, peer: "MPIEndpoint", src: int, nbytes: int,
                         tag: int):
        token = self._next_token()
        cts = self.engine.signal(f"mpi{self.rank}.cts{token}")
        self._pending_cts[token] = cts
        self.hca.post_send_message(
            _pack(K_RTS, self.rank, tag, nbytes, 0, token),
            dst_lid=peer.hca.lid)
        dst_addr = yield cts
        cqe = self.hca.rdma_write(src, dst_addr, nbytes,
                                  dst_lid=peer.hca.lid)
        yield cqe
        self.hca.post_send_message(
            _pack(K_FIN, self.rank, tag, nbytes, 0, token),
            dst_lid=peer.hca.lid)

    # -- receiver side ------------------------------------------------------------------

    def _recv_proc(self, src_rank: int, dst: int, nbytes: int, tag: int,
                   done: Signal):
        yield self.params.call_overhead_ps + self.params.match_ps
        # Check the unexpected queue first (eager arrivals and RTSes).
        for i, (kind, s_rank, m_tag, size, meta) in enumerate(self._unexpected):
            if s_rank == src_rank and (tag in (-1, m_tag)):
                del self._unexpected[i]
                yield self.engine.process(self._complete_recv(
                    kind, s_rank, m_tag, size, meta, dst, nbytes))
                done.fire(size)
                return
        arrived = self.engine.signal(f"mpi{self.rank}.match")
        self._posted.append((src_rank, tag, dst, nbytes, arrived))
        size = yield arrived
        done.fire(size)

    def _complete_recv(self, kind: int, src_rank: int, tag: int, size: int,
                       meta: int, dst: int, nbytes: int):
        if size > nbytes:
            raise ConfigError(f"MPI truncation: {size} > {nbytes}")
        if kind == K_EAGER:
            # Copy out of the eager ring into the user buffer (the second
            # copy of the conventional path); with CUDA-aware MPI the user
            # buffer may be a GPU BAR window.
            yield self._memcpy_ps(size)
            data = self.node.dram.cpu_read(meta, size)
            self.node.bus_write(dst, data)
            return
        # RTS: reply CTS with the destination address; done arrives as FIN.
        token = meta
        fin = self.engine.signal(f"mpi{self.rank}.fin{token}")
        self._pending_fin[token] = fin
        self.hca.post_send_message(
            _pack(K_CTS, self.rank, tag, size, dst, token),
            dst_lid=self.world.rank(src_rank).hca.lid)
        yield fin

    def _on_control(self, frame: IBFrame) -> None:
        kind, src_rank, tag, size, addr, token = _unpack(frame.payload)
        if kind == K_CTS:
            self._pending_cts.pop(token).fire(addr)
            return
        if kind == K_FIN:
            self._pending_fin.pop(token).fire(size)
            return
        # EAGER or RTS: try to match a posted receive.
        for i, (p_src, p_tag, dst, nbytes, arrived) in enumerate(self._posted):
            if p_src == src_rank and (p_tag in (-1, tag)):
                del self._posted[i]
                meta = addr if kind == K_EAGER else token

                def _finish(_k=kind, _m=meta, _d=dst, _n=nbytes,
                            _s=size, _a=arrived, _t=tag, _r=src_rank):
                    yield self.engine.process(self._complete_recv(
                        _k, _r, _t, _s, _m, _d, _n))
                    _a.fire(_s)

                self.engine.process(_finish(), name="mpi.match-complete")
                return
        meta = addr if kind == K_EAGER else token
        self._unexpected.append((kind, src_rank, tag, size, meta))
