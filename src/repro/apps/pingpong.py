"""PIO ping-pong between two sub-cluster nodes.

The classic latency microbenchmark: node A stores a counter into node B's
memory, B's polling loop answers by storing it back, and the round-trip
time is halved — the way the paper derives its 782 ns figure (§IV-B1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster


def pingpong_rtt_ns(cluster: TCASubCluster, node_a: int = 0,
                    node_b: int = 1, iterations: int = 16) -> float:
    """Average PIO round-trip time (ns) between two nodes.

    Each iteration: A stores ``i`` at B, B polls and echoes ``i`` back,
    A polls.  Returns mean RTT over ``iterations``.
    """
    if iterations < 1:
        raise ConfigError("need at least one iteration")
    comm = TCAComm(cluster)
    engine = cluster.engine
    drv_a = cluster.driver(node_a)
    drv_b = cluster.driver(node_b)
    slot_a, slot_b = 0x800, 0x800
    addr_at_b = comm.host_global(node_b, drv_b.dma_buffer(slot_b))
    addr_at_a = comm.host_global(node_a, drv_a.dma_buffer(slot_a))

    def responder():
        for i in range(1, iterations + 1):
            yield engine.process(
                drv_b.poll_dma_buffer_u32(slot_b, i), name="b-poll")
            cluster.node(node_b).cpu.store_u32(addr_at_a, i)

    def initiator():
        engine.process(responder(), name="responder")
        total = 0
        for i in range(1, iterations + 1):
            start = cluster.node(node_a).cpu.read_tsc()
            cluster.node(node_a).cpu.store_u32(addr_at_b, i)
            yield engine.process(
                drv_a.poll_dma_buffer_u32(slot_a, i), name="a-poll")
            total += cluster.node(node_a).cpu.read_tsc() - start
        return total / iterations

    mean_rtt_ps = engine.run_process(initiator(), name="pingpong")
    return mean_rtt_ps / 1000.0
