"""2-D Jacobi halo exchange using chained block-stride DMA (§III-H).

The global grid is split into vertical strips, one per node.  Each
iteration exchanges boundary *columns* with the ring neighbours — a
strided access pattern ("the stride access caused by multidimensional
array data", §III-B) that maps onto one chained block-stride DMA instead
of row-count separate transfers.  Grid rows live in the nodes' DMA
buffers so the exchange is real simulated traffic; the stencil update
itself is plain numpy plus a modelled compute delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster
from repro.units import us


@dataclass
class HaloStats:
    """Timing breakdown of one run."""

    iterations: int
    total_ns: float
    exchange_ns: float

    @property
    def exchange_fraction(self) -> float:
        """Share of wall time spent in halo exchange."""
        return self.exchange_ns / self.total_ns if self.total_ns else 0.0


class HaloExchange2D:
    """A 1-D (column-strip) decomposed 2-D Jacobi solver on the ring."""

    def __init__(self, cluster: TCASubCluster, rows: int = 64,
                 cols_per_node: int = 32,
                 compute_ps_per_cell: int = 50):
        if rows < 2 or cols_per_node < 2:
            raise ConfigError("grid too small")
        self.cluster = cluster
        self.comm = TCAComm(cluster)
        self.engine = cluster.engine
        self.rows = rows
        self.cols = cols_per_node
        self.compute_ps_per_cell = compute_ps_per_cell
        # Local layout per node, float64 row-major, with one ghost column
        # on each side:  [ghostL | interior cols | ghostR].
        self.pitch = (self.cols + 2) * 8
        self.grid_bytes = self.rows * self.pitch
        self.flag_base = self.grid_bytes + 0x1000
        self._iter = 0
        for rank in range(cluster.num_nodes):
            grid = self._initial_grid(rank)
            cluster.driver(rank).fill_dma_buffer(
                0, grid.view(np.uint8).reshape(-1))

    def _initial_grid(self, rank: int) -> np.ndarray:
        grid = np.zeros((self.rows, self.cols + 2), dtype=np.float64)
        # Dirichlet boundary: hot left edge of the global domain.
        if rank == 0:
            grid[:, 1] = 100.0
        return grid

    # -- grid access over the DMA buffer -------------------------------------------

    def read_grid(self, rank: int) -> np.ndarray:
        """Current grid of one node (rows x cols+2 float64)."""
        raw = self.cluster.driver(rank).read_dma_buffer(0, self.grid_bytes)
        return raw.view(np.float64).reshape(self.rows, self.cols + 2).copy()

    def _write_grid(self, rank: int, grid: np.ndarray) -> None:
        self.cluster.driver(rank).fill_dma_buffer(
            0, np.ascontiguousarray(grid).view(np.uint8).reshape(-1))

    def _column_offset(self, col_index: int) -> int:
        """Byte offset of row 0 of a column within the grid buffer."""
        return col_index * 8

    # -- the exchange -----------------------------------------------------------------

    def _exchange(self, rank: int, step_flag: int):
        """One node's halo exchange for one iteration (a process)."""
        cluster, comm = self.cluster, self.comm
        n = cluster.num_nodes
        driver = cluster.driver(rank)
        right = (rank + 1) % n
        left = (rank - 1) % n
        # Send my rightmost interior column into right's left ghost, and
        # my leftmost interior column into left's right ghost — each one
        # chained block-stride DMA: `rows` blocks of 8 bytes, stride pitch.
        # Flag slot 0 on the receiver means "left ghost filled" (data from
        # its West neighbour), slot 1 means "right ghost filled"; keyed by
        # the edge, not the peer id, so a 2-node ring (right == left)
        # still uses distinct flags.
        sends = (
            (right, self._column_offset(self.cols),      # my right edge
             self._column_offset(0), 0),                 # their left ghost
            (left, self._column_offset(1),               # my left edge
             self._column_offset(self.cols + 1), 1),     # their right ghost
        )
        for peer, src_col, dst_col, flag_slot in sends:
            src_local = driver.dma_buffer(src_col)
            dst_global = comm.host_global(
                peer, cluster.driver(peer).dma_buffer(dst_col))
            yield self.engine.process(comm.put_block_stride(
                rank, src_local, dst_global, block_bytes=8,
                src_stride=self.pitch, dst_stride=self.pitch,
                count=self.rows), name=f"halo{rank}")
            flag_global = comm.host_global(
                peer, cluster.driver(peer).dma_buffer(
                    self.flag_base + flag_slot * 4))
            cluster.node(rank).cpu.store_u32(flag_global, step_flag)
        # Wait for both neighbours' columns.
        for slot in (0, 1):
            yield self.engine.process(driver.poll_dma_buffer_u32(
                self.flag_base + slot * 4, step_flag), name=f"wait{rank}")

    # -- the solver loop ---------------------------------------------------------------

    def run(self, iterations: int = 4) -> HaloStats:
        """Run Jacobi iterations; returns timing stats."""
        engine = self.engine
        n = self.cluster.num_nodes
        start = engine.now_ps
        exchange_ps = [0]

        def worker(rank: int):
            for it in range(1, iterations + 1):
                t0 = engine.now_ps
                yield engine.process(self._exchange(rank, self._iter + it),
                                     name=f"xch{rank}")
                if rank == 0:
                    exchange_ps[0] += engine.now_ps - t0
                grid = self.read_grid(rank)
                interior = grid[1:-1, 1:-1].copy()
                grid[1:-1, 1:-1] = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                                           + grid[1:-1, :-2] + grid[1:-1, 2:])
                # Pin the global boundary.
                if rank == 0:
                    grid[:, 1] = 100.0
                self._write_grid(rank, grid)
                yield self.compute_ps_per_cell * interior.size

        procs = [engine.process(worker(rank), name=f"jacobi{rank}")
                 for rank in range(n)]
        while not all(p.done for p in procs):
            if not engine.step():
                raise ConfigError("halo exchange deadlocked")
        self._iter += iterations
        total_ps = engine.now_ps - start
        return HaloStats(iterations, total_ps / 1000.0,
                         exchange_ps[0] / 1000.0)

    def global_heat(self) -> float:
        """Sum of interior temperatures across all nodes (for checking)."""
        return float(sum(self.read_grid(r)[:, 1:-1].sum()
                         for r in range(self.cluster.num_nodes)))
