"""Distributed GPU Jacobi: kernels on GPUs, halos over TCA GPU-to-GPU puts.

This is the workload shape the paper's target applications motivate
(§II: particle physics / astrophysics stencil and field codes): the grid
lives in *GPU memory*, each iteration runs a roofline-timed kernel, and
the boundary rows move directly between GPUs on neighbouring nodes via
the TCA put path — no host staging, which is the entire point of the
architecture.

Decomposition is by rows, so halos are contiguous in device memory and a
single two-phase DMA put per neighbour moves them.  Flags synchronize
iterations (FlagPool, PCIe-ordered behind the data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.cuda.pointer import DevicePtr
from repro.errors import ConfigError
from repro.tca.comm import TCAComm
from repro.tca.notify import FlagPool
from repro.tca.subcluster import TCASubCluster

#: Stencil cost per cell: 4 adds + 1 multiply; 5 reads + 1 write of f64.
FLOPS_PER_CELL = 5
BYTES_PER_CELL = 6 * 8


@dataclass
class GPUStencilStats:
    """Per-run timing split."""

    iterations: int
    total_ns: float
    exchange_ns: float
    kernel_ns: float


class GPUStencil:
    """Row-decomposed 2-D Jacobi on one GPU per node."""

    def __init__(self, cluster: TCASubCluster, rows_per_node: int = 32,
                 cols: int = 64, gpu_index: int = 0):
        if rows_per_node < 1 or cols < 3:
            raise ConfigError("grid too small")
        self.cluster = cluster
        self.comm = TCAComm(cluster)
        self.flags = FlagPool(cluster, self.comm, num_flags=4)
        self.engine = cluster.engine
        self.rows = rows_per_node
        self.cols = cols
        self.gpu_index = gpu_index
        self.pitch = cols * 8
        # Local layout: [ghost-top | rows interior | ghost-bottom].
        self.grid_bytes = (rows_per_node + 2) * self.pitch
        self.ptrs: List[DevicePtr] = []
        self.globals: List[int] = []
        for node_id in range(cluster.num_nodes):
            ptr = cluster.cuda[node_id].cu_mem_alloc(gpu_index,
                                                     self.grid_bytes)
            grid = np.zeros((rows_per_node + 2, cols))
            if node_id == 0:
                grid[1, :] = 100.0  # hot top edge of the global domain
            cluster.cuda[node_id].upload(
                ptr, np.ascontiguousarray(grid).view(np.uint8).reshape(-1))
            self.ptrs.append(ptr)
            self.globals.append(self.comm.register_gpu_memory(node_id, ptr))

    # -- device-memory views --------------------------------------------------------

    def read_grid(self, node_id: int) -> np.ndarray:
        """Device grid of one node, ghosts included."""
        raw = self.cluster.cuda[node_id].download(self.ptrs[node_id],
                                                  self.grid_bytes)
        return raw.view(np.float64).reshape(self.rows + 2, self.cols).copy()

    def _write_grid(self, node_id: int, grid: np.ndarray) -> None:
        self.cluster.cuda[node_id].upload(
            self.ptrs[node_id],
            np.ascontiguousarray(grid).view(np.uint8).reshape(-1))

    def _row_global(self, node_id: int, row: int) -> int:
        return self.globals[node_id] + row * self.pitch

    def _row_local_bus(self, node_id: int, row: int) -> int:
        ptr = self.ptrs[node_id]
        return ptr.gpu.offset_to_bar(ptr.offset + row * self.pitch)

    # -- one node's iteration ----------------------------------------------------------

    def _exchange(self, rank: int, sequence: int):
        n = self.cluster.num_nodes
        # Send my last interior row down into (rank+1)'s top ghost, and my
        # first interior row up into (rank-1)'s bottom ghost.  The chain
        # does not wrap: the global top/bottom are fixed boundaries.
        if rank + 1 < n:
            yield self.engine.process(self.comm.put_dma(
                rank, self._row_local_bus(rank, self.rows),
                self._row_global(rank + 1, 0), self.pitch))
            self.flags.signal(rank, rank + 1, flag=0)
        if rank - 1 >= 0:
            yield self.engine.process(self.comm.put_dma(
                rank, self._row_local_bus(rank, 1),
                self._row_global(rank - 1, self.rows + 1), self.pitch,
                channel=1))
            self.flags.signal(rank, rank - 1, flag=1)
        if rank - 1 >= 0:
            yield self.engine.process(self.flags.wait(rank, 0, sequence))
        if rank + 1 < n:
            yield self.engine.process(self.flags.wait(rank, 1, sequence))

    def _kernel(self, rank: int):
        gpu = self.ptrs[rank].gpu
        cells = self.rows * (self.cols - 2)

        def body(node_id: int = rank) -> None:
            grid = self.read_grid(node_id)
            new = grid.copy()
            new[1:-1, 1:-1] = 0.25 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                                      + grid[1:-1, :-2] + grid[1:-1, 2:])
            if node_id == 0:
                new[1, :] = 100.0
            self._write_grid(node_id, new)

        yield self.engine.process(gpu.launch_kernel(
            FLOPS_PER_CELL * cells, BYTES_PER_CELL * cells, body))

    # -- driver ---------------------------------------------------------------------------

    def run(self, iterations: int = 4) -> GPUStencilStats:
        """Run Jacobi iterations across all nodes; returns timing stats."""
        engine = self.engine
        n = self.cluster.num_nodes
        start = engine.now_ps
        exchange_ps = [0]
        kernel_ps = [0]

        def worker(rank: int):
            for it in range(1, iterations + 1):
                t0 = engine.now_ps
                yield engine.process(self._exchange(rank, it))
                if rank == 0:
                    exchange_ps[0] += engine.now_ps - t0
                t1 = engine.now_ps
                yield engine.process(self._kernel(rank))
                if rank == 0:
                    kernel_ps[0] += engine.now_ps - t1

        procs = [engine.process(worker(r), name=f"gpuj{r}")
                 for r in range(n)]
        while not all(p.done for p in procs):
            if not engine.step():
                raise ConfigError("GPU stencil deadlocked")
        return GPUStencilStats(iterations, (engine.now_ps - start) / 1e3,
                               exchange_ps[0] / 1e3, kernel_ps[0] / 1e3)

    def global_interior(self) -> np.ndarray:
        """The glued global grid (interiors only, top to bottom)."""
        return np.vstack([self.read_grid(r)[1:-1, :]
                          for r in range(self.cluster.num_nodes)])


class DualGPUStencil:
    """Jacobi on *two GPUs per node*: the §I communication model complete.

    Strips are ordered node0.gpu0, node0.gpu1, node1.gpu0, ...; a halo
    between the two GPUs of one node moves by ``cudaMemcpyPeer`` over the
    node's PCIe switch (GPUDirect P2P), while a halo crossing nodes moves
    by a TCA put — "as if an accelerator in a different node existed in
    the same node" (§I), with the same one-sided style either way.
    """

    def __init__(self, cluster: TCASubCluster, rows_per_gpu: int = 16,
                 cols: int = 64):
        for node in cluster.nodes:
            if len(node.gpus) < 2:
                raise ConfigError("DualGPUStencil needs two GPUs per node")
        if rows_per_gpu < 1 or cols < 3:
            raise ConfigError("grid too small")
        self.cluster = cluster
        self.comm = TCAComm(cluster)
        self.flags = FlagPool(cluster, self.comm, num_flags=4)
        self.engine = cluster.engine
        self.rows = rows_per_gpu
        self.cols = cols
        self.pitch = cols * 8
        self.grid_bytes = (rows_per_gpu + 2) * self.pitch
        n = cluster.num_nodes
        self.ptrs: List[DevicePtr] = []
        self.globals: List[int] = []
        for strip in range(2 * n):
            node_id, gpu_index = divmod(strip, 2)
            ptr = cluster.cuda[node_id].cu_mem_alloc(gpu_index,
                                                     self.grid_bytes)
            grid = np.zeros((rows_per_gpu + 2, cols))
            if strip == 0:
                grid[1, :] = 100.0
            cluster.cuda[node_id].upload(
                ptr, np.ascontiguousarray(grid).view(np.uint8).reshape(-1))
            self.ptrs.append(ptr)
            self.globals.append(self.comm.register_gpu_memory(node_id, ptr))
        self.intra_node_copies = 0
        self.inter_node_puts = 0

    # -- views --------------------------------------------------------------------

    def read_strip(self, strip: int) -> np.ndarray:
        """One strip's grid, ghosts included."""
        node_id = strip // 2
        raw = self.cluster.cuda[node_id].download(self.ptrs[strip],
                                                  self.grid_bytes)
        return raw.view(np.float64).reshape(self.rows + 2, self.cols).copy()

    def _write_strip(self, strip: int, grid: np.ndarray) -> None:
        self.cluster.cuda[strip // 2].upload(
            self.ptrs[strip],
            np.ascontiguousarray(grid).view(np.uint8).reshape(-1))

    def global_interior(self) -> np.ndarray:
        """The glued global grid (interiors only)."""
        return np.vstack([self.read_strip(s)[1:-1, :]
                          for s in range(2 * self.cluster.num_nodes)])

    # -- one node's iteration ------------------------------------------------------

    def _worker(self, node_id: int, iterations: int):
        cluster, comm, engine = self.cluster, self.comm, self.engine
        n = cluster.num_nodes
        top = 2 * node_id       # this node's gpu0 strip
        bottom = top + 1        # this node's gpu1 strip
        cuda = cluster.cuda[node_id]

        for it in range(1, iterations + 1):
            # Inter-node edges first (they overlap the intra-node copies).
            if node_id + 1 < n:
                self.inter_node_puts += 1
                ptr = self.ptrs[bottom]
                yield engine.process(comm.put_dma(
                    node_id,
                    ptr.gpu.offset_to_bar(ptr.offset + self.rows * self.pitch),
                    self.globals[bottom + 1], self.pitch))
                self.flags.signal(node_id, node_id + 1, flag=0)
            if node_id - 1 >= 0:
                self.inter_node_puts += 1
                ptr = self.ptrs[top]
                yield engine.process(comm.put_dma(
                    node_id,
                    ptr.gpu.offset_to_bar(ptr.offset + 1 * self.pitch),
                    self.globals[top - 1] + (self.rows + 1) * self.pitch,
                    self.pitch, channel=1))
                self.flags.signal(node_id, node_id - 1, flag=1)

            # Intra-node edge: gpu0 <-> gpu1 by cudaMemcpyPeer (§III-H).
            self.intra_node_copies += 2
            yield engine.process(cuda.memcpy_peer(
                self.ptrs[bottom],                       # into gpu1 ghost 0
                self.ptrs[top] + self.rows * self.pitch,
                self.pitch))
            yield engine.process(cuda.memcpy_peer(
                self.ptrs[top] + (self.rows + 1) * self.pitch,
                self.ptrs[bottom] + 1 * self.pitch,
                self.pitch))

            # Wait for the inbound inter-node halos.
            if node_id - 1 >= 0:
                yield engine.process(self.flags.wait(node_id, 0, it))
            if node_id + 1 < n:
                yield engine.process(self.flags.wait(node_id, 1, it))

            # Kernels on both GPUs, concurrently.
            kernels = []
            for strip in (top, bottom):
                cells = self.rows * (self.cols - 2)

                def body(s: int = strip) -> None:
                    grid = self.read_strip(s)
                    new = grid.copy()
                    new[1:-1, 1:-1] = 0.25 * (
                        grid[:-2, 1:-1] + grid[2:, 1:-1]
                        + grid[1:-1, :-2] + grid[1:-1, 2:])
                    if s == 0:
                        new[1, :] = 100.0
                    self._write_strip(s, new)

                kernels.append(engine.process(
                    self.ptrs[strip].gpu.launch_kernel(
                        FLOPS_PER_CELL * cells, BYTES_PER_CELL * cells,
                        body)))
            for kernel in kernels:
                yield kernel

    def run(self, iterations: int = 4) -> float:
        """Run the distributed solve; returns simulated microseconds."""
        engine = self.engine
        start = engine.now_ps
        procs = [engine.process(self._worker(r, iterations),
                                name=f"dual{r}")
                 for r in range(self.cluster.num_nodes)]
        while not all(p.done for p in procs):
            if not engine.step():
                raise ConfigError("dual-GPU stencil deadlocked")
        return (engine.now_ps - start) / 1e6
