"""Mini-applications built on the TCA communication API.

These exercise the library the way the paper's target applications
(particle physics, astrophysics, life sciences — §II) would: low-latency
neighbour exchange on the sub-cluster ring.
"""

from repro.apps.pingpong import pingpong_rtt_ns
from repro.apps.allgather import ring_allgather
from repro.apps.halo import HaloExchange2D
from repro.apps.gpu_stencil import DualGPUStencil, GPUStencil

__all__ = ["pingpong_rtt_ns", "ring_allgather", "HaloExchange2D",
           "GPUStencil", "DualGPUStencil"]
