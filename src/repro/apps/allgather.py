"""Ring allgather over TCA DMA puts.

Every node contributes a block; after N-1 ring steps every node holds all
blocks.  Each step is a DMA put to the East neighbour followed by a PIO
flag store; receivers poll the flag — the zero-software-stack
synchronization style TCA enables (no MPI, §V).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster

def ring_allgather(cluster: TCASubCluster, block_bytes: int = 1024,
                   seed: int = 7) -> List[np.ndarray]:
    """Run a ring allgather; returns each node's gathered buffer.

    Raises if the result differs across nodes (self-checking).
    DMA-buffer layout: N data slots, then one flag word per step.
    """
    n = cluster.num_nodes
    # Flags live just past the last block slot, page-aligned.
    FLAG_AREA = -(-(n * block_bytes) // 4096) * 4096
    if FLAG_AREA + 4 * n > 12 * 1024 * 1024:
        raise ConfigError("blocks too large for the DMA buffers")
    comm = TCAComm(cluster)
    engine = cluster.engine
    rng = np.random.default_rng(seed)
    blocks = [rng.integers(0, 256, block_bytes, dtype=np.uint8)
              for _ in range(n)]

    # Slot i of every node's DMA buffer will hold node i's block.
    for rank in range(n):
        cluster.driver(rank).fill_dma_buffer(rank * block_bytes,
                                             blocks[rank])

    # Small blocks ride PIO, bulk rides chained DMA (the E16 crossover).
    pio_threshold = 2048

    def worker(rank: int):
        driver = cluster.driver(rank)
        node = cluster.node(rank)
        right = (rank + 1) % n
        for step in range(n - 1):
            # The block this rank forwards this step (received last step,
            # or its own on the first step).
            block_id = (rank - step) % n
            src_local = driver.dma_buffer(block_id * block_bytes)
            dst_global = comm.host_global(
                right,
                cluster.driver(right).dma_buffer(block_id * block_bytes))
            if block_bytes <= pio_threshold:
                payload = node.dram.cpu_read(src_local, block_bytes)
                yield engine.process(
                    comm.put_pio_timed(rank, dst_global, payload),
                    name=f"ag{rank}.pio{step}")
            else:
                yield engine.process(
                    comm.put_dma(rank, src_local, dst_global, block_bytes),
                    name=f"ag{rank}.put{step}")
            # Flag the neighbour: "step's block has landed".
            flag_global = comm.host_global(
                right, cluster.driver(right).dma_buffer(FLAG_AREA + step * 4))
            cluster.node(rank).cpu.store_u32(flag_global, step + 1)
            # Wait for our own inbound block of this step.
            yield engine.process(
                driver.poll_dma_buffer_u32(FLAG_AREA + step * 4, step + 1),
                name=f"ag{rank}.wait{step}")

    procs = [engine.process(worker(rank), name=f"allgather{rank}")
             for rank in range(n)]
    while not all(p.done for p in procs):
        if not engine.step():
            raise ConfigError("allgather deadlocked")

    expect = np.concatenate(blocks)
    results = []
    for rank in range(n):
        got = cluster.driver(rank).read_dma_buffer(0, block_bytes * n)
        if not np.array_equal(got, expect):
            raise ConfigError(f"allgather result mismatch on rank {rank}")
        results.append(got)
    return results
