"""Ring allgather over TCA DMA puts.

Every node contributes a block; after N-1 ring steps every node holds all
blocks.  Each step is a put to the East neighbour followed by a PIO flag
store; receivers poll the flag — the zero-software-stack synchronization
style TCA enables (no MPI, §V).

This mini-app predates :mod:`repro.collectives` and is now a thin
wrapper over :meth:`repro.collectives.TCACollectives.allgather`, kept
for its historical entry point (the E18 experiment and the apps tests
call it).  The algorithm is unchanged: small blocks ride PIO, bulk rides
chained DMA, one put in flight per rank.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.collectives import ring_allgather as _collectives_allgather
from repro.tca.subcluster import TCASubCluster


def ring_allgather(cluster: TCASubCluster, block_bytes: int = 1024,
                   seed: int = 7) -> List[np.ndarray]:
    """Run a ring allgather; returns each node's gathered buffer.

    Raises :class:`~repro.errors.ConfigError` if the result differs
    across nodes (self-checking) or the blocks overflow the DMA buffers.
    """
    return _collectives_allgather(cluster, block_bytes=block_bytes,
                                  seed=seed)
