"""Kernel-driver models: the PEACH2 driver and the GPUDirect P2P driver."""

from repro.drivers.peach2_driver import PEACH2Driver
from repro.drivers.p2p_driver import P2PDriver

__all__ = ["PEACH2Driver", "P2PDriver"]
