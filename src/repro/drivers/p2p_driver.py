"""The P2P driver: GPUDirect Support for RDMA page pinning.

§IV: "we develop two device drivers: the PEACH2 driver ... and the P2P
driver for enabling GPUDirect Support for RDMA".  Given the access token
that CUDA's ``cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_P2P_TOKENS)``
returns, this driver pins the GPU pages into the PCIe address space so
other devices (PEACH2, IB HCAs) can address them directly (§III-C steps
3-4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DriverError
from repro.hw.gpu import GPU


@dataclass(frozen=True)
class PinnedMapping:
    """One pinned range: its bus address and extent."""

    gpu_name: str
    bus_address: int
    offset: int
    nbytes: int


class P2PDriver:
    """Pins/unpins GPU memory into the PCIe address space."""

    def __init__(self):
        self._pins: Dict[Tuple[str, int, int], PinnedMapping] = {}

    def pin(self, gpu: GPU, token: object, offset: int,
            nbytes: int) -> PinnedMapping:
        """Pin ``nbytes`` of GPU memory at ``offset`` using a P2P token.

        The token must come from the CUDA runtime for the same allocation
        (it carries the GPU identity); this mirrors the permission check
        the real driver performs.
        """
        from repro.cuda.pointer import P2PToken  # local import: layering

        if not isinstance(token, P2PToken):
            raise DriverError("pin() needs the CU_POINTER_ATTRIBUTE_P2P_TOKENS "
                              "value from cuPointerGetAttribute")
        if token.gpu_name != gpu.name:
            raise DriverError(
                f"token is for {token.gpu_name}, not {gpu.name}")
        if not (token.offset <= offset
                and offset + nbytes <= token.offset + token.nbytes):
            raise DriverError("token does not cover the requested range")
        region = gpu.pin_pages(offset, nbytes)
        mapping = PinnedMapping(gpu.name, gpu.offset_to_bar(offset),
                                offset, nbytes)
        self._pins[(gpu.name, offset, nbytes)] = mapping
        return mapping

    def unpin(self, gpu: GPU, offset: int, nbytes: int) -> None:
        """Release a pinned range."""
        key = (gpu.name, offset, nbytes)
        if key not in self._pins:
            raise DriverError("range was not pinned by this driver")
        gpu.unpin_pages(offset, nbytes)
        del self._pins[key]

    @property
    def active_pins(self) -> int:
        """Number of live pinned ranges."""
        return len(self._pins)
