"""The PEACH2 device driver (§IV: "the PEACH2 driver for controlling the
PEACH2 board").

Responsibilities mirror the real driver:

* allocate the contiguous **DMA buffer** in host memory that §IV-A1 uses
  as the source/destination of DMA measurements;
* expose the chip's BARs to user space (``mmap``-style), enabling PIO
  RDMA-put by plain stores (§III-F1);
* build **descriptor tables** in the DMA buffer and ring the doorbell with
  a real register-write TLP;
* field the **completion interrupt** and timestamp it exactly where the
  paper reads TSC ("the clock counter is checked again in the interrupt
  handler", §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import DriverError
from repro.hw.node import ComputeNode
from repro.model.calibration import Calibration
from repro.peach2.board import PEACH2Board
from repro.peach2.descriptor import (DESCRIPTOR_BYTES, DMADescriptor,
                                     encode_table)
from repro.peach2.dma import STATUS_ABORTED, STATUS_DONE, STATUS_IDLE
from repro.peach2.registers import (DMA_REG_DESC_ADDR, DMA_REG_DESC_COUNT,
                                    DMA_REG_DOORBELL, DMA_REG_STATUS,
                                    REG_MSI_ADDRESS, REG_MSI_VECTOR,
                                    RegisterFile)
from repro.hw.cpu import MSI_REGION
from repro.sim.core import Signal, first_of
from repro.units import MiB

#: First MSI vector used for DMA-channel completion interrupts.
DMA_IRQ_VECTOR_BASE = 32

#: Size of the driver's contiguous DMA buffer.
DMA_BUFFER_BYTES = 16 * MiB


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry knobs of the robust chain-submission path.

    ``completion_timeout_ps`` is the wait for the *first* completion
    interrupt; each further attempt multiplies it by ``backoff`` (so a
    merely slow chain is given progressively more room instead of being
    hammered).  ``max_attempts`` bounds the whole recovery before the
    driver resets the channel and gives up with :class:`DriverError`.
    """

    completion_timeout_ps: int = 1_000_000_000  # 1 ms
    max_attempts: int = 5
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.completion_timeout_ps <= 0:
            raise DriverError("completion_timeout_ps must be positive")
        if self.max_attempts < 1:
            raise DriverError("max_attempts must be at least 1")
        if self.backoff < 1.0:
            raise DriverError("backoff must be >= 1.0")


class PEACH2Driver:
    """Kernel driver instance bound to one board in one node."""

    def __init__(self, node: ComputeNode, board: PEACH2Board,
                 dma_buffer_bytes: int = DMA_BUFFER_BYTES):
        if board.node is not node:
            raise DriverError("board is not installed in this node")
        self.node = node
        self.board = board
        self.chip = board.chip
        self.engine = node.engine
        self.calib: Calibration = node.params.calib

        # The driver's contiguous DMA buffer (kmalloc'd at load time).
        self.dma_buffer_addr = node.dram_alloc(dma_buffer_bytes)
        self.dma_buffer_bytes = dma_buffer_bytes
        # Descriptor tables live at the top of the DMA buffer, one slot
        # per channel (256 descriptors max each).
        self._table_slot_bytes = 256 * DESCRIPTOR_BYTES
        tables = self.chip.params.num_dma_channels * self._table_slot_bytes
        self._table_base = self.dma_buffer_addr + dma_buffer_bytes - tables
        self.usable_dma_bytes = dma_buffer_bytes - tables

        # Route DMA-completion MSIs to per-channel handlers.
        self._irq_signals: Dict[int, Optional[Signal]] = {}
        self.spurious_interrupts = 0
        # Recovery accounting (the robust run_chain_reliable path).
        self.completion_timeouts = 0
        self.lost_irqs_recovered = 0
        self.doorbell_retries = 0
        self.channel_resets = 0
        for channel in range(self.chip.params.num_dma_channels):
            vector = DMA_IRQ_VECTOR_BASE + channel
            node.cpu.register_irq_handler(
                vector, self._make_irq_handler(channel))
        self.chip.regs.poke_u64(REG_MSI_ADDRESS, MSI_REGION.base)
        self.chip.regs.poke_u64(REG_MSI_VECTOR, DMA_IRQ_VECTOR_BASE)

    # -- user-space mappings ------------------------------------------------------

    def mmap_tca_window(self) -> int:
        """Base bus address of BAR4, as mmapped into user space (§III-F1)."""
        return self.chip.bar4.base

    def mmap_registers(self) -> int:
        """Base bus address of BAR0 (privileged tools only)."""
        return self.chip.bar0.base

    def dma_buffer(self, offset: int = 0) -> int:
        """Bus address of a byte within the driver's DMA buffer."""
        if offset < 0 or offset >= self.usable_dma_bytes:
            raise DriverError(f"DMA-buffer offset {offset:#x} out of range")
        return self.dma_buffer_addr + offset

    # -- buffer access (host software touching its own DRAM) ------------------------

    def fill_dma_buffer(self, offset: int, data: np.ndarray) -> None:
        """CPU writes test data into the DMA buffer."""
        self.node.dram.cpu_write(self.dma_buffer(offset),
                                 np.asarray(data, dtype=np.uint8))

    def read_dma_buffer(self, offset: int, nbytes: int) -> np.ndarray:
        """CPU reads back from the DMA buffer."""
        return self.node.dram.cpu_read(self.dma_buffer(offset), nbytes)

    # -- DMA chain control -------------------------------------------------------------

    def write_chain(self, channel: int,
                    descriptors: Sequence[DMADescriptor]) -> int:
        """Write a descriptor table for ``channel`` into the DMA buffer.

        Returns the table's bus address.  Table stores are plain cached
        writes by the CPU; they happen before the measurement window.
        """
        if len(descriptors) > 255:
            raise DriverError("a chain holds at most 255 descriptors "
                              "(the paper's maximum burst)")
        table = encode_table(descriptors)
        addr = self._table_base + channel * self._table_slot_bytes
        self.node.dram.cpu_write(addr, table)
        self.chip.regs.poke_u64(
            RegisterFile.dma_offset(channel, DMA_REG_DESC_ADDR), addr)
        self.chip.regs.poke_u64(
            RegisterFile.dma_offset(channel, DMA_REG_DESC_COUNT),
            len(descriptors))
        return addr

    def ring_doorbell(self, channel: int) -> Signal:
        """Start the chain with a real PIO store to the doorbell register.

        Returns a signal that fires *in the interrupt handler* (after the
        kernel's IRQ-entry cost), with the completion TSC as its value —
        the paper's measurement endpoint.
        """
        if self._irq_signals.get(channel) is not None:
            raise DriverError(f"channel {channel} already has a chain pending")
        done = self.engine.signal(f"{self.chip.name}.irq{channel}")
        self._irq_signals[channel] = done
        doorbell = self.chip.bar0.base + RegisterFile.dma_offset(
            channel, DMA_REG_DOORBELL)
        if self.engine.tracer is not None:
            self.engine.trace(f"{self.node.name}.driver", "doorbell",
                              channel=channel, chip=self.chip.name)
        self.node.cpu.store_u32(doorbell, 1)
        return done

    def run_chain(self, channel: int,
                  descriptors: Sequence[DMADescriptor]):
        """Process: program + doorbell + wait for the completion IRQ.

        Yields through the whole operation and returns the elapsed
        picoseconds from doorbell store to interrupt handler (the TSC
        difference of §IV-A).
        """
        self.write_chain(channel, descriptors)
        start_tsc = self.node.cpu.read_tsc()
        done = self.ring_doorbell(channel)
        end_tsc = yield done
        return end_tsc - start_tsc

    # -- asynchronous submission (the collectives layer) --------------------------

    def channel_pending(self, channel: int) -> bool:
        """True while a submitted chain has not completed its IRQ yet."""
        return self._irq_signals.get(channel) is not None

    def submit_chain(self, channel: int,
                     descriptors: Sequence[DMADescriptor]) -> Signal:
        """Program + doorbell *without* waiting; returns the IRQ signal.

        The returned signal fires in the interrupt handler with the
        completion TSC as its value.  This is the submission path the
        multi-channel collective scheduler
        (:class:`repro.collectives.ChannelScheduler`) uses to keep
        several chains in flight on different channels of one chip.
        """
        self.write_chain(channel, descriptors)
        return self.ring_doorbell(channel)

    # -- robust submission (timeout + bounded retry) -----------------------------

    def read_dma_status(self, channel: int):
        """Process: MMIO-read a channel's STATUS register.

        A real non-posted read round trip to BAR0 — recovery polls cost
        simulated time like they cost a real driver.
        """
        address = self.chip.bar0.base + RegisterFile.dma_offset(
            channel, DMA_REG_STATUS)
        data = yield self.node.cpu.load(address, 8)
        return int.from_bytes(data, "little")

    def _ring(self, channel: int) -> None:
        """Re-issue the doorbell store for an already-pending chain.

        Used by the retry path when the first doorbell never latched;
        the completion signal allocated by :meth:`ring_doorbell` stays
        in place, which makes resubmission idempotent.
        """
        doorbell = self.chip.bar0.base + RegisterFile.dma_offset(
            channel, DMA_REG_DOORBELL)
        if self.engine.tracer is not None:
            self.engine.trace(f"{self.node.name}.driver", "doorbell-retry",
                              channel=channel, chip=self.chip.name)
        self.node.cpu.store_u32(doorbell, 1)

    def reset_channel(self, channel: int) -> None:
        """Recovery of last resort: abort the chain, clear IRQ bookkeeping.

        After this the channel can accept a fresh :meth:`ring_doorbell`.
        """
        self.chip.dma.abort(channel)
        self._irq_signals[channel] = None
        self.channel_resets += 1
        if self.engine.tracer is not None:
            self.engine.trace(f"{self.node.name}.driver", "channel-reset",
                              channel=channel, chip=self.chip.name)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(
                f"driver.{self.node.name}.channel_resets").inc()

    def run_chain_reliable(self, channel: int,
                           descriptors: Sequence[DMADescriptor],
                           policy: Optional[RetryPolicy] = None):
        """Process: :meth:`run_chain` hardened with timeout and retry.

        Waits for the completion IRQ under a timeout.  On expiry the
        driver polls the channel STATUS register over MMIO and acts on
        what it finds:

        * ``DONE``/``ABORTED`` — the chain finished but the MSI was lost;
          complete from the poll (counted in ``lost_irqs_recovered``).
        * ``IDLE`` — the doorbell never latched; ring it again
          (idempotent: the table registers still hold the chain).
        * ``RUNNING`` — merely slow; back off exponentially and rewait.

        Returns the elapsed picoseconds from the first doorbell store to
        the observed completion.  After ``policy.max_attempts`` the
        channel is reset and :class:`DriverError` raised.
        """
        policy = policy or RetryPolicy()
        self.write_chain(channel, descriptors)
        start_tsc = self.node.cpu.read_tsc()
        done = self.ring_doorbell(channel)
        timeout_ps = policy.completion_timeout_ps
        for _attempt in range(policy.max_attempts):
            timer = self.engine.signal(
                f"{self.chip.name}.irq{channel}.timeout")
            timer.fire_after(timeout_ps)
            index, value = yield first_of(self.engine, [done, timer])
            if index == 0:
                # The IRQ won: retire the losing timer so its heap event
                # does not pad a drain-mode run to the full timeout (nor
                # inflate events_processed).
                timer.cancel()
                return value - start_tsc
            self.completion_timeouts += 1
            if self.engine.tracer is not None:
                self.engine.trace(f"{self.node.name}.driver", "irq-timeout",
                                  channel=channel, waited_ps=timeout_ps)
            if self.engine.metrics is not None:
                self.engine.metrics.counter(
                    f"driver.{self.node.name}.irq_timeouts").inc()
            status = yield self.engine.process(
                self.read_dma_status(channel),
                name=f"{self.node.name}.driver.status{channel}")
            if done.fired:
                # The interrupt raced our status poll; take the real one.
                return done.value - start_tsc
            if status in (STATUS_DONE, STATUS_ABORTED):
                # Completed, but the MSI never arrived: recover from the
                # status poll instead of waiting forever.
                self.lost_irqs_recovered += 1
                self._irq_signals[channel] = None
                if self.engine.tracer is not None:
                    self.engine.trace(f"{self.node.name}.driver",
                                      "irq-recovered", channel=channel)
                if self.engine.metrics is not None:
                    self.engine.metrics.counter(
                        f"driver.{self.node.name}.lost_irqs_recovered").inc()
                return self.node.cpu.read_tsc() - start_tsc
            if status == STATUS_IDLE:
                # The doorbell write was swallowed; resubmit it.
                self.doorbell_retries += 1
                if self.engine.metrics is not None:
                    self.engine.metrics.counter(
                        f"driver.{self.node.name}.doorbell_retries").inc()
                self._ring(channel)
            # STATUS_RUNNING: give the chain more room next round.
            timeout_ps = int(timeout_ps * policy.backoff)
        self.reset_channel(channel)
        raise DriverError(
            f"{self.node.name}: channel {channel} chain did not complete "
            f"after {policy.max_attempts} attempts")

    def _make_irq_handler(self, channel: int):
        def handler(_vector: int) -> None:
            # Kernel IRQ entry, then the driver's handler reads TSC.
            self.engine.after(self.calib.irq_handler_entry_ps,
                              self._complete_irq, channel)

        return handler

    def _complete_irq(self, channel: int) -> None:
        signal = self._irq_signals.get(channel)
        if signal is None:
            # A chain started without ring_doorbell() (e.g. a register
            # poke by diagnostics); acknowledge and count it.
            self.spurious_interrupts += 1
            return
        self._irq_signals[channel] = None
        if self.engine.tracer is not None:
            self.engine.trace(f"{self.node.name}.driver", "irq-complete",
                              channel=channel, chip=self.chip.name)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(
                f"driver.{self.node.name}.irqs").inc()
        signal.fire(self.node.cpu.read_tsc())

    # -- polling (used by the PIO latency experiment, §IV-B1) ---------------------------

    def poll_dma_buffer_u32(self, offset: int, expect: int):
        """Process: spin-read a DMA-buffer word until it equals ``expect``.

        Returns the TSC at observation.  Poll granularity is the driver's
        load loop interval.
        """
        address = self.dma_buffer(offset)
        while True:
            word = self.node.dram.cpu_read(address, 4)
            if int.from_bytes(word.tobytes(), "little") == expect:
                return self.node.cpu.read_tsc()
            yield self.calib.driver_poll_interval_ps
