"""repro — Tightly Coupled Accelerators (TCA) with PEACH2, reproduced.

A production-quality, discrete-event reproduction of:

    Hanawa, Kodama, Boku, Sato: "Tightly Coupled Accelerators Architecture
    for Minimizing Communication Latency among Accelerators", 2013.

Quick start::

    from repro import TCASubCluster, TCAComm
    import numpy as np

    cluster = TCASubCluster(num_nodes=4)
    comm = TCAComm(cluster)
    data = np.arange(64, dtype=np.uint8)
    dst = comm.host_global(node_id=1, offset=cluster.driver(1).dma_buffer(0))
    comm.put_pio(src_node=0, dst_global=dst, data=data)
    cluster.engine.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.sim import Engine
from repro.hw.node import ComputeNode, NodeParams
from repro.peach2.board import PEACH2Board
from repro.peach2.chip import PEACH2Chip, PEACH2Params
from repro.peach2.descriptor import DMADescriptor, DescriptorFlags
from repro.drivers import P2PDriver, PEACH2Driver
from repro.cuda import CudaContext, CudaParams, DevicePtr
from repro.tca import (TCAAddressMap, TCAComm, TCASubCluster,
                       HybridCluster, HybridComm,
                       BLOCK_GPU0, BLOCK_GPU1, BLOCK_HOST, BLOCK_INTERNAL)
from repro.tca.notify import FlagPool
from repro.collectives import ChannelScheduler, TCACollectives

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "ComputeNode",
    "NodeParams",
    "PEACH2Board",
    "PEACH2Chip",
    "PEACH2Params",
    "DMADescriptor",
    "DescriptorFlags",
    "P2PDriver",
    "PEACH2Driver",
    "CudaContext",
    "CudaParams",
    "DevicePtr",
    "TCAAddressMap",
    "TCAComm",
    "TCASubCluster",
    "HybridCluster",
    "HybridComm",
    "FlagPool",
    "ChannelScheduler",
    "TCACollectives",
    "BLOCK_GPU0",
    "BLOCK_GPU1",
    "BLOCK_HOST",
    "BLOCK_INTERNAL",
    "__version__",
]
