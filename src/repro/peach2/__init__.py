"""PEACH2: the PCI Express Adaptive Communication Hub, version 2.

The chip at the heart of the TCA architecture (§III): four PCIe Gen2 x8
ports (N to the host, E/W forming a ring, S coupling two rings), a static
address-range router, a chaining DMA controller, internal packet memory,
and a NIOS management controller.
"""

from repro.peach2.registers import RegisterFile, RouteEntry, PortCode
from repro.peach2.descriptor import (DMADescriptor, DescriptorFlags,
                                     DESCRIPTOR_BYTES, encode_table,
                                     decode_descriptor)
from repro.peach2.chip import PEACH2Chip, PEACH2Params
from repro.peach2.board import PEACH2Board
from repro.peach2.dma import DMAController
from repro.peach2.firmware import NIOSFirmware

__all__ = [
    "RegisterFile",
    "RouteEntry",
    "PortCode",
    "DMADescriptor",
    "DescriptorFlags",
    "DESCRIPTOR_BYTES",
    "encode_table",
    "decode_descriptor",
    "PEACH2Chip",
    "PEACH2Params",
    "PEACH2Board",
    "DMAController",
    "NIOSFirmware",
]
