"""DMA descriptors and their in-memory wire format.

The chaining mechanism (§III-F2) registers "multiple DMA requests as the
DMA descriptors ... in the descriptor table in advance"; the table lives
in real (simulated) memory and the DMA controller fetches it with real
read TLPs, which is exactly the overhead Fig. 8 measures.

Each descriptor is 32 bytes:

    src(8) | dst(8) | length(4) | flags(4) | reserved(8)
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import DMAError

DESCRIPTOR_BYTES = 32
_FORMAT = "<QQII8x"


class DescriptorFlags(enum.IntFlag):
    """Per-descriptor control bits."""

    NONE = 0
    #: Do not start this descriptor until every prior one fully completed
    #: (used for the two-phase remote put through internal memory, §IV-B2).
    FENCE = 1
    #: Raise the completion interrupt after this descriptor (set on the
    #: last descriptor of a chain).
    INTERRUPT = 2


@dataclass(frozen=True)
class DMADescriptor:
    """One DMA request: copy ``length`` bytes from ``src`` to ``dst``.

    Addresses are bus addresses in the node's PCIe space; either side may
    be the chip's internal memory (its BAR2 window).  The *current* PEACH2
    DMAC requires the internal memory to be one side of every transfer
    (§IV-B2); the pipelined next-generation DMAC lifts that.
    """

    src: int
    dst: int
    length: int
    flags: DescriptorFlags = DescriptorFlags.NONE

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise DMAError(f"descriptor length must be positive: {self.length}")
        if self.src < 0 or self.dst < 0:
            raise DMAError("descriptor addresses must be non-negative")

    def encode(self) -> bytes:
        """Pack to the 32-byte wire format."""
        return struct.pack(_FORMAT, self.src, self.dst, self.length,
                           int(self.flags))


def decode_descriptor(raw: bytes) -> DMADescriptor:
    """Unpack one 32-byte descriptor."""
    if len(raw) != DESCRIPTOR_BYTES:
        raise DMAError(f"descriptor must be {DESCRIPTOR_BYTES} bytes")
    src, dst, length, flags = struct.unpack(_FORMAT, raw)
    return DMADescriptor(src, dst, length, DescriptorFlags(flags))


def encode_table(descriptors: Sequence[DMADescriptor]) -> np.ndarray:
    """Pack a chain into the byte image the driver writes to memory.

    The INTERRUPT flag is set on the final descriptor automatically, as
    the PEACH2 driver does when it builds a chain.
    """
    if not descriptors:
        raise DMAError("empty descriptor chain")
    blob = bytearray()
    last = len(descriptors) - 1
    for i, desc in enumerate(descriptors):
        flags = desc.flags | (DescriptorFlags.INTERRUPT if i == last
                              else DescriptorFlags.NONE)
        blob += DMADescriptor(desc.src, desc.dst, desc.length, flags).encode()
    return np.frombuffer(bytes(blob), dtype=np.uint8).copy()


def decode_table(raw: np.ndarray, count: int) -> List[DMADescriptor]:
    """Unpack ``count`` descriptors from a fetched table image."""
    data = raw.tobytes()
    if len(data) < count * DESCRIPTOR_BYTES:
        raise DMAError("descriptor table image too short")
    return [decode_descriptor(data[i * DESCRIPTOR_BYTES:(i + 1) * DESCRIPTOR_BYTES])
            for i in range(count)]
