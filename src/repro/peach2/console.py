"""NIOS management console (Gigabit Ethernet / RS-232C, §III-D).

The board exposes a tiny line-oriented operator console served by the
NIOS firmware — "Gigabit Ethernet and RS-232C are equipped for
communication with the NIOS processor".  It is management-plane only: it
can read state and reprogram control registers, but never touches the
data path.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.peach2.dma import (STATUS_ABORTED, STATUS_DONE, STATUS_IDLE,
                              STATUS_RUNNING)
from repro.peach2.registers import NUM_ROUTE_ENTRIES, PortCode

_STATUS_NAMES = {STATUS_IDLE: "idle", STATUS_RUNNING: "running",
                 STATUS_DONE: "done", STATUS_ABORTED: "aborted"}


class ManagementConsole:
    """Line-command interface to one chip's NIOS firmware."""

    PROMPT = "peach2> "

    def __init__(self, chip):
        self.chip = chip
        self.history: List[str] = []
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "help": self._cmd_help,
            "id": self._cmd_id,
            "status": self._cmd_status,
            "links": self._cmd_links,
            "counters": self._cmd_counters,
            "routes": self._cmd_routes,
            "dma": self._cmd_dma,
            "reset": self._cmd_reset,
        }

    def execute(self, line: str) -> str:
        """Run one console command line and return its output."""
        self.history.append(line)
        parts = line.split()
        if not parts:
            return ""
        handler = self._commands.get(parts[0])
        if handler is None:
            return f"unknown command {parts[0]!r}; try 'help'"
        try:
            return handler(parts[1:])
        except Exception as exc:  # operator console: report, don't crash
            return f"error: {exc}"

    # -- commands -----------------------------------------------------------------

    def _cmd_help(self, args: List[str]) -> str:
        return ("commands: help | id | status | links | counters | routes "
                "| dma <ch> | reset dma <ch>")

    def _cmd_id(self, args: List[str]) -> str:
        regs = self.chip.regs
        return (f"node_id={regs.node_id} tca_base=0x{regs.tca_base:x} "
                f"stride=0x{regs.node_stride:x} block=0x{regs.block_size:x}")

    def _cmd_status(self, args: List[str]) -> str:
        return self.chip.firmware.health_report()

    def _cmd_links(self, args: List[str]) -> str:
        states = self.chip.firmware.scan_links()
        return " ".join(f"{name}={'up' if up else 'down'}"
                        for name, up in states.items())

    def _cmd_counters(self, args: List[str]) -> str:
        lines = [f"routed_total={self.chip.tlps_routed}"]
        for name, port in (("N", self.chip.port_n), ("E", self.chip.port_e),
                           ("W", self.chip.port_w), ("S", self.chip.port_s)):
            lines.append(f"{name}: tx={port.tlps_sent} rx={port.tlps_received}")
        return "\n".join(lines)

    def _cmd_routes(self, args: List[str]) -> str:
        routes = self.chip.regs.routes()
        if not routes:
            return "routing table empty"
        lines = []
        for i, entry in enumerate(routes):
            lines.append(f"[{i}] mask=0x{entry.mask:x} "
                         f"lo=0x{entry.lower:x} hi=0x{entry.upper:x} "
                         f"-> {entry.port.name}")
        return "\n".join(lines)

    def _cmd_dma(self, args: List[str]) -> str:
        if not args:
            channels = range(self.chip.params.num_dma_channels)
        else:
            channels = [int(args[0])]
        lines = []
        for ch in channels:
            status = self.chip.regs.dma_status(ch)
            lines.append(
                f"ch{ch}: {_STATUS_NAMES.get(status, status)} "
                f"table=0x{self.chip.regs.dma_desc_addr(ch):x} "
                f"count={self.chip.regs.dma_desc_count(ch)}")
        return "\n".join(lines)

    def _cmd_reset(self, args: List[str]) -> str:
        if len(args) != 2 or args[0] != "dma":
            return "usage: reset dma <channel>"
        channel = int(args[1])
        aborted = self.chip.dma.abort(channel)
        return (f"ch{channel}: abort requested"
                if aborted else f"ch{channel}: idle, nothing to abort")
