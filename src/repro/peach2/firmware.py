"""NIOS management firmware.

The PEACH2 chip carries an Altera NIOS soft processor that "works only to
monitor and manage PEARL, except for the packet transfer" (§III-D).  The
model keeps per-port health/traffic state, detects cable loss, and renders
the kind of status report an operator would read over the board's
management interfaces (Gigabit Ethernet / RS-232C).

The **watchdog** is the active half of that mandate: a periodic NIOS task
that rescans link state and, when a ring cable (E/W port) has died,
reports the failure upward — to the firmware event log, the trace/metrics
hooks, and an optional ``on_ring_down`` callback.  The sub-cluster wires
that callback to :meth:`repro.tca.subcluster.TCASubCluster.heal`, closing
the PEARL detect→reroute loop without operator involvement (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class PortStatus:
    """Link state and traffic counters of one port, as NIOS sees them."""

    name: str
    role: str
    link_up: bool = False
    tlps_routed_out: int = 0


class NIOSFirmware:
    """Monitor/manage controller; never touches the data path."""

    #: Default NIOS health-check period (a soft processor polling loop).
    WATCHDOG_INTERVAL_PS = 50_000_000  # 50 us

    def __init__(self, chip):
        self.chip = chip
        self.events: List[str] = []
        self._port_status: Dict[int, PortStatus] = {}
        #: Called as ``on_ring_down(chip, link)`` when the watchdog finds
        #: a dead ring cable (set by TCASubCluster.enable_auto_heal).
        self.on_ring_down: Optional[Callable] = None
        self.watchdog_scans = 0
        self.ring_failures_seen = 0
        self._watchdog_running = False
        self._reported_down: set = set()

    def note_routed(self, out_port) -> None:
        """Data-path hook: count an egress packet (free-running counter)."""
        # NIOS reads these counters; it does not sit in the packet path.
        status = self._status_of(out_port)
        status.tlps_routed_out += 1

    def _status_of(self, port) -> PortStatus:
        status = self._port_status.get(id(port))
        if status is None:
            label = port.name.rsplit(".", 1)[-1]
            status = PortStatus(label, port.role.value)
            self._port_status[id(port)] = status
        return status

    def _all_ports(self):
        ports = [self.chip.port_n, self.chip.port_e, self.chip.port_w,
                 self.chip.port_s]
        for extra in ("port_t", "port_u", "port_d"):
            port = getattr(self.chip, extra, None)
            if port is not None:
                ports.append(port)
        return ports

    def _fabric_ports(self):
        """The cable-bearing ports the watchdog guards.

        E/W always (the paper's ring); on a torus chip the S/T and U/D
        dimension pairs are ring cables too, so they join the watch list.
        """
        ports = [self.chip.port_e, self.chip.port_w]
        if getattr(self.chip, "port_t", None) is not None:
            ports += [self.chip.port_s, self.chip.port_t]
        port_u = getattr(self.chip, "port_u", None)
        if port_u is not None:
            ports += [port_u, self.chip.port_d]
        return ports

    def scan_links(self) -> Dict[str, bool]:
        """Poll every port's link state; log transitions."""
        states: Dict[str, bool] = {}
        for port in self._all_ports():
            status = self._status_of(port)
            up = port.connected and port.link.up
            if up != status.link_up:
                verb = "up" if up else "DOWN"
                self.events.append(
                    f"[{self.chip.engine.now_ns:.0f}ns] link {status.name} {verb}")
            status.link_up = up
            states[status.name] = up
        return states

    # -- watchdog -----------------------------------------------------------

    def start_watchdog(self, interval_ps: Optional[int] = None,
                       on_ring_down: Optional[Callable] = None) -> None:
        """Start the periodic health-check task (idempotent).

        Every ``interval_ps`` the watchdog rescans link state and reports
        each newly dead ring cable (E/W port) once — to the event log,
        the trace/metrics hooks, and ``on_ring_down(chip, link)``.
        """
        if on_ring_down is not None:
            self.on_ring_down = on_ring_down
        if self._watchdog_running:
            return
        self._watchdog_running = True
        engine = self.chip.engine
        engine.process(
            self._watchdog(interval_ps or self.WATCHDOG_INTERVAL_PS),
            name=f"{self.chip.name}.watchdog")

    def stop_watchdog(self) -> None:
        """Stop the health-check task (it exits at its next wakeup).

        Must be called before draining the engine: a running watchdog
        keeps the event heap non-empty forever.
        """
        self._watchdog_running = False

    def _watchdog(self, interval_ps: int):
        engine = self.chip.engine
        while self._watchdog_running:
            yield interval_ps
            if not self._watchdog_running:
                return
            self.watchdog_scans += 1
            self.scan_links()
            for port in self._fabric_ports():
                if not port.connected:
                    continue
                link = port.link
                if link.up:
                    # Recovered: report again if it dies a second time.
                    self._reported_down.discard(link.name)
                    continue
                if link.name in self._reported_down:
                    continue
                self._reported_down.add(link.name)
                self.ring_failures_seen += 1
                self.events.append(
                    f"[{engine.now_ns:.0f}ns] watchdog: ring cable "
                    f"{link.name} down")
                if engine.tracer is not None:
                    engine.trace(self.chip.name, "watchdog-ring-down",
                                 link=link.name)
                if engine.metrics is not None:
                    engine.metrics.counter(
                        f"firmware.{self.chip.name}.ring_down_detected").inc()
                if self.on_ring_down is not None:
                    self.on_ring_down(self.chip, link)

    def health_report(self) -> str:
        """Operator-facing status text (as served over GbE/RS-232C)."""
        self.scan_links()
        regs = self.chip.regs
        lines = [
            f"PEACH2 {self.chip.name}: node_id={regs.node_id} "
            f"tca_base=0x{regs.tca_base:x}",
        ]
        for status in self._port_status.values():
            state = "up" if status.link_up else "down"
            lines.append(f"  port {status.name:<2} ({status.role:<12}) "
                         f"{state:<5} out_tlps={status.tlps_routed_out}")
        lines.append(f"  dma chains completed: "
                     f"{self.chip.dma.chains_completed}")
        lines.extend(f"  event: {event}" for event in self.events[-8:])
        return "\n".join(lines)
