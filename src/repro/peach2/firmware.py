"""NIOS management firmware.

The PEACH2 chip carries an Altera NIOS soft processor that "works only to
monitor and manage PEARL, except for the packet transfer" (§III-D).  The
model keeps per-port health/traffic state, detects cable loss, and renders
the kind of status report an operator would read over the board's
management interfaces (Gigabit Ethernet / RS-232C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class PortStatus:
    """Link state and traffic counters of one port, as NIOS sees them."""

    name: str
    role: str
    link_up: bool = False
    tlps_routed_out: int = 0


class NIOSFirmware:
    """Monitor/manage controller; never touches the data path."""

    def __init__(self, chip):
        self.chip = chip
        self.events: List[str] = []
        self._port_status: Dict[int, PortStatus] = {}

    def note_routed(self, out_port) -> None:
        """Data-path hook: count an egress packet (free-running counter)."""
        # NIOS reads these counters; it does not sit in the packet path.
        status = self._status_of(out_port)
        status.tlps_routed_out += 1

    def _status_of(self, port) -> PortStatus:
        status = self._port_status.get(id(port))
        if status is None:
            label = port.name.rsplit(".", 1)[-1]
            status = PortStatus(label, port.role.value)
            self._port_status[id(port)] = status
        return status

    def scan_links(self) -> Dict[str, bool]:
        """Poll every port's link state; log transitions."""
        states: Dict[str, bool] = {}
        for port in (self.chip.port_n, self.chip.port_e, self.chip.port_w,
                     self.chip.port_s):
            status = self._status_of(port)
            up = port.connected and port.link.up
            if up != status.link_up:
                verb = "up" if up else "DOWN"
                self.events.append(
                    f"[{self.chip.engine.now_ns:.0f}ns] link {status.name} {verb}")
            status.link_up = up
            states[status.name] = up
        return states

    def health_report(self) -> str:
        """Operator-facing status text (as served over GbE/RS-232C)."""
        self.scan_links()
        regs = self.chip.regs
        lines = [
            f"PEACH2 {self.chip.name}: node_id={regs.node_id} "
            f"tca_base=0x{regs.tca_base:x}",
        ]
        for status in self._port_status.values():
            state = "up" if status.link_up else "down"
            lines.append(f"  port {status.name:<2} ({status.role:<12}) "
                         f"{state:<5} out_tlps={status.tlps_routed_out}")
        lines.append(f"  dma chains completed: "
                     f"{self.chip.dma.chains_completed}")
        lines.extend(f"  event: {event}" for event in self.events[-8:])
        return "\n".join(lines)
