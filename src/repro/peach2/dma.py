"""PEACH2's chaining DMA controller.

Behavioural model of §III-F2 and §IV-A/IV-B:

* The driver writes a descriptor table into memory (host DMA buffer or the
  chip's internal memory), programs the channel's table address and count,
  and rings the doorbell register.  Doorbell-to-first-data therefore costs
  a real register-write TLP plus a real descriptor-fetch read round trip —
  the overhead that dominates Fig. 8's single-DMA curve.
* Descriptors are fetched in 256-byte table reads (8 descriptors each) and
  *prefetched* ahead of execution, which is how chaining "reduce[s] the
  impact of the overhead for retrieving the DMA descriptor table".
* Execution is a two-stage pipeline: descriptor setup overlaps the
  previous descriptor's data streaming, so per-descriptor setup only shows
  through for short transfers (the left side of Fig. 7).
* The *current* DMAC requires the internal memory to be the source of
  every DMA write and the destination of every DMA read (§IV-B2); remote
  puts therefore need two fenced phases.  Setting
  :attr:`DMAController.pipelined` enables the paper's next-generation
  DMAC, which reads the local source and writes the remote destination
  simultaneously in a pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import DMAError
from repro.pcie.packetizer import split_read_requests, split_transfer
from repro.pcie.tlp import make_msi, make_read, make_write, tlp_wire_bytes, TLPKind
from repro.peach2.descriptor import (DESCRIPTOR_BYTES, DescriptorFlags,
                                     DMADescriptor, decode_table)
from repro.peach2.registers import (DMA_REG_DOORBELL, RegisterFile,
                                    REG_MSI_ADDRESS, REG_MSI_VECTOR)
from repro.sim.core import Process, Signal
from repro.sim.queues import Latch, Resource, Store
from repro.units import transfer_ps

STATUS_IDLE = 0
STATUS_RUNNING = 1
STATUS_DONE = 2
STATUS_ABORTED = 3


class DMAController:
    """All DMA channels of one PEACH2 chip."""

    def __init__(self, chip, num_channels: int = 4):
        self.chip = chip
        self.engine = chip.engine
        self.calib = chip.params.calib
        self.num_channels = num_channels
        #: Enable the next-generation pipelined DMAC (§IV-B2 future work).
        self.pipelined = False
        self.read_window = Resource(self.engine,
                                    self.calib.dma_max_outstanding_reads,
                                    name=f"{chip.name}.dma-window")
        self._running: Dict[int, bool] = {ch: False
                                          for ch in range(num_channels)}
        self._abort_requested: Dict[int, bool] = {
            ch: False for ch in range(num_channels)}
        #: Fired (with the channel number) each time a chain completes;
        #: recreated per run.  Tests and drivers may wait on these.
        self.chain_done: Dict[int, Optional[Signal]] = {
            ch: None for ch in range(num_channels)}
        self.chains_completed = 0
        self.bytes_transferred = 0
        #: Chains started per channel — the arbitration statistic the
        #: collective scheduler's tests read to prove overlap happened.
        self.chains_per_channel: Dict[int, int] = {
            ch: 0 for ch in range(num_channels)}
        for ch in range(num_channels):
            offset = RegisterFile.dma_offset(ch, DMA_REG_DOORBELL)
            chip.regs.write_hooks[offset] = self._make_doorbell(ch)

    # -- doorbell ---------------------------------------------------------------

    def _make_doorbell(self, channel: int) -> Callable[[int], None]:
        def ring(_value: int) -> None:
            faults = self.engine.faults
            if faults is not None and faults.doorbell_stuck(self.chip.name,
                                                            channel):
                # The register write was posted (and paid for) but the
                # hardware never latched it: the channel stays IDLE and
                # only the driver's timeout/retry can recover.
                if self.engine.tracer is not None:
                    self.engine.trace(self.chip.name, "doorbell-stuck",
                                      channel=channel)
                return
            self.start(channel)

        return ring

    # -- channel arbitration hooks (used by repro.collectives) -------------------

    def is_busy(self, channel: int) -> bool:
        """True while a chain is executing on ``channel``."""
        return bool(self._running.get(channel))

    def idle_channels(self) -> List[int]:
        """Channels with no chain executing, lowest first.

        Note that a channel whose chain finished but whose completion IRQ
        the driver has not consumed yet reads *idle* here; arbitration
        layers that reuse channels must also check
        :meth:`~repro.drivers.peach2_driver.PEACH2Driver.channel_pending`.
        """
        return [ch for ch in range(self.num_channels)
                if not self._running.get(ch)]

    def start(self, channel: int) -> Signal:
        """Kick a channel (as the doorbell register write does).

        Returns the chain-completion signal.
        """
        if self._running.get(channel):
            raise DMAError(f"{self.chip.name}: DMA channel {channel} is busy")
        count = self.chip.regs.dma_desc_count(channel)
        if count <= 0:
            raise DMAError(f"{self.chip.name}: channel {channel} has no "
                           "descriptors programmed")
        self._running[channel] = True
        self.chains_per_channel[channel] += 1
        self.engine.trace(self.chip.name, "dma-start", channel=channel,
                          descriptors=count)
        done = self.engine.signal(f"{self.chip.name}.dma{channel}.done")
        self.chain_done[channel] = done
        self.chip.regs.set_dma_status(channel, STATUS_RUNNING)
        self.engine.process(self._run_chain(channel, done),
                            name=f"{self.chip.name}.dma{channel}")
        return done

    def abort(self, channel: int) -> bool:
        """Request a clean abort of a running chain (console `reset dma`).

        The engine stops at the next descriptor boundary, drains its
        outstanding reads, sets STATUS_ABORTED and raises the completion
        interrupt.  Returns False if the channel was idle.
        """
        if not self._running.get(channel):
            return False
        self._abort_requested[channel] = True
        return True

    # -- descriptor fetch ----------------------------------------------------------

    def _fetch_table(self, channel: int, queue: Store):
        """Prefetcher: stream descriptor batches into ``queue``."""
        regs = self.chip.regs
        table_addr = regs.dma_desc_addr(channel)
        count = regs.dma_desc_count(channel)
        fetched = 0
        while fetched < count:
            take = min(count - fetched, self.calib.dma_desc_fetch_batch)
            addr = table_addr + fetched * DESCRIPTOR_BYTES
            nbytes = take * DESCRIPTOR_BYTES
            fetch_start_ps = self.engine.now_ps
            if self.chip.is_internal_address(addr, nbytes):
                yield self.calib.internal_read_latency_ps
                raw = self.chip.internal.read(self.chip.internal_offset(addr),
                                              nbytes)
            else:
                tag, done = self.chip.tags.issue(nbytes)
                self.chip.inject(make_read(addr, nbytes,
                                           requester_id=self.chip.device_id,
                                           tag=tag))
                data = yield done  # fetch acceptance folded into the RTT
                raw = np.frombuffer(data, dtype=np.uint8)
            faults = self.engine.faults
            if faults is not None and faults.descriptor_fetch_error(
                    self.chip.name, channel):
                # The fetched table is garbage (failed parity): the DMAC
                # discards it and refetches the same batch — the full
                # round trip was still paid, so the retry costs real time.
                if self.engine.tracer is not None:
                    self.engine.trace(self.chip.name, "desc-fetch-error",
                                      channel=channel, count=take)
                if self.engine.metrics is not None:
                    self.engine.metrics.counter(
                        f"dma.{self.chip.name}.desc_refetches").inc()
                continue
            if self.engine.tracer is not None:
                self.engine.trace(
                    self.chip.name, "desc-fetch", channel=channel,
                    dur_ps=self.engine.now_ps - fetch_start_ps,
                    count=take)
            for desc in decode_table(raw, take):
                queue.put(desc)
            fetched += take

    # -- chain execution --------------------------------------------------------------

    def _run_chain(self, channel: int, done: Signal):
        chain_start_ps = self.engine.now_ps
        yield self.calib.dma_engine_start_ps
        queue = Store(self.engine, name=f"{self.chip.name}.dma{channel}.q")
        self.engine.process(self._fetch_table(channel, queue),
                            name=f"{self.chip.name}.dma{channel}.fetch")
        count = self.chip.regs.dma_desc_count(channel)
        scoreboard = Latch(self.engine, name=f"{self.chip.name}.dma{channel}")
        prev_stream: Optional[Process] = None

        aborted = False
        for _ in range(count):
            if self._abort_requested.get(channel):
                aborted = True
                break
            desc = yield queue.get()
            if self.engine.tracer is not None:
                self.engine.trace(self.chip.name, "desc-exec",
                                  channel=channel, bytes=desc.length)
            # Stage 1: descriptor setup, overlapped with the previous
            # descriptor's streaming (two-stage pipeline).
            yield self.calib.dma_desc_setup_ps
            if self._needs_remote_host_sync(desc):
                # Ring-egress round trip before chaining another write at
                # the remote host's request queue (Fig. 12's small-size
                # dip; see the calibration note on this constant).
                yield self.calib.dma_remote_desc_sync_ps
            if self._is_read_descriptor(desc):
                # Read-engine scoreboard turnaround, serial with setup:
                # keeps DMA read below DMA write at small sizes (Fig. 7).
                yield self.calib.dma_read_desc_turnaround_ps
            if desc.flags & DescriptorFlags.FENCE:
                if prev_stream is not None and not prev_stream.done:
                    yield prev_stream
                prev_stream = None
                if scoreboard.count:
                    yield scoreboard.wait_zero()
            if prev_stream is not None and not prev_stream.done:
                yield prev_stream
            prev_stream = self.engine.process(
                self._stream(desc, scoreboard),
                name=f"{self.chip.name}.dma{channel}.stream")
            self.bytes_transferred += desc.length

        if prev_stream is not None and not prev_stream.done:
            yield prev_stream
        if scoreboard.count:
            yield scoreboard.wait_zero()

        self.chip.regs.set_dma_status(
            channel, STATUS_ABORTED if aborted else STATUS_DONE)
        self._running[channel] = False
        self._abort_requested[channel] = False
        self.chains_completed += 1
        self.engine.trace(self.chip.name, "dma-done", channel=channel,
                          aborted=aborted)
        if self.engine.metrics is not None:
            metrics = self.engine.metrics
            metrics.counter(f"dma.{self.chip.name}.chains").inc()
            metrics.histogram(f"dma.{self.chip.name}.chain_ns").observe(
                (self.engine.now_ps - chain_start_ps) / 1000.0)
        self._raise_interrupt(channel)
        done.fire(channel)

    def _raise_interrupt(self, channel: int) -> None:
        regs = self.chip.regs
        msi_address = regs.peek_u64(REG_MSI_ADDRESS)
        if msi_address == 0:
            return  # interrupts not configured (register-polling mode)
        vector = regs.peek_u64(REG_MSI_VECTOR) + channel
        faults = self.engine.faults
        if faults is not None and faults.drop_interrupt(self.chip.name,
                                                        vector):
            # The MSI write is swallowed before reaching the CPU.  The
            # status register already reads DONE, so a driver that times
            # out and polls it can recover the completion.
            if self.engine.tracer is not None:
                self.engine.trace(self.chip.name, "msi-dropped",
                                  channel=channel, vector=vector)
            return
        self.chip.inject(make_msi(msi_address, vector,
                                  requester_id=self.chip.device_id))

    def _is_read_descriptor(self, desc: DMADescriptor) -> bool:
        return (self.chip.is_internal_address(desc.dst, desc.length)
                and not self.chip.is_internal_address(desc.src, desc.length))

    def _needs_remote_host_sync(self, desc: DMADescriptor) -> bool:
        from repro.peach2.registers import BLOCK_HOST  # avoid import cycle

        if not self.chip.routes_off_node(desc.dst):
            return False
        return self.chip.tca_block_of(desc.dst) == BLOCK_HOST

    # -- data streams ------------------------------------------------------------------

    def _link_rate(self) -> float:
        link = self.chip.port_n.link
        if link is None:
            raise DMAError(f"{self.chip.name}: port N is not connected")
        return link.params.bytes_per_ps

    def _stream(self, desc: DMADescriptor, scoreboard: Latch):
        src_internal = self.chip.is_internal_address(desc.src, desc.length)
        dst_internal = self.chip.is_internal_address(desc.dst, desc.length)
        if src_internal and dst_internal:
            return self._stream_internal_copy(desc)
        if src_internal:
            return self._stream_write(desc)
        if dst_internal:
            return self._stream_read(desc, scoreboard)
        if self.pipelined:
            return self._stream_pipelined_copy(desc, scoreboard)
        raise DMAError(
            f"{self.chip.name}: the current DMAC requires the internal "
            "memory as DMA-write source / DMA-read destination (§IV-B2); "
            "use two fenced phases or enable the pipelined DMAC")

    def _stream_write(self, desc: DMADescriptor):
        """Internal memory -> bus (local or remote): paced posted writes."""
        rate = self._link_rate()
        overhead = self.calib.dma_per_tlp_overhead_ps
        chip = self.chip
        src_off = chip.internal_offset(desc.src)
        internal_read = chip.internal.read
        inject = chip.inject
        device_id = chip.device_id
        dst = desc.dst
        # A chunked transfer has at most three distinct chunk sizes (full
        # MPS payloads plus boundary stragglers), so the per-TLP pacing
        # collapses to a dict hit after the first chunk of each size.
        pace_cache: Dict[int, int] = {}
        for addr, size in split_transfer(dst, desc.length,
                                         self.calib.mps_bytes):
            data = internal_read(src_off + (addr - dst), size)
            pace = pace_cache.get(size)
            if pace is None:
                pace = transfer_ps(tlp_wire_bytes(TLPKind.MWR, size),
                                   rate) + overhead
                pace_cache[size] = pace
            yield pace
            accepted = inject(make_write(addr, data,
                                         requester_id=device_id))
            if not accepted.fired:
                yield accepted

    def _stream_read(self, desc: DMADescriptor, scoreboard: Latch):
        """Bus (local only) -> internal memory: windowed read requests."""
        dst_off = self.chip.internal_offset(desc.dst)
        for addr, size in split_read_requests(desc.src, desc.length,
                                              self.calib.mrrs_bytes):
            yield self.read_window.acquire()
            scoreboard.up()
            tag, done = self.chip.tags.issue(size)
            accepted = self.chip.inject(make_read(
                addr, size, requester_id=self.chip.device_id, tag=tag))
            if not accepted.fired:
                yield accepted
            offset = dst_off + (addr - desc.src)

            def _land(data: bytes, _off: int = offset) -> None:
                self.chip.internal.write(
                    _off, np.frombuffer(data, dtype=np.uint8).copy())
                self.read_window.release()
                scoreboard.down()

            done.add_callback(_land)
            yield self.calib.dma_read_issue_gap_ps

    def _stream_internal_copy(self, desc: DMADescriptor):
        """Internal -> internal block move."""
        src_off = self.chip.internal_offset(desc.src)
        dst_off = self.chip.internal_offset(desc.dst)
        yield transfer_ps(desc.length, self.calib.internal_copy_bytes_per_ps)
        self.chip.internal.write(dst_off,
                                 self.chip.internal.read(src_off, desc.length))

    def _stream_pipelined_copy(self, desc: DMADescriptor, scoreboard: Latch):
        """Next-generation DMAC: read local source and write the (remote)
        destination simultaneously, one descriptor end to end (§IV-B2)."""
        overhead = self.calib.dma_per_tlp_overhead_ps
        for addr, size in split_read_requests(desc.src, desc.length,
                                              self.calib.mrrs_bytes):
            yield self.read_window.acquire()
            scoreboard.up()
            tag, done = self.chip.tags.issue(size)
            accepted = self.chip.inject(make_read(
                addr, size, requester_id=self.chip.device_id, tag=tag))
            if not accepted.fired:
                yield accepted
            dst = desc.dst + (addr - desc.src)

            def _forward(data: bytes, _dst: int = dst) -> None:
                payload = np.frombuffer(data, dtype=np.uint8).copy()
                self.engine.after(overhead, self._inject_write, _dst, payload,
                                  scoreboard)

            done.add_callback(_forward)
            yield self.calib.dma_read_issue_gap_ps
        yield self.calib.dma_read_desc_turnaround_ps

    def _inject_write(self, dst: int, payload: np.ndarray,
                      scoreboard: Latch) -> None:
        self.chip.inject(make_write(dst, payload,
                                    requester_id=self.chip.device_id))
        self.read_window.release()
        scoreboard.down()
