"""PEACH2 control registers (BAR0).

The register file backs the §III-E routing mechanism verbatim: for each
route entry there are *address mask*, *lower bound* and *upper bound*
registers, and "the destination port is statically decided by checking the
result from the AND operation with the address mask".  Port N's
address-conversion bases (one per device block: GPU0 / GPU1 / host /
PEACH2-internal) and the DMA channel registers live here too.

Registers are real bytes in a numpy-backed page, so the host can program
them over PIO (timed MWr TLPs) or the driver can poke them directly at
configuration time (untimed, like writes done long before a measurement).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.units import GiB

BAR0_SIZE = 64 * 1024

# -- layout -------------------------------------------------------------------
REG_NODE_ID = 0x000
REG_TCA_BASE = 0x008
REG_NODE_STRIDE = 0x010
REG_BLOCK_SIZE = 0x018
REG_MSI_ADDRESS = 0x020
REG_MSI_VECTOR = 0x028

ROUTE_TABLE_BASE = 0x100
ROUTE_ENTRY_BYTES = 32          # mask(8) lower(8) upper(8) port(1) valid(1) pad
NUM_ROUTE_ENTRIES = 8
# A deeper table (for 3D torus fabrics) may grow up to the block-base
# table: 0x100 + 16 * 32 == 0x300, so 16 entries fill the gap exactly.
MAX_ROUTE_ENTRIES = 16

BLOCK_BASE_TABLE = 0x300        # four 8-byte local base addresses
NUM_BLOCKS = 4
BLOCK_GPU0, BLOCK_GPU1, BLOCK_HOST, BLOCK_INTERNAL = range(NUM_BLOCKS)

DMA_CHANNEL_BASE = 0x400
DMA_CHANNEL_STRIDE = 0x40
NUM_DMA_CHANNELS = 4
DMA_REG_DESC_ADDR = 0x00        # descriptor table bus address
DMA_REG_DESC_COUNT = 0x08       # number of chained descriptors
DMA_REG_DOORBELL = 0x10         # write starts the chain
DMA_REG_STATUS = 0x18           # 0 idle, 1 running, 2 done

# Defaults matching Fig. 4: 512-GB region split over 16 nodes, four
# 8-GiB device blocks per node.
DEFAULT_NODE_STRIDE = 32 * GiB
DEFAULT_BLOCK_SIZE = 8 * GiB


class PortCode(enum.IntEnum):
    """Output-port encoding used in route entries.

    N/E/W/S are the paper's four physical ports.  T, U and D extend the
    encoding for torus fabrics: S/T form the dimension-1 (plus/minus)
    pair and U/D the dimension-2 pair, mirroring how E/W serve
    dimension 0.  Chips built without the extra ports never see these
    codes in their tables.
    """

    N = 0
    E = 1
    W = 2
    S = 3
    T = 4
    U = 5
    D = 6


@dataclass(frozen=True)
class RouteEntry:
    """One §III-E comparator: match ``lower <= (addr & mask) <= upper``."""

    mask: int
    lower: int
    upper: int
    port: PortCode

    def matches(self, address: int) -> bool:
        """The paper's AND-and-compare routing check."""
        masked = address & self.mask
        return self.lower <= masked <= self.upper


class RegisterFile:
    """BAR0 register page with typed accessors and write hooks."""

    def __init__(self, name: str = "peach2.regs",
                 num_route_entries: int = NUM_ROUTE_ENTRIES):
        if not 1 <= num_route_entries <= MAX_ROUTE_ENTRIES:
            raise ConfigError(
                f"{name}: route table depth {num_route_entries} outside "
                f"1..{MAX_ROUTE_ENTRIES}")
        self.name = name
        self.num_route_entries = num_route_entries
        self.raw = np.zeros(BAR0_SIZE, dtype=np.uint8)
        # Chip installs hooks keyed by offset (e.g. DMA doorbells).
        self.write_hooks: Dict[int, Callable[[int], None]] = {}
        self.poke_u64(REG_NODE_STRIDE, DEFAULT_NODE_STRIDE)
        self.poke_u64(REG_BLOCK_SIZE, DEFAULT_BLOCK_SIZE)

    # -- raw access (both PIO-timed and driver-config paths end up here) ------

    def write(self, offset: int, data: np.ndarray) -> None:
        """Apply a register store and fire any hook at its offset."""
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if offset < 0 or offset + len(data) > BAR0_SIZE:
            raise ConfigError(f"{self.name}: register write outside BAR0")
        self.raw[offset:offset + len(data)] = data
        hook = self.write_hooks.get(offset)
        if hook is not None:
            value = int.from_bytes(data.tobytes()[:8], "little")
            hook(value)

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read raw register bytes."""
        if offset < 0 or offset + nbytes > BAR0_SIZE:
            raise ConfigError(f"{self.name}: register read outside BAR0")
        return self.raw[offset:offset + nbytes].copy()

    def poke_u64(self, offset: int, value: int) -> None:
        """Driver-configuration store of one 64-bit register (untimed)."""
        self.write(offset, np.frombuffer(struct.pack("<Q", value),
                                         dtype=np.uint8).copy())

    def peek_u64(self, offset: int) -> int:
        """Read one 64-bit register."""
        return struct.unpack("<Q", self.read(offset, 8).tobytes())[0]

    # -- typed views ------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """This chip's node ID within the TCA sub-cluster."""
        return self.peek_u64(REG_NODE_ID)

    @property
    def tca_base(self) -> int:
        """Base bus address of the 512-GB TCA window."""
        return self.peek_u64(REG_TCA_BASE)

    @property
    def node_stride(self) -> int:
        """Bytes of TCA window per node (Fig. 4 splits 512 GB evenly)."""
        return self.peek_u64(REG_NODE_STRIDE)

    @property
    def block_size(self) -> int:
        """Bytes per device block within a node's split (Fig. 4)."""
        return self.peek_u64(REG_BLOCK_SIZE)

    def set_identity(self, node_id: int, tca_base: int,
                     node_stride: int = DEFAULT_NODE_STRIDE,
                     block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        """Program the chip's place in the shared TCA address map."""
        self.poke_u64(REG_NODE_ID, node_id)
        self.poke_u64(REG_TCA_BASE, tca_base)
        self.poke_u64(REG_NODE_STRIDE, node_stride)
        self.poke_u64(REG_BLOCK_SIZE, block_size)

    # -- routing table ----------------------------------------------------------

    def set_route(self, index: int, entry: Optional[RouteEntry]) -> None:
        """Program (or invalidate, with None) route entry ``index``."""
        if not 0 <= index < self.num_route_entries:
            raise ConfigError(f"route entry {index} out of range")
        base = ROUTE_TABLE_BASE + index * ROUTE_ENTRY_BYTES
        if entry is None:
            self.write(base, np.zeros(ROUTE_ENTRY_BYTES, dtype=np.uint8))
            return
        packed = struct.pack("<QQQBB6x", entry.mask, entry.lower, entry.upper,
                             int(entry.port), 1)
        self.write(base, np.frombuffer(packed, dtype=np.uint8).copy())

    def routes(self) -> List[RouteEntry]:
        """All valid route entries, in table order."""
        out: List[RouteEntry] = []
        for index in range(self.num_route_entries):
            base = ROUTE_TABLE_BASE + index * ROUTE_ENTRY_BYTES
            mask, lower, upper, port, valid = struct.unpack(
                "<QQQBB6x", self.read(base, ROUTE_ENTRY_BYTES).tobytes())
            if valid:
                out.append(RouteEntry(mask, lower, upper, PortCode(port)))
        return out

    # -- port-N block translation bases ------------------------------------------

    def set_block_base(self, block: int, local_base: int) -> None:
        """Local bus address that device block ``block`` translates to."""
        if not 0 <= block < NUM_BLOCKS:
            raise ConfigError(f"block {block} out of range")
        self.poke_u64(BLOCK_BASE_TABLE + block * 8, local_base)

    def block_base(self, block: int) -> int:
        """Configured local base of device block ``block``."""
        if not 0 <= block < NUM_BLOCKS:
            raise ConfigError(f"block {block} out of range")
        return self.peek_u64(BLOCK_BASE_TABLE + block * 8)

    # -- DMA channel registers -----------------------------------------------------

    @staticmethod
    def dma_offset(channel: int, reg: int) -> int:
        """BAR0 offset of a DMA channel register."""
        if not 0 <= channel < NUM_DMA_CHANNELS:
            raise ConfigError(f"DMA channel {channel} out of range")
        return DMA_CHANNEL_BASE + channel * DMA_CHANNEL_STRIDE + reg

    def dma_desc_addr(self, channel: int) -> int:
        """Programmed descriptor-table address of a channel."""
        return self.peek_u64(self.dma_offset(channel, DMA_REG_DESC_ADDR))

    def dma_desc_count(self, channel: int) -> int:
        """Programmed descriptor count of a channel."""
        return self.peek_u64(self.dma_offset(channel, DMA_REG_DESC_COUNT))

    def dma_status(self, channel: int) -> int:
        """Channel status register (0 idle, 1 running, 2 done)."""
        return self.peek_u64(self.dma_offset(channel, DMA_REG_STATUS))

    def set_dma_status(self, channel: int, status: int) -> None:
        """Update a channel's status register (chip-internal)."""
        self.poke_u64(self.dma_offset(channel, DMA_REG_STATUS), status)
