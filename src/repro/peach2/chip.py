"""The PEACH2 chip: four PCIe ports, static router, DMAC, internal memory.

Port layout follows §III-D exactly:

* **N** — always the host interface (the chip appears as an ordinary PCIe
  endpoint with BAR0 = control registers, BAR2 = internal memory, BAR4 =
  the 512-GB TCA window);
* **E** — fixed Endpoint role, **W** — fixed Root Complex role, so any two
  chips can always be cabled E->W to form a ring;
* **S** — role selectable (by FPGA configuration image; dynamic partial
  reconfiguration is modelled as an opt-in), used to couple two rings.

Packets whose destination address falls in the TCA window are routed by
the §III-E comparators (mask / lower / upper per entry); a hit on port N
triggers the global-to-local address conversion using the per-block base
registers.  Remote memory access is Memory-Write-only (§III-F): read
requests arriving from the ring are rejected, as on the real chip, because
completions are not implemented for remote traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import AddressError, ConfigError, PCIeError
from repro.hw.memory import BackingStore
from repro.model.calibration import CALIB, Calibration
from repro.pcie.address import Region
from repro.pcie.device import Device, TagPool
from repro.pcie.forwarding import EgressQueue
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind, make_completion
from repro.peach2.dma import DMAController
from repro.peach2.firmware import NIOSFirmware
from repro.peach2.registers import (BAR0_SIZE, NUM_DMA_CHANNELS,
                                    NUM_ROUTE_ENTRIES, ROUTE_ENTRY_BYTES,
                                    ROUTE_TABLE_BASE, PortCode, RegisterFile,
                                    RouteEntry)
from repro.sim.core import Engine
from repro.units import MiB


@dataclass(frozen=True)
class PEACH2Params:
    """Static configuration of one PEACH2 chip."""

    internal_memory_bytes: int = 512 * MiB  # DDR3 SODIMM + embedded SRAM
    port_s_role: PortRole = PortRole.EP
    #: Future feature (§III-D): PCIe-IP partial reconfiguration lets the
    #: S-port role flip without reloading the whole FPGA image.
    dynamic_port_s: bool = False
    num_dma_channels: int = NUM_DMA_CHANNELS
    calib: Calibration = CALIB
    #: Torus fabrics: populate the extra per-dimension ports (T pairs
    #: with S for dimension 1, U/D serve dimension 2).  The paper's
    #: 4-port chip leaves this off.
    torus_ports: bool = False
    #: Comparator-table depth; 3D fabrics need the deepened 16-entry
    #: table, the paper's chip has 8.
    num_route_entries: int = NUM_ROUTE_ENTRIES


class PEACH2Chip(Device):
    """One PEACH2 chip (the FPGA), independent of the carrier board."""

    def __init__(self, engine: Engine, name: str,
                 params: PEACH2Params = PEACH2Params()):
        super().__init__(engine, name)
        self.params = params
        calib = params.calib
        self.regs = RegisterFile(name=f"{name}.regs",
                                 num_route_entries=params.num_route_entries)
        self.internal = BackingStore(params.internal_memory_bytes,
                                     name=f"{name}.internal")
        self.tags = TagPool(engine, name=f"{name}.tags")

        self.port_n = Port(engine, f"{name}.N", PortRole.EP, self,
                           rx_credits=64)
        self.port_e = Port(engine, f"{name}.E", PortRole.EP, self,
                           rx_credits=64)
        self.port_w = Port(engine, f"{name}.W", PortRole.RC, self,
                           rx_credits=64)
        self.port_s = Port(engine, f"{name}.S", params.port_s_role, self,
                           rx_credits=64)
        self._ports_by_code: Dict[PortCode, Port] = {
            PortCode.N: self.port_n, PortCode.E: self.port_e,
            PortCode.W: self.port_w, PortCode.S: self.port_s,
        }
        if params.torus_ports:
            # Fixed roles mirror the E/W pair per dimension: the plus
            # port is an Endpoint, the minus port a Root Complex, so
            # plus->minus cables always train EP<->RC.
            self.port_t = Port(engine, f"{name}.T", PortRole.RC, self,
                               rx_credits=64)
            self.port_u = Port(engine, f"{name}.U", PortRole.EP, self,
                               rx_credits=64)
            self.port_d = Port(engine, f"{name}.D", PortRole.RC, self,
                               rx_credits=64)
            self._ports_by_code.update({
                PortCode.T: self.port_t, PortCode.U: self.port_u,
                PortCode.D: self.port_d,
            })
        residual = (calib.peach2_route_latency_ps
                    - calib.peach2_issue_interval_ps)
        self._egress: Dict[int, EgressQueue] = {
            id(port): EgressQueue(engine, port, residual)
            for port in self._ports_by_code.values()
        }

        # BARs are filled in at enumeration (board/on_enumerated).
        self.bar0: Optional[Region] = None
        self.bar2: Optional[Region] = None
        self.bar4: Optional[Region] = None

        self.dma = DMAController(self, num_channels=params.num_dma_channels)
        self.firmware = NIOSFirmware(self)
        # Operator console served by NIOS over GbE/RS-232C (§III-D).
        from repro.peach2.console import ManagementConsole
        self.console = ManagementConsole(self)
        self._route_cache: Optional[Tuple[int, list]] = None
        self.tlps_routed = 0

    # -- configuration -------------------------------------------------------------

    def assign_bars(self, bar0: Region, bar2: Region, bar4: Region) -> None:
        """Record the BIOS-assigned windows (control, internal mem, TCA)."""
        if bar0.size < BAR0_SIZE:
            raise ConfigError(f"{self.name}: BAR0 too small")
        if bar2.size < self.params.internal_memory_bytes:
            raise ConfigError(f"{self.name}: BAR2 smaller than internal memory")
        self.bar0, self.bar2, self.bar4 = bar0, bar2, bar4

    def reconfigure_port_s(self, role: PortRole) -> None:
        """Flip Port S between RC and EP.

        Without ``dynamic_port_s`` this models loading a different FPGA
        configuration image, which is only possible while the port is
        uncabled; with it, partial reconfiguration allows a live flip.
        """
        if role not in (PortRole.RC, PortRole.EP):
            raise ConfigError("port S must be RC or EP")
        if self.port_s.connected and not self.params.dynamic_port_s:
            raise ConfigError(
                f"{self.name}: cannot reload the FPGA image while port S is "
                "cabled (enable dynamic_port_s for partial reconfiguration)")
        self.port_s.role = role

    def port_by_code(self, code: PortCode) -> Port:
        """Resolve a route-entry port code to the physical port."""
        return self._ports_by_code[code]

    # -- routing -------------------------------------------------------------------

    def _routes(self) -> list:
        # Rebuild the decoded table when its raw bytes change (cheap:
        # compare the comparator area's bytes).
        table_end = (ROUTE_TABLE_BASE
                     + self.regs.num_route_entries * ROUTE_ENTRY_BYTES)
        raw = self.regs.raw[ROUTE_TABLE_BASE:table_end]
        key = raw.tobytes()
        if self._route_cache is None or self._route_cache[0] != key:
            self._route_cache = (key, self.regs.routes())
        return self._route_cache[1]

    def decide_route(self, address: int) -> Tuple[Port, Optional[int]]:
        """(output port, translated address or None) for one packet.

        Falls back to port N *untranslated* when no comparator matches:
        addresses outside the TCA window are ordinary local bus addresses
        (DMA targets in host/GPU memory, the MSI doorbell...).
        """
        for entry in self._routes():
            if entry.matches(address):
                port = self.port_by_code(entry.port)
                if entry.port is PortCode.N:
                    return port, self.translate_to_local(address)
                return port, None
        return self.port_n, None

    def translate_to_local(self, address: int) -> int:
        """Global-to-local conversion at Port N (§III-E).

        The node-region offset picks the device block; the block's base
        register supplies the local bus address: "the base address of the
        PEACH2 chip and the address offset for the specified device are
        added to or subtracted from the destination memory address".
        """
        regs = self.regs
        node_base = regs.tca_base + regs.node_id * regs.node_stride
        offset = address - node_base
        if offset < 0 or offset >= regs.node_stride:
            raise AddressError(
                f"{self.name}: 0x{address:x} is not in node {regs.node_id}'s "
                "TCA region yet matched the port-N comparator")
        block, block_offset = divmod(offset, regs.block_size)
        return regs.block_base(int(block)) + block_offset

    # -- packet handling ------------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """Dispatch one ingress packet: BAR access, completion, or relay."""
        calib = self.params.calib
        if tlp.kind is TLPKind.CPLD:
            self.tags.complete(tlp)
            # Scoreboard update + internal-memory landing: paces how fast
            # the read engine can consume completions.
            return self._occupy(calib.dma_cpl_processing_ps)

        if port is self.port_n:
            if self.bar0 is not None and self.bar0.contains(tlp.address):
                return self._handle_bar0(tlp)
            if self.bar2 is not None and self.bar2.contains(tlp.address):
                return self._handle_bar2(tlp)
            # Everything else on port N is TCA-window traffic.
            return self._relay(port, tlp)

        # Ring traffic (E/W/S): remote access is Memory Write only (§III-F).
        if tlp.kind is TLPKind.MRD:
            raise PCIeError(
                f"{self.name}: read request arrived from the ring on "
                f"{port.name}; PEACH2 supports only the RDMA put protocol")
        return self._relay(port, tlp)

    def _relay(self, port: Port, tlp: TLP):
        out, translated = self.decide_route(tlp.address)
        if tlp.kind is TLPKind.MRD and out is not self.port_n:
            raise PCIeError(
                f"{self.name}: remote read 0x{tlp.address:x} not supported")
        # Bubble flow control (see EgressQueue): packets *entering* the
        # ring from the host side are injections; packets already on the
        # ring (arriving on E/W/S) are transit and keep full priority.
        injection = port is self.port_n and out is not self.port_n
        return self._ingest(out, tlp, translated, injection)

    def _ingest(self, out: Port, tlp: TLP, translated: Optional[int],
                injection: bool = False):
        """Crossbar occupancy, then hand to the (bounded) egress stage."""
        yield self.params.calib.peach2_issue_interval_ps
        accepted = self._submit(out, tlp, translated, injection)
        if not accepted.fired:
            yield accepted

    def _submit(self, out: Port, tlp: TLP, translated: Optional[int],
                injection: bool = False):
        self.tlps_routed += 1
        self.firmware.note_routed(out)
        self.engine.trace(self.name, "route", tlp=tlp.kind.value,
                          addr=hex(tlp.address), out=out.name,
                          translated=translated is not None)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(f"peach2.{self.name}.routed").inc()
        if translated is not None:
            tlp = TLP(tlp.kind, address=translated, length=tlp.length,
                      payload=tlp.payload, requester_id=tlp.requester_id,
                      tag=tlp.tag)
        queue = self._egress[id(out)]
        if injection and out is not self.port_n:
            return queue.submit_injection(tlp)
        return queue.submit(tlp)

    def _occupy(self, interval_ps: int):
        yield interval_ps

    # -- BAR0: control registers ------------------------------------------------------

    def _handle_bar0(self, tlp: TLP):
        offset = self.bar0.offset_of(tlp.address)
        if tlp.kind is TLPKind.MWR:
            self.regs.write(offset, tlp.payload)
            return None
        if tlp.kind is TLPKind.MRD:
            self.engine.after(self.params.calib.reg_read_latency_ps,
                              self._complete_read, tlp,
                              self.regs.read(offset, tlp.length))
            return None
        return None

    # -- BAR2: internal packet memory ---------------------------------------------------

    def _handle_bar2(self, tlp: TLP):
        offset = self.bar2.offset_of(tlp.address)
        if tlp.kind is TLPKind.MWR:
            self.internal.write(offset, tlp.payload)
            return None
        if tlp.kind is TLPKind.MRD:
            self.engine.after(self.params.calib.internal_read_latency_ps,
                              self._complete_read, tlp,
                              self.internal.read(offset, tlp.length))
            return None
        return None

    def _complete_read(self, request: TLP, data: np.ndarray) -> None:
        chunk = self.params.calib.mps_bytes
        for start in range(0, len(data), chunk):
            self.port_n.send(make_completion(request, data[start:start + chunk]))

    # -- DMAC access points -----------------------------------------------------------

    def inject(self, tlp: TLP):
        """Packet sourced inside the chip (DMAC data, descriptor fetches,
        completion MSIs) entering the crossbar.

        Returns the egress-acceptance signal; DMA streams yield it so a
        congested output (e.g. a QPI-throttled far socket) backpressures
        the engine instead of buffering unboundedly.
        """
        out, translated = self.decide_route(tlp.address)
        if tlp.kind is TLPKind.MRD and out is not self.port_n:
            raise PCIeError(
                f"{self.name}: the DMAC cannot read remote memory "
                f"(0x{tlp.address:x} routes to {out.name})")
        # DMAC packets bound for the ring are injections (bubble rule).
        return self._submit(out, tlp, translated,
                            injection=out is not self.port_n)

    def routes_off_node(self, address: int) -> bool:
        """True if the address routes out a ring port (E/W/S)."""
        out, _ = self.decide_route(address)
        return out not in (None, self.port_n)

    def tca_block_of(self, address: int) -> Optional[int]:
        """Device-block index of a TCA-window address (None if outside).

        Uses the shared Fig. 4 geometry programmed into the identity
        registers; valid for any node's region, not just this node's.
        """
        regs = self.regs
        stride = regs.node_stride
        if stride == 0:
            return None
        offset = address - regs.tca_base
        # The window size comes from BAR4 (the whole 512-GB region), not
        # from stride * 16: a 64-node fabric shrinks the stride, but the
        # window still holds every node's slot.
        window = self.bar4.size if self.bar4 is not None else stride * 16
        if offset < 0 or offset >= window:
            return None
        return int((offset % stride) // regs.block_size)

    def is_internal_address(self, address: int, length: int = 1) -> bool:
        """True if the bus address targets this chip's internal memory."""
        return self.bar2 is not None and self.bar2.contains(address, length)

    def internal_offset(self, address: int) -> int:
        """Internal-memory offset of a BAR2 bus address."""
        if self.bar2 is None:
            raise ConfigError(f"{self.name}: BAR2 not assigned")
        return self.bar2.offset_of(address)
