"""The PEACH2 prototype board: the chip on a PCIe carrier card.

Physical details from §III-G that matter to the model: the edge connector
is Gen2 x8 (Port N); Ports E/W/S come out as PCIe external-cable
connectors; Port S lives on a sub-board with signal repeaters (we add its
extra latency); the fabric runs at 250 MHz.  The board implements the
node's adapter protocol (a config space for the BIOS scan plus the
enumeration callback).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigError
from repro.hw.node import ComputeNode
from repro.pcie.config_space import (CAP_MSI, CAP_PCIE, Capability,
                                     ConfigSpace, VENDOR_UNIV_TSUKUBA)
from repro.pcie.address import Region
from repro.pcie.gen import PCIeGen
from repro.pcie.link import LinkParams, PCIeLink
from repro.pcie.port import PortRole
from repro.peach2.chip import PEACH2Chip, PEACH2Params
from repro.peach2.registers import BAR0_SIZE
from repro.sim.core import Engine
from repro.units import GiB, ns

#: TCA window size: "PEACH2 reserves a relatively large address region
#: (current implementation is 512 Gbytes)" (§III-E).
TCA_WINDOW_BYTES = 512 * GiB

#: Extra one-way latency of Port S: connector to the sub-board plus the
#: PCIe signal repeater chips (§III-G).
PORT_S_EXTRA_LATENCY_PS = ns(20)


class PEACH2Board:
    """Adapter card carrying one PEACH2 chip."""

    def __init__(self, engine: Engine, name: str,
                 params: PEACH2Params = PEACH2Params()):
        self.engine = engine
        self.name = name
        self.chip = PEACH2Chip(engine, name, params)
        self.node: ComputeNode = None
        self.fabric_clock_mhz = 250
        # Port N's type-0 function: control regs, internal memory, and
        # the huge TCA window the BIOS must be able to place (footnote 2).
        self.config_space = ConfigSpace(VENDOR_UNIV_TSUKUBA, 0x7002, 0x12,
                                        name=name)
        self.config_space.add_bar(0, BAR0_SIZE, prefetchable=False)
        self.config_space.add_bar(2, params.internal_memory_bytes)
        self.config_space.add_bar(4, TCA_WINDOW_BYTES)
        self.config_space.add_capability(Capability(CAP_MSI))
        self.config_space.add_capability(Capability(CAP_PCIE))

    # -- adapter protocol (consumed by ComputeNode.install_adapter) ----------

    @property
    def host_port(self):
        """Port N: the edge connector, always the host interface."""
        return self.chip.port_n

    @property
    def device_id(self) -> int:
        """Requester/completer ID of the chip."""
        return self.chip.device_id

    def on_enumerated(self, node: ComputeNode,
                      bars: Dict[int, Region]) -> None:
        """BIOS finished; remember our node and program the chip's BARs."""
        self.node = node
        self.chip.assign_bars(bars[0], bars[2], bars[4])

    # -- cabling ----------------------------------------------------------------

    def cable_params(self, for_port_s: bool = False) -> LinkParams:
        """Link parameters of one PCIe external cable (Gen2 x8)."""
        calib = self.chip.params.calib
        latency = calib.cable_link_latency_ps
        if for_port_s:
            latency += PORT_S_EXTRA_LATENCY_PS
        return LinkParams(gen=PCIeGen.GEN2, lanes=8, latency_ps=latency)

    def cable_east_to(self, other: "PEACH2Board") -> PCIeLink:
        """Cable this board's E port (EP) to the peer's W port (RC)."""
        return PCIeLink(self.engine, self.chip.port_e, other.chip.port_w,
                        self.cable_params(),
                        name=f"{self.name}.E<->{other.name}.W")

    def cable_dim_to(self, dim: int, other: "PEACH2Board") -> PCIeLink:
        """Cable this board's plus port of torus dimension ``dim`` to the
        peer's minus port: E->W, S->T, U->D.

        Dimension 1 reuses the S-port sub-board (repeater latency
        included); its minus side lands on the peer's T port, so the
        EP/RC pairing always trains without reconfiguration.  Dimensions
        1 and 2 need chips built with ``torus_ports``.
        """
        if dim == 0:
            return self.cable_east_to(other)
        if dim not in (1, 2):
            raise ConfigError(f"no cable ports for torus dimension {dim}")
        if not (self.chip.params.torus_ports
                and other.chip.params.torus_ports):
            raise ConfigError(
                f"{self.name}/{other.name}: dimension-{dim} cables need "
                "chips built with torus_ports")
        if dim == 1:
            a, b = self.chip.port_s, other.chip.port_t
            names, params = "S<->T", self.cable_params(for_port_s=True)
        else:
            a, b = self.chip.port_u, other.chip.port_d
            names, params = "U<->D", self.cable_params()
        if not a.role.can_train_with(b.role):
            raise ConfigError(
                f"{self.name}/{other.name}: {names} ports cannot train "
                f"({a.role.value} vs {b.role.value})")
        plus, minus = names.split("<->")
        return PCIeLink(self.engine, a, b, params,
                        name=f"{self.name}.{plus}<->{other.name}.{minus}")

    def cable_south_to(self, other: "PEACH2Board") -> PCIeLink:
        """Couple two rings via the S ports (one must be RC, the other EP).

        The boards ship with complementary FPGA configuration images;
        reconfigure one side first if both have the same S role.
        """
        a, b = self.chip.port_s, other.chip.port_s
        if not a.role.can_train_with(b.role):
            raise ConfigError(
                f"{self.name}/{other.name}: both S ports are "
                f"{a.role.value}; load the complementary configuration "
                "image (reconfigure_port_s) on one of them")
        return PCIeLink(self.engine, a, b, self.cable_params(for_port_s=True),
                        name=f"{self.name}.S<->{other.name}.S")
