"""Unit helpers shared across the simulator.

Simulated time is kept as **integer picoseconds** so that event ordering is
exact and runs are bit-reproducible; public APIs usually speak nanoseconds
(floats) and convert at the boundary.  Data sizes are plain integers in
bytes; the helpers below exist so that call sites read like the paper
("4 Kbytes", "4 Gbytes/sec") instead of bare powers of two.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ps(t: float) -> int:
    """Picoseconds (already the internal unit); rounds to int."""
    return int(round(t))


def ns(t: float) -> int:
    """Convert nanoseconds to internal picoseconds."""
    return int(round(t * PS_PER_NS))


def us(t: float) -> int:
    """Convert microseconds to internal picoseconds."""
    return int(round(t * PS_PER_US))


def ms(t: float) -> int:
    """Convert milliseconds to internal picoseconds."""
    return int(round(t * PS_PER_MS))


def to_ns(t_ps: int) -> float:
    """Convert internal picoseconds to nanoseconds."""
    return t_ps / PS_PER_NS


def to_us(t_ps: int) -> float:
    """Convert internal picoseconds to microseconds."""
    return t_ps / PS_PER_US


def to_s(t_ps: int) -> float:
    """Convert internal picoseconds to seconds."""
    return t_ps / PS_PER_S


# --- sizes -----------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB


# --- rates -----------------------------------------------------------------


def gbytes_per_s(rate: float) -> float:
    """Convert Gbytes/sec (decimal, as the paper quotes) to bytes per ps."""
    return rate * GB / PS_PER_S


def mbytes_per_s(rate: float) -> float:
    """Convert Mbytes/sec (decimal) to bytes per ps."""
    return rate * MB / PS_PER_S


def transfer_ps(nbytes: int, bytes_per_ps: float) -> int:
    """Serialization time of ``nbytes`` at ``bytes_per_ps``, at least 1 ps."""
    if nbytes <= 0:
        return 0
    return max(1, int(round(nbytes / bytes_per_ps)))


def bw_gbytes_per_s(nbytes: int, elapsed_ps: int) -> float:
    """Observed bandwidth in Gbytes/sec (decimal) for a timed transfer."""
    if elapsed_ps <= 0:
        raise ValueError("elapsed time must be positive")
    return nbytes / GB / to_s(elapsed_ps)


def pretty_size(nbytes: int) -> str:
    """Human-readable size string using binary units, e.g. ``4K`` or ``512``."""
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB}M"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB}K"
    return str(nbytes)
