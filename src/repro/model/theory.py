"""Closed-form performance bounds from the paper.

Eq. (1) of the paper:

    4 Gbytes/sec * 256 / (256 + 16 + 2 + 4 + 1 + 1) = 3.66 Gbytes/sec

i.e. the payload ceiling of a PCIe Gen2 x8 link with a 256-byte Max
Payload Size, once per-packet framing is accounted for.
"""

from __future__ import annotations

from repro.pcie.gen import PCIeGen, link_bytes_per_s
from repro.pcie.tlp import TLP_OVERHEAD_BYTES
from repro.units import GB


def pcie_effective_rate_gbytes(gen: PCIeGen, lanes: int,
                               mps_bytes: int = 256) -> float:
    """Payload-rate ceiling (Gbytes/s) for a link at a given MPS (Eq. 1)."""
    raw = link_bytes_per_s(gen, lanes)
    efficiency = mps_bytes / (mps_bytes + TLP_OVERHEAD_BYTES)
    return raw * efficiency / GB


def theoretical_peak_gen2_x8(mps_bytes: int = 256) -> float:
    """The paper's own number: 3.66 Gbytes/s for Gen2 x8 at MPS 256."""
    return pcie_effective_rate_gbytes(PCIeGen.GEN2, 8, mps_bytes)


def latency_bandwidth_bound_gbytes(outstanding: int, chunk_bytes: int,
                                   round_trip_ps: int) -> float:
    """Read-throughput ceiling from the latency-bandwidth product.

    A requester that keeps at most ``outstanding`` reads of ``chunk_bytes``
    in flight against a completer with ``round_trip_ps`` of latency can
    never exceed ``outstanding * chunk / RTT`` — this is what caps DMA
    reads from GPU memory at ~830 Mbytes/s (§IV-A2).
    """
    if round_trip_ps <= 0:
        raise ValueError("round trip must be positive")
    bytes_per_ps = outstanding * chunk_bytes / round_trip_ps
    return bytes_per_ps * 1e12 / GB
