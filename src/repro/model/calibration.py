"""Calibration constants for the simulated HA-PACS/TCA hardware.

Every free timing parameter of the simulation lives here, next to the
paper anchor that pins it.  The anchors (all from Hanawa et al. 2013):

* Eq. (1): PCIe Gen2 x8 carries 4 Gbytes/s post-encoding; with MPS = 256 B
  and 24 B of per-packet framing the payload ceiling is 3.66 Gbytes/s.
* §IV-A1: 255-chained DMA write to local CPU memory peaks at ~3.3 Gbytes/s
  (93 % of ceiling) at 4 KB — fixes the DMA engine's per-TLP overhead.
* Fig. 9: 4 chained requests of 4 KB reach ~70 % of the peak — fixes the
  sum of doorbell/first-descriptor-fetch plus completion-interrupt cost at
  about 2 µs for a whole chain.
* §IV-A2: DMA read from GPU memory tops out at ~830 Mbytes/s — fixes the
  GPU BAR read-completion latency given the 4-deep completer pipeline.
* §IV-A2: DMA write across QPI collapses to a few hundred Mbytes/s — fixes
  the QPI P2P per-packet occupancy.
* §IV-B1 / Fig. 10: one 4-byte PIO store traverses CPU → PEACH2-A →
  cable → PEACH2-B → host memory in 782 ns — fixes the per-hop latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import ns, us


@dataclass(frozen=True)
class Calibration:
    """All tunable timing constants (picoseconds unless noted)."""

    # ---- fabric hop latencies (sum tuned to the 782 ns PIO anchor) -------
    # CPU core to root complex: store-buffer drain + RC ingress.
    cpu_store_issue_ps: int = ns(80)
    # Per-switch traversal (the PCIe switch embedded in the Xeon socket).
    switch_forward_ps: int = ns(50)
    switch_issue_interval_ps: int = ns(2)
    # On-board link (host <-> adapter edge connector), PHY + trace.
    local_link_latency_ps: int = ns(110)
    # External PCIe cable between PEACH2 boards (a few metres, repeaters).
    cable_link_latency_ps: int = ns(130)
    # PEACH2 ingress-to-egress relay: ~22 cycles of the 250 MHz fabric.
    peach2_route_latency_ps: int = ns(90)
    # PEACH2 crossbar issue interval (pipelined, far below wire pace).
    peach2_issue_interval_ps: int = ns(8)
    # Host memory-controller write visibility (store to poll-observable);
    # the decimals absorb rounding so the Fig. 10 path sums to 782 ns.
    host_mem_write_commit_ps: int = ns(48.222)

    # ---- memory completers -----------------------------------------------
    host_mem_read_latency_ps: int = ns(250)
    host_mem_max_reads: int = 8
    # GPU BAR1 read path goes through the GPU's PCIe-to-GDDR5 address
    # translation; 4-deep pipeline at ~1232 ns/request = ~830 Mbytes/s.
    gpu_bar_read_latency_ps: int = ns(1232)
    gpu_bar_max_reads: int = 4
    gpu_bar_write_commit_ps: int = ns(60)

    # ---- PEACH2 DMA controller --------------------------------------------
    # Added on top of wire serialization for every TLP the engine emits;
    # 256-B payload -> (280 B / 4 GB/s) + 7.6 ns = 77.6 ns/TLP = 3.30 GB/s.
    dma_per_tlp_overhead_ps: int = ns(7.6)
    # Engine wake-up after the doorbell register write lands (decode the
    # channel registers, arbitrate).  The descriptor-table fetch itself is
    # a real MRd round trip through the fabric, so the total
    # doorbell-to-first-data cost comes out near 1 µs as Fig. 9 implies.
    dma_engine_start_ps: int = ns(100)
    # Per-descriptor decode/setup; overlapped with the previous
    # descriptor's data streaming (two-stage engine pipeline), so it only
    # shows for descriptors shorter than ~1.6 KB — this is what bends the
    # small-message end of Fig. 7.
    dma_desc_setup_ps: int = ns(500)
    # Extra serial cost per *read* descriptor (scoreboard drain/sync of
    # the read engine): keeps DMA read visibly below DMA write at small
    # sizes while they converge at 4 KB, as Fig. 7 shows.
    dma_read_desc_turnaround_ps: int = ns(250)
    # Completion-interrupt handler entry (MSI delivery itself is simulated;
    # this is the kernel's IRQ-entry to TSC-read cost in the driver).
    irq_handler_entry_ps: int = ns(800)
    # Outstanding MRd window of the DMAC read engine.
    dma_max_outstanding_reads: int = 16
    # Gap between successive MRd issues.
    dma_read_issue_gap_ps: int = ns(10)
    # Per-completion ingest cost at the chip (scoreboard update + internal
    # memory write): paces DMA-read consumption to the same ~77.6 ns/TLP
    # the write engine runs at, so read never beats write (Fig. 7).
    dma_cpl_processing_ps: int = ns(77.6)
    # Per-descriptor stall the engine suffers when chaining writes toward
    # a *remote host* destination: the remote root complex's shallow
    # request queue forces a ring-egress round trip between descriptors.
    # The paper observes the effect but not the cause ("the reason for
    # this is unclear", §IV-B2: remote-GPU writes stream continuously, so
    # the GPU's deep request queue is assumed to absorb what the host
    # cannot) — this constant reproduces the observed Fig. 12 shape:
    # small-size remote-CPU bandwidth well below local, equal at 4 KB.
    dma_remote_desc_sync_ps: int = ns(650)
    # Descriptors fetched per table-read TLP (256 B / 32 B each).
    dma_desc_fetch_batch: int = 8
    # On-chip accesses (register file, internal packet memory).
    reg_read_latency_ps: int = ns(100)
    internal_read_latency_ps: int = ns(120)
    # Internal memory copy bandwidth (internal->internal descriptors).
    internal_copy_bytes_per_ps: float = 8e9 / 1e12  # 8 Gbytes/s

    # ---- CPU PIO streaming ---------------------------------------------------
    # The mmapped TCA window is mapped write-combining; the core drains
    # one 64-byte WC buffer roughly every 120 ns when streaming stores,
    # giving PIO a ~0.53 GB/s streaming ceiling — which is why §III-F
    # positions PIO for short messages and DMA for bulk.
    pio_wc_buffer_bytes: int = 64
    pio_wc_drain_gap_ps: int = ns(120)

    # ---- driver software ---------------------------------------------------
    driver_poll_interval_ps: int = ns(20)

    # ---- QPI ---------------------------------------------------------------
    qpi_latency_ps: int = ns(120)
    qpi_cpu_gap_ps: int = ns(4)
    qpi_p2p_gap_ps: int = ns(800)  # ~300 Mbytes/s at 256-B payloads

    # ---- payload/packet geometry -------------------------------------------
    mps_bytes: int = 256   # Max Payload Size of the evaluated platform
    mrrs_bytes: int = 256  # Max Read Request Size used by the DMAC


#: The default calibration used throughout the library.
CALIB = Calibration()
