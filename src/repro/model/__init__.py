"""Model constants: calibration anchors, theory formulas, spec tables."""

from repro.model.calibration import CALIB, Calibration
from repro.model.theory import pcie_effective_rate_gbytes, theoretical_peak_gen2_x8

__all__ = [
    "CALIB",
    "Calibration",
    "pcie_effective_rate_gbytes",
    "theoretical_peak_gen2_x8",
]
