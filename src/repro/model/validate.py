"""Fast calibration self-check: are the paper anchors still true?

``validate_calibration()`` re-measures the cheap headline anchors (the
782 ns PIO path, the 3.3 GB/s chained-write peak, the 830 MB/s GPU-read
ceiling, Fig. 9's 70 %-at-4-requests) and reports pass/fail per anchor.
Run it after touching anything in :mod:`repro.model.calibration` or the
fabric timing — ``tca-bench validate`` from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.units import KiB


@dataclass(frozen=True)
class AnchorResult:
    """One re-measured anchor."""

    name: str
    paper: float
    measured: float
    tolerance: float  # relative

    @property
    def ok(self) -> bool:
        """Within tolerance of the paper's value."""
        return abs(self.measured - self.paper) <= self.tolerance * self.paper

    def __str__(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        return (f"[{mark}] {self.name}: paper={self.paper:g} "
                f"measured={self.measured:.4g} "
                f"(tol ±{self.tolerance * 100:.0f}%)")


def validate_calibration() -> List[AnchorResult]:
    """Re-measure the headline anchors; returns one result per anchor."""
    from repro.bench.harness import SingleNodeRig
    from repro.bench.loopback import LoopbackRig

    results: List[AnchorResult] = []

    latency_ns = LoopbackRig().pio_commit_latency_ns()
    results.append(AnchorResult("PIO one-way latency (ns, §IV-B1)",
                                782.0, latency_ns, 0.005))

    _, peak = SingleNodeRig().measure("write", "cpu", 4 * KiB, 255)
    results.append(AnchorResult("chained DMA write peak (GB/s, §IV-A1)",
                                3.3, peak, 0.03))

    _, gpu_read = SingleNodeRig().measure("read", "gpu", 4 * KiB, 255)
    results.append(AnchorResult("GPU DMA-read ceiling (GB/s, §IV-A2)",
                                0.83, gpu_read, 0.03))

    _, four = SingleNodeRig().measure("write", "cpu", 4 * KiB, 4)
    results.append(AnchorResult("4-request fraction of peak (Fig. 9)",
                                0.70, four / peak, 0.10))

    _, read_4k = SingleNodeRig().measure("read", "cpu", 4 * KiB, 255)
    results.append(AnchorResult("CPU read/write ratio at 4 KB (Fig. 7)",
                                1.0, read_4k / peak, 0.15))

    return results


def render_validation(results: List[AnchorResult]) -> str:
    """Human-readable report."""
    lines = [str(r) for r in results]
    passed = sum(r.ok for r in results)
    lines.append(f"{passed}/{len(results)} anchors within tolerance")
    return "\n".join(lines)
