"""System specification models for Tables I and II of the paper.

These are typed descriptions of the HA-PACS base cluster (Table I) and the
preliminary-evaluation testbed (Table II).  The benchmark harness renders
them in the paper's row format, and the node-assembly code derives
simulator configuration (GPU count, memory sizes, link generations) from
them so the "spec sheet" and the simulated machine cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class CPUSpec:
    """One CPU socket model."""

    model: str = "Intel Xeon-E5 2670"
    clock_ghz: float = 2.6
    cores: int = 8
    cache_mbytes: int = 20
    sockets: int = 2
    pcie_gen3_lanes_per_socket: int = 40

    @property
    def peak_gflops(self) -> float:
        """Peak double-precision GFlops (8 flops/cycle AVX on SNB-EP)."""
        return self.clock_ghz * self.cores * self.sockets * 8


@dataclass(frozen=True)
class GPUSpec:
    """One GPU model."""

    model: str = "NVIDIA Tesla M2090"
    clock_ghz: float = 1.3
    count: int = 4
    memory_gbytes: int = 6
    memory_type: str = "GDDR5"
    peak_gflops_each: float = 665.0
    architecture: str = "Fermi"
    cuda_cores: int = 512

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak over all GPUs in the node."""
        return self.peak_gflops_each * self.count


K20_SPEC = GPUSpec(model="NVIDIA K20", clock_ghz=0.705, count=1,
                   memory_gbytes=5, peak_gflops_each=1170.0,
                   architecture="Kepler", cuda_cores=2496)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: CPUs + memory + GPUs + NIC."""

    cpu: CPUSpec = CPUSpec()
    memory_gbytes: int = 128
    memory_desc: str = "DDR3 1600 MHz x 4 ch, 128 Gbytes"
    gpu: GPUSpec = GPUSpec()
    interconnect: str = "Mellanox Connect-X3 Dual-port QDR"

    @property
    def cpu_peak_gflops(self) -> float:
        """CPU-side peak of the node."""
        return self.cpu.peak_gflops

    @property
    def gpu_peak_gflops(self) -> float:
        """GPU-side peak of the node."""
        return self.gpu.peak_gflops


@dataclass(frozen=True)
class ClusterSpec:
    """Table I: the HA-PACS base cluster."""

    node: NodeSpec = NodeSpec()
    num_nodes: int = 268
    storage: str = "Lustre File System 504 Tbytes"
    interconnect: str = "InfiniBand QDR 288 ports switch x 2"
    num_racks: int = 26
    max_power_kw: int = 408

    @property
    def total_peak_tflops(self) -> float:
        """Total system peak in TFlops."""
        per_node = self.node.cpu_peak_gflops + self.node.gpu_peak_gflops
        return per_node * self.num_nodes / 1000.0


HA_PACS_BASE_CLUSTER = ClusterSpec()


@dataclass(frozen=True)
class TestbedSpec:
    """Table II: the preliminary-evaluation environment."""

    cpu: CPUSpec = CPUSpec()
    memory_desc: str = "DDR3 1600 MHz x 4 ch, 128 Gbytes"
    motherboards: Tuple[str, ...] = ("SuperMicro X9DRG-QF", "Intel S2600IP")
    gpu: GPUSpec = K20_SPEC
    gpu_memory_desc: str = "GDDR5 2600 MHz, 5 Gbytes"
    board_desc: str = "16 layers (main) + eight layers (sub)"
    fpga: str = "Altera Stratix IV GX 530, 290 (EP4SGX{530,290}NF45C2N)"
    peach2_logic: str = "version 20121112"
    os: str = "Linux, CentOS 6.3"
    kernel: str = "kernel-2.6.32-279.{9,14,19}.1.el6.x86_64"
    gpu_driver: str = "NVIDIA-Linux-x86_64-304.{51,64}"
    programming_env: str = "CUDA 5.0"


TESTBED = TestbedSpec()


def render_table1(spec: ClusterSpec = HA_PACS_BASE_CLUSTER) -> str:
    """Table I in the paper's row order."""
    node = spec.node
    rows: List[Tuple[str, str]] = [
        ("CPU", f"{node.cpu.model} {node.cpu.clock_ghz} GHz x "
                f"{node.cpu.sockets} sockets"),
        ("", f"({node.cpu.cores} cores + {node.cpu.cache_mbytes}-Mbyte cache)"
             " / socket"),
        ("Memory", node.memory_desc),
        ("Peak performance", f"{node.cpu_peak_gflops:.1f} GFlops"),
        ("GPU", f"{node.gpu.model} {node.gpu.clock_ghz} GHz x {node.gpu.count}"),
        ("GPU Memory", f"{node.gpu.memory_type} {node.gpu.memory_gbytes} Gbytes / GPU"),
        ("GPU Peak performance", f"{node.gpu_peak_gflops:.0f} GFlops"),
        ("InfiniBand", node.interconnect),
        ("Number of nodes", str(spec.num_nodes)),
        ("Storage", spec.storage),
        ("Interconnect", spec.interconnect),
        ("Total peak performance", f"{spec.total_peak_tflops:.0f} TFlops"),
        ("Number of racks", str(spec.num_racks)),
        ("Maximum power consumption", f"{spec.max_power_kw} kW"),
    ]
    return _render_rows("Table I: HA-PACS base cluster", rows)


def render_table2(spec: TestbedSpec = TESTBED) -> str:
    """Table II in the paper's row order."""
    rows: List[Tuple[str, str]] = [
        ("CPU", f"{spec.cpu.model} {spec.cpu.clock_ghz} GHz x {spec.cpu.sockets}"),
        ("Memory", spec.memory_desc),
        ("Motherboard (a)", spec.motherboards[0]),
        ("Motherboard (b)", spec.motherboards[1]),
        ("GPU", f"{spec.gpu.model} {spec.gpu.cuda_cores} cores, "
                f"{int(spec.gpu.clock_ghz * 1000)} MHz"),
        ("GPU Memory", spec.gpu_memory_desc),
        ("PEACH2 prototype board", spec.board_desc),
        ("FPGA", spec.fpga),
        ("PEACH2 Logic", spec.peach2_logic),
        ("OS", spec.os),
        ("Kernel", spec.kernel),
        ("GPU Driver", spec.gpu_driver),
        ("Programming Environment", spec.programming_env),
    ]
    return _render_rows("Table II: test environment", rows)


def _render_rows(title: str, rows: List[Tuple[str, str]]) -> str:
    width = max(len(k) for k, _ in rows)
    lines = [title, "-" * len(title)]
    lines += [f"{k:<{width}} | {v}" for k, v in rows]
    return "\n".join(lines)
