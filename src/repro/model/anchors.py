"""The paper's numeric anchors, as one machine-checkable table.

EXPERIMENTS.md promises that every figure and table of Hanawa et al.
2013 is reproduced — calibration anchors to within ~1 %, everything else
in shape (who wins, by what factor, where the knees fall).  This module
is the executable form of that contract: one :class:`Anchor` per promise,
each naming the experiment payload it reads, the paper's value, an
explicit tolerance, and a comparison mode.  The suite runner
(``tca-bench suite``) checks the whole table against live results; the
tier-1 regression tests in ``tests/bench/test_anchors.py`` pin the
headline subset so a calibration regression fails fast.

:func:`calibration_fingerprint` hashes every tunable constant of
:class:`~repro.model.calibration.Calibration`; the result-cache key
includes it, so no cached experiment result can survive a model change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional

from repro.model.calibration import CALIB, Calibration
from repro.units import KiB, MiB

K4 = 4 * KiB
M1 = 1 * MiB


def calibration_fingerprint(calib: Calibration = CALIB) -> str:
    """SHA-256 over every field of the calibration, name and value."""
    parts = {f.name: repr(getattr(calib, f.name)) for f in fields(calib)}
    blob = json.dumps(parts, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class AnchorDataMissing(LookupError):
    """The payload lacks the point this anchor reads (reduced sweep)."""


# -- payload accessors ---------------------------------------------------------

def series_at(payload: Any, label: str, x: float) -> float:
    """The y value of one series point in a SweepTable payload."""
    try:
        points = payload["series"][label]
    except (KeyError, TypeError):
        raise AnchorDataMissing(f"no series {label!r} in payload")
    for px, py in points:
        if px == x:
            return float(py)
    raise AnchorDataMissing(f"series {label!r} has no point at x={x}")


def scalar(payload: Any, key: str) -> float:
    """One key of a scalar-dict payload."""
    try:
        return payload[key]
    except (KeyError, TypeError):
        raise AnchorDataMissing(f"no scalar {key!r} in payload")


def _sweep(label: str, x: float) -> Callable[[Any], float]:
    return lambda p: series_at(p, label, x)


def _sweep_ratio(num_label: str, num_x: float, den_label: str,
                 den_x: float) -> Callable[[Any], float]:
    return lambda p: (series_at(p, num_label, num_x)
                      / series_at(p, den_label, den_x))


def _scalar(key: str) -> Callable[[Any], float]:
    return lambda p: scalar(p, key)


def _scalar_ratio(num_key: str, den_key: str) -> Callable[[Any], float]:
    return lambda p: scalar(p, num_key) / scalar(p, den_key)


def _text_contains(needle: str) -> Callable[[Any], bool]:
    def extract(p: Any) -> bool:
        text = p.get("text") if isinstance(p, dict) else p
        if not isinstance(text, str):
            raise AnchorDataMissing("payload is not a text table")
        return needle in text
    return extract


# -- the anchor model ----------------------------------------------------------

@dataclass(frozen=True)
class Anchor:
    """One machine-checkable claim about one experiment's result.

    ``cmp`` modes:

    * ``near`` — |measured − paper| ≤ tolerance × |paper|
    * ``le`` / ``ge`` — measured ≤ / ≥ paper × (1 ± tolerance)
    * ``truthy`` — the extracted value must be True (paper is ignored)
    """

    name: str
    experiment: str                 # registry entry whose payload it reads
    description: str
    extract: Callable[[Any], Any]
    paper: float = 1.0
    tolerance: float = 0.0          # relative
    cmp: str = "near"
    section: str = ""

    def check(self, payload: Any) -> "AnchorCheck":
        """Evaluate against one payload; never raises on missing data."""
        try:
            measured = self.extract(payload)
        except AnchorDataMissing as exc:
            return AnchorCheck(self, None, "skipped", str(exc))
        if self.cmp == "truthy":
            ok = bool(measured)
        elif self.cmp == "le":
            ok = measured <= self.paper * (1 + self.tolerance)
        elif self.cmp == "ge":
            ok = measured >= self.paper * (1 - self.tolerance)
        elif self.cmp == "near":
            ok = abs(measured - self.paper) <= self.tolerance * abs(self.paper)
        else:  # pragma: no cover - guarded by tests over ANCHORS
            raise ValueError(f"unknown cmp {self.cmp!r}")
        return AnchorCheck(self, measured, "pass" if ok else "fail", None)


@dataclass(frozen=True)
class AnchorCheck:
    """The outcome of checking one anchor against one payload."""

    anchor: Anchor
    measured: Optional[Any]
    status: str                     # "pass" | "fail" | "skipped"
    detail: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status != "fail"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.anchor.name,
            "experiment": self.anchor.experiment,
            "description": self.anchor.description,
            "section": self.anchor.section,
            "cmp": self.anchor.cmp,
            "paper": self.anchor.paper,
            "tolerance": self.anchor.tolerance,
            "measured": self.measured,
            "status": self.status,
            **({"detail": self.detail} if self.detail else {}),
        }

    def __str__(self) -> str:
        mark = {"pass": "ok ", "fail": "FAIL", "skipped": "skip"}[self.status]
        if self.anchor.cmp == "truthy":
            value = f"measured={self.measured}"
        elif self.measured is None:
            value = "(not measured)"
        else:
            value = (f"paper={self.anchor.paper:g} "
                     f"measured={self.measured:.4g}")
        return f"[{mark}] {self.anchor.name}: {value}"


#: Every numeric promise of EXPERIMENTS.md, E1 through E23.
ANCHORS: List[Anchor] = [
    # E1/E2 — specification tables reproduced verbatim.
    Anchor("table1-total-peak", "table1",
           "Table I total peak is 802 TFlops over 268 nodes",
           _text_contains("802 TFlops"), cmp="truthy", section="Table I"),
    Anchor("table1-cpu-node-peak", "table1",
           "Table I CPU node peak is 332.8 GFlops",
           _text_contains("332.8"), cmp="truthy", section="Table I"),
    Anchor("table2-gpu-model", "table2",
           "Table II testbed carries a K20-class GPU",
           _text_contains("K20"), cmp="truthy", section="Table II"),

    # E3 — Eq. (1) closed forms.
    Anchor("eq1-gen2-x8-rate", "theory",
           "Gen2 x8 post-encoding rate is 4 Gbytes/s",
           _scalar("gen2_x8_raw_gbytes"), 4.0, 0.001, section="Eq. (1)"),
    Anchor("eq1-payload-ceiling", "theory",
           "payload ceiling at MPS 256 B is 3.66 Gbytes/s",
           _scalar("eq1_peak_gbytes"), 3.657, 0.001, section="Eq. (1)"),
    Anchor("eq1-gpu-read-bound", "theory",
           "GPU-read latency-bandwidth bound implies ~830 Mbytes/s",
           _scalar("gpu_read_bound_gbytes"), 0.831, 0.002, section="§IV-A2"),

    # E4 — Fig. 7 (255 chained DMAs).
    Anchor("fig7-peak-write-4k", "fig7",
           "chained DMA write peaks at 3.27 Gbytes/s at 4 KB",
           _sweep("CPU (write)", K4), 3.27, 0.005, section="§IV-A1"),
    Anchor("fig7-gpu-read-cap", "fig7",
           "DMA read from GPU memory caps at ~830 Mbytes/s",
           _sweep("GPU (read)", K4), 0.829, 0.005, section="§IV-A2"),
    Anchor("fig7-read-write-parity-4k", "fig7",
           "CPU read reaches ~99 % of write at 4 KB",
           _sweep_ratio("CPU (read)", K4, "CPU (write)", K4),
           0.99, 0.02, section="Fig. 7"),
    Anchor("fig7-read-below-write-small", "fig7",
           "CPU read is ~67 % of write at 256 B",
           _sweep_ratio("CPU (read)", 256, "CPU (write)", 256),
           0.67, 0.05, section="Fig. 7"),
    Anchor("fig7-gpu-write-matches-cpu", "fig7",
           "GPU write equals CPU write at 4 KB",
           _sweep_ratio("GPU (write)", K4, "CPU (write)", K4),
           1.0, 0.005, section="Fig. 7"),

    # E5 — Fig. 8 (single DMA).
    Anchor("fig8-single-4k-degraded", "fig8",
           "a single 4-KB DMA write manages only ~1.03 Gbytes/s",
           _sweep("CPU (write)", K4), 1.03, 0.01, section="Fig. 8"),
    Anchor("fig8-recovers-32k", "fig8",
           "a single 32-KB DMA write recovers to ~2.59 Gbytes/s",
           _sweep("CPU (write)", 32 * KiB), 2.59, 0.01, section="Fig. 8"),

    # E6 — Fig. 9 (request count at 4 KB).
    Anchor("fig9-four-request-fraction", "fig9",
           "4 chained requests reach 65 % of the 255-request peak",
           _sweep_ratio("CPU (write)", 4, "CPU (write)", 255),
           0.65, 0.02, section="Fig. 9"),
    Anchor("fig9-two-requests-match-8k", "fig9",
           "two 4-KB requests perform like one 8-KB request (1.57 GB/s)",
           _sweep("CPU (write)", 2), 1.57, 0.01, section="Fig. 9"),

    # E7 — §IV-A2 limits.
    Anchor("limits-gpu-read-ceiling", "limits",
           "GPU DMA-read ceiling is ~830 Mbytes/s",
           _scalar("gpu_read_gbytes"), 0.829, 0.005, section="§IV-A2"),
    Anchor("limits-gpu-write-same-socket", "limits",
           "GPU write on the same socket matches the CPU-write peak",
           _scalar("gpu_write_same_socket_gbytes"), 3.27, 0.005,
           section="§IV-A2"),
    Anchor("limits-qpi-collapse", "limits",
           "DMA write across QPI collapses to a few hundred Mbytes/s",
           _scalar("gpu_write_over_qpi_gbytes"), 0.3, 0.1,
           section="§IV-A2"),

    # E8 — Fig. 10 / §IV-B1 PIO latency.
    Anchor("latency-pio-one-way", "latency",
           "one-way store-to-commit through 2 chips + 1 cable is 782 ns",
           _scalar("pio_one_way_ns"), 782.0, 0.001, section="§IV-B1"),
    Anchor("latency-pio-polled", "latency",
           "the polling driver observes 800 ns (poll quantization)",
           _scalar("pio_polled_ns"), 800.0, 0.005, section="§IV-B1"),
    Anchor("latency-beats-ib-fdr", "latency",
           "PIO latency beats the InfiniBand FDR sub-microsecond claim",
           _scalar("pio_one_way_ns"), 1000.0, 0.0, cmp="le",
           section="§IV-B1"),

    # E9 — Fig. 12 (remote DMA write to the adjacent node).
    Anchor("fig12-remote-cpu-dip", "fig12",
           "remote-CPU bandwidth is ~44 % of local at 256 B",
           _sweep_ratio("remote CPU", 256, "local CPU (write)", 256),
           0.44, 0.05, section="Fig. 12"),
    Anchor("fig12-remote-cpu-converges-4k", "fig12",
           "remote CPU converges to local at 4 KB",
           _sweep_ratio("remote CPU", K4, "local CPU (write)", K4),
           1.0, 0.01, section="Fig. 12"),
    Anchor("fig12-remote-gpu-matches-local", "fig12",
           "remote GPU equals local GPU at every size (256 B shown)",
           _sweep_ratio("remote GPU", 256, "local GPU (write)", 256),
           1.0, 0.01, section="Fig. 12"),

    # E10 — motivation comparison.
    Anchor("host-pio-8b", "comparison-host",
           "host-to-host TCA PIO takes 0.95 µs at 8 B",
           _sweep("tca-pio", 8), 0.95, 0.02, section="§I"),
    Anchor("host-pio-beats-verbs-8b", "comparison-host",
           "TCA PIO beats IB verbs at 8 B",
           _sweep_ratio("tca-pio", 8, "ib-verbs", 8), 1.0, 0.0, cmp="le",
           section="§I"),
    Anchor("host-verbs-beats-mpi-8b", "comparison-host",
           "IB verbs beat MPI at 8 B",
           _sweep_ratio("ib-verbs", 8, "mpi-ib", 8), 1.0, 0.0, cmp="le",
           section="§I"),
    Anchor("host-verbs-beat-dma-1mib", "comparison-host",
           "single-rail IB verbs beat the two-phase DMAC at 1 MiB",
           _sweep_ratio("ib-verbs", M1, "tca-dma", M1), 1.0, 0.0, cmp="le",
           section="§I"),
    Anchor("gpu-tca-64b", "comparison-gpu",
           "GPU-to-GPU TCA DMA takes 4.4 µs at 64 B",
           _sweep("tca-dma-gpu", 64), 4.4, 0.02, section="§I"),
    Anchor("gpu-tca-matches-gdr-64b", "comparison-gpu",
           "TCA DMA matches IB+GPUDirect-RDMA at 64 B",
           _sweep_ratio("tca-dma-gpu", 64, "gpu-mpi-gdr", 64), 1.0, 0.02,
           section="§I"),
    Anchor("gpu-3copy-gap-64b", "comparison-gpu",
           "the conventional three-copy path is ~4.5x slower at 64 B",
           _sweep_ratio("gpu-mpi-3copy", 64, "tca-dma-gpu", 64), 4.5, 0.05,
           section="§I"),
    Anchor("gpu-pipelined-wins-1mib", "comparison-gpu",
           "the chunk-pipelined host-staged path wins at 1 MiB",
           _sweep_ratio("gpu-mpi-pipelined", M1, "tca-dma-gpu", M1),
           1.0, 0.0, cmp="le", section="§IV"),

    # E11 — two-phase vs pipelined DMAC.
    Anchor("dmac-pipelined-line-rate", "ablation-dmac",
           "the pipelined DMAC restores ~3.27 Gbytes/s at 1 MiB",
           _sweep("tca-dma-pipelined", M1), 3.27, 0.01, section="§IV-B2"),
    Anchor("dmac-speedup-1mib", "ablation-dmac",
           "pipelining doubles host-to-host put bandwidth at 1 MiB",
           _sweep_ratio("tca-dma-pipelined", M1, "tca-dma", M1),
           2.0, 0.02, section="§IV-B2"),

    # E12 — ring size vs latency.
    Anchor("ring2-pio-latency", "ablation-ring",
           "a 2-node ring reproduces the 782 ns adjacent latency",
           _sweep("one-way latency", 2), 782.0, 0.001, section="§II-B"),
    Anchor("ring16-worst-case", "ablation-ring",
           "the 16-node antipodal latency is ~2.4 µs",
           _sweep("one-way latency", 16), 2400.0, 0.02, section="§II-B"),

    # E13 — functional routing.
    Anchor("routing-all-pairs", "routing",
           "all-pairs PIO delivery is byte-exact on every ring",
           _scalar("all_pairs_ok"), cmp="truthy", section="§III-E"),

    # E14 — NTB comparison.
    Anchor("ntb-store-latency", "ablation-ntb",
           "a back-to-back NTB pair stores in 886 ns",
           _scalar("ntb_store_latency_ns"), 886.0, 0.005, section="§V"),
    Anchor("ntb-latency-parity", "ablation-ntb",
           "NTB latency is within ~15 % of PEACH2's 782 ns",
           _scalar_ratio("ntb_store_latency_ns", "peach2_store_latency_ns"),
           1.13, 0.02, section="§V"),
    Anchor("ntb-reboot-critique", "ablation-ntb",
           "unplugging the NTB cable leaves both hosts reboot-required",
           _scalar("ntb_hosts_require_reboot_after_unplug"), cmp="truthy",
           section="§V"),
    Anchor("peach2-host-link-survives", "ablation-ntb",
           "cutting a PEACH2 ring cable leaves the host link up",
           _scalar("peach2_host_link_up_after_ring_cut"), cmp="truthy",
           section="§V"),

    # E15 — PEARL ring healing.
    Anchor("healing-restores-all-pairs", "healing",
           "after a cable cut and heal, every pair communicates again",
           _scalar("all_pairs_ok_after_heal"), cmp="truthy",
           section="PEARL"),
    Anchor("healing-detour-costs-hops", "healing",
           "the healed 0->1 path pays the long way around (~1.58x latency)",
           _scalar("detour_factor"), 1.58, 0.02, section="PEARL"),

    # E16 — PIO vs DMA crossover.
    Anchor("crossover-pio-wins-1k", "pio-dma-crossover",
           "PIO is still faster than DMA at 1 KB",
           _sweep_ratio("tca-pio", KiB, "tca-dma", KiB), 1.0, 0.0, cmp="le",
           section="§III-F"),
    Anchor("crossover-dma-wins-2k", "pio-dma-crossover",
           "DMA overtakes PIO by 2 KB",
           _sweep_ratio("tca-dma", 2 * KiB, "tca-pio", 2 * KiB),
           1.0, 0.0, cmp="le", section="§III-F"),

    # E17 — hierarchical network.
    Anchor("hierarchy-local-wins-64b", "hierarchy",
           "the TCA transport wins the 64-B local put",
           _sweep_ratio("local (TCA)", 64, "global (IB)", 64),
           1.0, 0.0, cmp="le", section="§II-B"),
    Anchor("hierarchy-global-wins-256k", "hierarchy",
           "InfiniBand wins the 256-KB put",
           _sweep_ratio("global (IB)", 256 * KiB, "local (TCA)", 256 * KiB),
           1.0, 0.0, cmp="le", section="§II-B"),

    # E18 — collectives without an MPI stack.
    Anchor("collectives-tca-wins-1k", "collectives",
           "the MPI-free ring allgather wins at 1-KB blocks",
           _sweep_ratio("tca", KiB, "mpi-ib", KiB), 1.0, 0.0, cmp="le",
           section="§V"),
    Anchor("collectives-mpi-wins-64k", "collectives",
           "bulk collectives belong on InfiniBand (64-KB blocks)",
           _sweep_ratio("mpi-ib", 64 * KiB, "tca", 64 * KiB), 1.0, 0.0,
           cmp="le", section="§V"),

    # E19 — ring contention.
    Anchor("contention-hop1", "contention",
           "adjacent-neighbour shifts sustain ~3.16 Gbytes/s per flow",
           _sweep("4-node ring", 1), 3.16, 0.005, section="§II-B"),
    Anchor("contention-inverse-k", "contention",
           "per-flow bandwidth falls as ~1/k (2-hop ≈ 57 % of 1-hop)",
           _sweep_ratio("4-node ring", 2, "4-node ring", 1), 0.57, 0.02,
           section="§II-B"),

    # E20 — allreduce crossover (TCA-native vs MPI over IB).
    Anchor("allreduce-tca-wins-1k", "collective-allreduce",
           "the MPI-free ring allreduce wins at 1-KiB vectors",
           _sweep_ratio("tca", KiB, "mpi-ib", KiB), 1.0, 0.0, cmp="le",
           section="§V"),
    Anchor("allreduce-mpi-wins-256k", "collective-allreduce",
           "bulk allreduce belongs on InfiniBand (256-KiB vectors)",
           _sweep_ratio("mpi-ib", 256 * KiB, "tca", 256 * KiB), 1.0, 0.0,
           cmp="le", section="§V"),

    # E21 — dual-ring vs single-ring collectives.
    Anchor("dual-ring-allreduce-speedup", "collective-dual-ring",
           "the S-coupled dual ring speeds a latency-bound 8-node "
           "allreduce by >= 1.5x (N-1 vs 2(N-1) put steps)",
           _sweep_ratio("single-ring", KiB, "dual-ring", KiB), 1.5, 0.0,
           cmp="ge", section="§III-D"),
    Anchor("dual-ring-critpath-steps", "collective-dual-ring",
           "the hierarchical 8-node allreduce serializes exactly N-1=7 "
           "critical-path steps (flat: 2(N-1)=14)",
           _sweep("dual-ring steps", KiB), 7.0, 0.0, section="§III-D"),

    # E22 — ring vs torus allreduce scaling.
    Anchor("torus-allreduce-speedup-16", "collective-torus",
           "folding 16 nodes into a 4x4 torus speeds the 4-KiB allreduce "
           "by >= 1.5x (30 vs 12 put steps)",
           _sweep_ratio("ring", 16, "torus", 16), 1.5, 0.0,
           cmp="ge", section="fabric"),
    Anchor("torus-allreduce-speedup-64", "collective-torus",
           "at 64 nodes the 8x8 torus wins by >= 3x (126 vs 28 put "
           "steps) — the gap widens with N",
           _sweep_ratio("ring", 64, "torus", 64), 3.0, 0.0,
           cmp="ge", section="fabric"),
    Anchor("torus-critpath-steps-16", "collective-torus",
           "the 4x4 torus allreduce serializes exactly "
           "2*sum(n_d-1) = 12 critical-path steps",
           _sweep("torus steps", 16), 12.0, 0.0, section="fabric"),
    Anchor("torus-critpath-steps-64", "collective-torus",
           "the 8x8 torus allreduce serializes exactly "
           "2*sum(n_d-1) = 28 critical-path steps (flat ring: 126)",
           _sweep("torus steps", 64), 28.0, 0.0, section="fabric"),

    # E23 — bisection bandwidth.
    Anchor("bisection-ring-aggregate-16", "bisection",
           "antipodal shifts on a 16-ring saturate its two bisection "
           "links at ~7.3 Gbytes/s aggregate",
           _sweep("ring", 16), 7.27, 0.005, section="fabric"),
    Anchor("bisection-torus-advantage-16", "bisection",
           "the 4x4 torus carries >= 3.5x the ring's bisection traffic "
           "(2k links and k/2-hop antipodes vs 2 links and N/2 hops)",
           _sweep_ratio("torus", 16, "ring", 16), 3.5, 0.0,
           cmp="ge", section="fabric"),
]


def anchors_for(experiment: str) -> List[Anchor]:
    """All anchors that read the named experiment's payload."""
    return [a for a in ANCHORS if a.experiment == experiment]


def anchor(name: str) -> Anchor:
    """Look one anchor up by its unique name."""
    for a in ANCHORS:
        if a.name == name:
            return a
    raise KeyError(name)
