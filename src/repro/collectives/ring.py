"""TCA-native ring collectives: allgather, reduce-scatter, allreduce,
broadcast, barrier (§I, §V).

Every collective here is a *schedule of puts plus flag stores* — no
message matching, no software protocol stack.  Payloads travel as PIO
puts (short messages, §III-F1) or chained-DMA puts submitted through the
:class:`~repro.collectives.channels.ChannelScheduler` (bulk, §III-F2);
completion is a 4-byte flag store that PCIe path ordering keeps behind
the payload (§III-H).  On a :data:`~repro.tca.subcluster.DUAL_RING`
sub-cluster, allreduce and broadcast go hierarchical: each ring works
in parallel and the S cables carry one cross-ring exchange, cutting an
8-node allreduce from 2(N-1)=14 to N-1=7 serialized hops.

Reductions are uint32 modular sums, so results are byte-identical
regardless of arrival order.  Every public collective self-checks its
result against a NumPy reference and raises
:class:`~repro.errors.ConfigError` on mismatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.channels import ChannelScheduler
from repro.errors import ConfigError
from repro.peach2.registers import PortCode
from repro.tca.comm import TCAComm
from repro.tca.notify import FlagPool
from repro.tca.subcluster import DUAL_RING, RING, TORUS, TCASubCluster
from repro.tca.topology import ring_neighbor

#: Staging regions are page-aligned, like the real driver's allocations.
PAGE = 4096

#: Payloads at or below this ride PIO; above, chained DMA (the E16/E18
#: crossover regime — same split the allgather mini-app always used).
PIO_THRESHOLD = 2048

# Flag-index plan (one FlagPool, 64 flags; rings hold at most 16 nodes so
# a phase needs at most 15 step flags).  Distinct phases use distinct
# flags; sequence numbers make reuse across invocations safe.  Clusters
# beyond 16 nodes (torus fabrics, 64-node flat rings) scale this plan
# per instance — see :meth:`TCACollectives._plan_flags`; up to 16 nodes
# the instance plan equals these module constants exactly.
FLAG_RS = 0        # reduce-scatter steps          0..14
FLAG_AG = 16       # allgather steps              16..30
FLAG_X = 32        # one cross-ring S exchange
FLAG_BCAST = 33    # broadcast delivery
FLAG_BARRIER = 34  # dissemination-barrier rounds 34..37


def _align(nbytes: int) -> int:
    return -(-nbytes // PAGE) * PAGE


class TCACollectives:
    """Collective context over one sub-cluster.

    Owns a :class:`~repro.tca.comm.TCAComm`, a
    :class:`~repro.tca.notify.FlagPool` and one
    :class:`ChannelScheduler` per node.  Collectives stage through each
    node's driver DMA buffer: payload slots from offset 0 up, flag words
    at the top (the pool's region).  One context may run many
    collectives back to back; running two contexts on one cluster
    concurrently is not supported (their flag regions alias).
    """

    def __init__(self, cluster: TCASubCluster,
                 pio_threshold: int = PIO_THRESHOLD):
        self.cluster = cluster
        self.engine = cluster.engine
        self.comm = TCAComm(cluster)
        num_flags = self._plan_flags(cluster.num_nodes)
        self.flags = FlagPool(cluster, self.comm, num_flags=num_flags)
        self.pio_threshold = pio_threshold
        self.schedulers = [ChannelScheduler(cluster, node_id)
                           for node_id in range(cluster.num_nodes)]
        #: Bytes of each DMA buffer available for payload + staging.
        self.data_bytes = (min(d.usable_dma_bytes for d in cluster.drivers)
                           - self.flags.region_bytes)
        # A fresh context must not inherit flag values from an earlier
        # one (its FlagPool sequences restart at 1).
        zeros = np.zeros(self.flags.region_bytes, dtype=np.uint8)
        for driver in cluster.drivers:
            driver.fill_dma_buffer(
                driver.usable_dma_bytes - self.flags.region_bytes, zeros)
        # Receiver-side expected-sequence counters, per (node, flag).
        self._expect: Dict[Tuple[int, int], int] = {}

    # -- plumbing -----------------------------------------------------------------

    def _plan_flags(self, n: int) -> int:
        """Lay out the per-instance flag banks; returns the pool size.

        Up to 16 nodes this reproduces the module-level plan (FLAG_RS=0,
        FLAG_AG=16, ...) exactly.  Larger fabrics need up to n-1 step
        flags per phase bank, so the banks stretch and the FlagPool
        grows to match (the flag region is a sliver of the 16-MiB DMA
        buffer either way).
        """
        if n <= 16:
            self._flag_rs = FLAG_RS
            self._flag_ag = FLAG_AG
            self._flag_x = FLAG_X
            self._flag_bcast = FLAG_BCAST
            self._flag_barrier = FLAG_BARRIER
            return 64
        steps = n - 1
        self._flag_rs = 0
        self._flag_ag = steps
        self._flag_x = 2 * steps
        self._flag_bcast = 2 * steps + 1
        self._flag_barrier = 2 * steps + 2
        return self._flag_barrier + (n - 1).bit_length()

    def _wait(self, node: int, flag: int):
        """Process: wait for the next notification on a local flag."""
        key = (node, flag)
        self._expect[key] = self._expect.get(key, 0) + 1
        start_ps = self.engine.now_ps
        tsc = yield from self.flags.wait(node, flag, self._expect[key])
        # The flag-wait span is what the critical-path analyzer walks
        # (repro.obs.critpath); a strict no-op without a tracer.
        self.engine.trace(f"coll.n{node}", "coll-wait", flag=flag,
                          dur_ps=self.engine.now_ps - start_ps)
        return tsc

    def _put(self, src_node: int, src_offset: int, dst_node: int,
             dst_offset: int, nbytes: int):
        """Process: put DMA-buffer bytes to a peer's DMA buffer.

        Short payloads ride a paced PIO stream; bulk ones become a
        two-phase chained-DMA put submitted through the source node's
        channel scheduler, so concurrent puts from one node (e.g. a
        bidirectional broadcast, or a ring put next to an S-port
        exchange) overlap on different DMA channels.

        Returns ``(wire_ps, queue_ps, transport)``: time the payload
        spent on the wire (doorbell/stream to completion), time the
        chain waited for a free DMA channel (always 0 for PIO), and
        which transport carried it.
        """
        driver = self.cluster.driver(src_node)
        dst_global = self.comm.host_global(
            dst_node, self.cluster.driver(dst_node).dma_buffer(dst_offset))
        start_ps = self.engine.now_ps
        if nbytes <= self.pio_threshold:
            payload = driver.read_dma_buffer(src_offset, nbytes)
            elapsed = yield self.engine.process(
                self.comm.put_pio_timed(src_node, dst_global, payload),
                name=f"coll{src_node}.pio")
            return elapsed, 0, "pio"
        chain = self.comm.put_dma_descriptors(
            src_node, driver.dma_buffer(src_offset), dst_global, nbytes)
        elapsed = yield self.schedulers[src_node].submit(chain)
        # The scheduler's signal fires with doorbell-to-IRQ time, so
        # anything beyond that is channel-queue wait.
        queue_ps = (self.engine.now_ps - start_ps) - elapsed
        return elapsed, queue_ps, "dma"

    def _put_flagged(self, src_node: int, src_offset: int, dst_node: int,
                     dst_offset: int, nbytes: int, flag: int):
        """Process: put, then store the completion flag.

        For DMA the flag store happens after the chain's completion IRQ;
        for PIO it is posted right behind the payload.  Either way it
        follows the payload on the same address-routed path, so §III-H
        posted-write ordering guarantees the receiver polls it last.
        """
        start_ps = self.engine.now_ps
        wire_ps, queue_ps, transport = yield from self._put(
            src_node, src_offset, dst_node, dst_offset, nbytes)
        self.flags.signal(src_node, dst_node, flag)
        # One span per flagged put, decomposed for repro.obs.critpath.
        self.engine.trace(f"coll.n{src_node}", "coll-put", flag=flag,
                          dst=dst_node, nbytes=nbytes, transport=transport,
                          wire_ps=wire_ps, queue_ps=queue_ps,
                          dur_ps=self.engine.now_ps - start_ps)

    def _reduce_into(self, node: int, accum_offset: int,
                     staging_offset: int, nbytes: int) -> None:
        """uint32 modular sum of a staged chunk into the accumulator."""
        driver = self.cluster.driver(node)
        acc = driver.read_dma_buffer(accum_offset, nbytes).view(np.uint32)
        inc = driver.read_dma_buffer(staging_offset, nbytes).view(np.uint32)
        driver.fill_dma_buffer(accum_offset, (acc + inc).view(np.uint8))

    def _run(self, workers: Dict[int, object], name: str) -> None:
        """Spawn one process per node and step the engine to completion."""
        procs = [self.engine.process(gen, name=f"{name}{node}")
                 for node, gen in sorted(workers.items())]
        while not all(p.done for p in procs):
            if not self.engine.step():
                raise ConfigError(f"{name} deadlocked")

    def _flat_ring(self) -> List[int]:
        """Node ids in logical ring order for whole-cluster collectives.

        On a single ring this is the cable order; on a dual ring the
        same id order still works (route tables deliver any put, puts to
        the other ring just cross an S cable) — it is what the flat
        variants use when asked to ignore the hierarchy.
        """
        if self.cluster.topology == RING:
            return self.cluster.rings()[0]
        return list(range(self.cluster.num_nodes))

    def overlap_stats(self) -> Dict[int, Dict[str, object]]:
        """Per-node scheduler statistics (proof DMA overlap happened)."""
        return {
            node: {
                "submitted": sched.submitted,
                "max_inflight": sched.max_inflight,
                "chains_per_channel": sched.chains_per_channel(),
            }
            for node, sched in enumerate(self.schedulers)
        }

    # -- allgather ----------------------------------------------------------------

    def allgather(self, blocks: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Ring allgather: every node ends with all N blocks, in order.

        DMA-buffer layout: N block slots from offset 0; step s puts the
        forwarded block straight into its final slot on the East
        neighbour.  N-1 steps, self-checked on every node.
        """
        n = self.cluster.num_nodes
        if len(blocks) != n:
            raise ConfigError(f"need one block per node ({n})")
        blocks = [np.ascontiguousarray(b, dtype=np.uint8) for b in blocks]
        block_bytes = blocks[0].size
        if block_bytes <= 0:
            raise ConfigError("blocks must be non-empty")
        if any(b.size != block_bytes for b in blocks):
            raise ConfigError("all blocks must be the same size")
        if n * block_bytes > self.data_bytes:
            raise ConfigError("blocks too large for the DMA buffers")

        for rank in range(n):
            self.cluster.driver(rank).fill_dma_buffer(rank * block_bytes,
                                                      blocks[rank])

        def worker(rank: int):
            east = (rank + 1) % n
            for step in range(n - 1):
                # Forward the block received last step (own block first).
                block_id = (rank - step) % n
                yield from self._put_flagged(
                    rank, block_id * block_bytes,
                    east, block_id * block_bytes,
                    block_bytes, self._flag_ag + step)
                yield from self._wait(rank, self._flag_ag + step)

        self._run({rank: worker(rank) for rank in range(n)}, "allgather")

        expect = np.concatenate(blocks)
        results = []
        for rank in range(n):
            got = self.cluster.driver(rank).read_dma_buffer(
                0, n * block_bytes)
            if not np.array_equal(got, expect):
                raise ConfigError(f"allgather mismatch on rank {rank}")
            results.append(got)
        return results

    # -- reduce-scatter -----------------------------------------------------------

    def _check_vectors(self, vectors: Sequence[np.ndarray],
                       num_chunks: int) -> Tuple[List[np.ndarray], int]:
        n = self.cluster.num_nodes
        if len(vectors) != n:
            raise ConfigError(f"need one vector per node ({n})")
        vectors = [np.ascontiguousarray(v, dtype=np.uint32) for v in vectors]
        words = vectors[0].size
        if words <= 0:
            raise ConfigError("vectors must be non-empty")
        if any(v.size != words for v in vectors):
            raise ConfigError("all vectors must be the same length")
        if words % num_chunks:
            raise ConfigError(
                f"vector length {words} words must divide into "
                f"{num_chunks} equal chunks")
        return vectors, words

    def reduce_scatter(self, vectors: Sequence[np.ndarray]
                       ) -> List[np.ndarray]:
        """Ring reduce-scatter of uint32 vectors (modular sum).

        After N-1 steps rank r owns chunk (r+1) mod N of the elementwise
        sum.  Each step puts into a *distinct* per-step staging slot on
        the East neighbour, so no step ever overwrites data a slower
        receiver has not consumed — no credit flags needed.  Returns
        each rank's owned chunk.
        """
        n = self.cluster.num_nodes
        vectors, words = self._check_vectors(vectors, n)
        nbytes = words * 4
        chunk = nbytes // n
        staging = _align(nbytes)
        if staging + (n - 1) * chunk > self.data_bytes:
            raise ConfigError("vectors too large for the DMA buffers")

        for rank in range(n):
            self.cluster.driver(rank).fill_dma_buffer(
                0, vectors[rank].view(np.uint8))

        def worker(rank: int):
            east = (rank + 1) % n
            for step in range(n - 1):
                send = (rank - step) % n
                yield from self._put_flagged(
                    rank, send * chunk, east, staging + step * chunk,
                    chunk, self._flag_rs + step)
                yield from self._wait(rank, self._flag_rs + step)
                self._reduce_into(rank, ((rank - step - 1) % n) * chunk,
                                  staging + step * chunk, chunk)

        self._run({rank: worker(rank) for rank in range(n)},
                  "reduce-scatter")

        total = vectors[0].copy()
        for v in vectors[1:]:
            total = total + v  # uint32 wraps: the modular sum
        results = []
        for rank in range(n):
            owned = (rank + 1) % n
            got = self.cluster.driver(rank).read_dma_buffer(
                owned * chunk, chunk).view(np.uint32)
            lo = owned * (words // n)
            if not np.array_equal(got, total[lo:lo + words // n]):
                raise ConfigError(f"reduce-scatter mismatch on rank {rank}")
            results.append(got)
        return results

    # -- allreduce ----------------------------------------------------------------

    def allreduce(self, vectors: Sequence[np.ndarray],
                  hierarchical: Optional[bool] = None,
                  torus: Optional[bool] = None) -> List[np.ndarray]:
        """Ring allreduce (uint32 modular sum); every node gets the sum.

        Flat form: reduce-scatter then allgather over one logical ring —
        2(N-1) serialized put steps.  On a DUAL_RING cluster (the
        default there; force with ``hierarchical``) each ring
        reduce-scatters in parallel, same-column partners exchange their
        owned chunk over the S cables, then each ring allgathers:
        2(N/2-1)+1 = N-1 steps, about half the flat latency.

        On a TORUS cluster (the default there; force with ``torus``) the
        collective goes per-dimension: reduce-scatter along each
        dimension's ring in turn (regions shrinking by that dimension's
        extent), then allgather back in reverse order — 2*sum(n_d - 1)
        serialized steps instead of 2(N-1), e.g. 28 versus 126 on an
        8x8 torus.
        """
        if torus is None:
            torus = self.cluster.topology == TORUS
        elif torus and self.cluster.topology != TORUS:
            raise ConfigError("torus allreduce needs a TORUS sub-cluster")
        if hierarchical is None:
            hierarchical = (not torus
                            and self.cluster.topology == DUAL_RING)
        if hierarchical and self.cluster.topology != DUAL_RING:
            raise ConfigError("hierarchical allreduce needs a DUAL_RING "
                              "sub-cluster")
        if hierarchical and torus:
            raise ConfigError("hierarchical and torus allreduce are "
                              "mutually exclusive")
        n = self.cluster.num_nodes
        num_chunks = (n // 2) if hierarchical else n
        vectors, words = self._check_vectors(vectors, num_chunks)
        nbytes = words * 4
        chunk = nbytes // num_chunks
        staging = _align(nbytes)
        if torus:
            slots_bytes = self._torus_staging_bytes(nbytes)
        else:
            slots = num_chunks - 1 + (1 if hierarchical else 0)
            slots_bytes = max(slots, 1) * chunk
        if staging + slots_bytes > self.data_bytes:
            raise ConfigError("vectors too large for the DMA buffers")

        for rank in range(n):
            self.cluster.driver(rank).fill_dma_buffer(
                0, vectors[rank].view(np.uint8))

        if hierarchical:
            workers = self._allreduce_dual_workers(nbytes, chunk, staging)
        elif torus:
            workers = self._allreduce_torus_workers(nbytes)
        else:
            workers = {rank: self._allreduce_flat_worker(rank, chunk)
                       for rank in range(n)}
        self._run(workers, "allreduce")

        total = vectors[0].copy()
        for v in vectors[1:]:
            total = total + v
        results = []
        for rank in range(n):
            got = self.cluster.driver(rank).read_dma_buffer(
                0, nbytes).view(np.uint32)
            if not np.array_equal(got, total):
                raise ConfigError(f"allreduce mismatch on rank {rank}")
            results.append(got)
        return results

    def _allreduce_flat_worker(self, rank: int, chunk: int):
        """One rank of the flat RS+AG allreduce.

        The allgather phase writes straight into final chunk slots; that
        is race-free because rank r's AG-step-s put trails the
        receiver's last read of that slot by n-1 flag-chained put steps
        (and the self-check above would catch any violation).
        """
        n = self.cluster.num_nodes
        east = (rank + 1) % n
        staging = _align(n * chunk)
        for step in range(n - 1):
            send = (rank - step) % n
            yield from self._put_flagged(
                rank, send * chunk, east, staging + step * chunk,
                chunk, self._flag_rs + step)
            yield from self._wait(rank, self._flag_rs + step)
            self._reduce_into(rank, ((rank - step - 1) % n) * chunk,
                              staging + step * chunk, chunk)
        for step in range(n - 1):
            send = (rank + 1 - step) % n
            yield from self._put_flagged(
                rank, send * chunk, east, send * chunk,
                chunk, self._flag_ag + step)
            yield from self._wait(rank, self._flag_ag + step)

    def _allreduce_dual_workers(self, nbytes: int, chunk: int,
                                staging: int) -> Dict[int, object]:
        """Workers for the hierarchical dual-ring allreduce."""
        ring_a, ring_b = self.cluster.rings()
        half = len(ring_a)
        xslot = staging + (half - 1) * chunk

        def worker(ring: List[int], other: List[int], pos: int):
            node = ring[pos]
            partner = other[pos]
            east = ring_neighbor(ring, node, PortCode.E)
            # Phase 1: reduce-scatter inside this ring.
            for step in range(half - 1):
                send = (pos - step) % half
                yield from self._put_flagged(
                    node, send * chunk, east, staging + step * chunk,
                    chunk, self._flag_rs + step)
                yield from self._wait(node, self._flag_rs + step)
                self._reduce_into(node, ((pos - step - 1) % half) * chunk,
                                  staging + step * chunk, chunk)
            # Phase 2: both columns swap their owned chunk over S and
            # add — after this it is reduced over the whole cluster.
            owned = (pos + 1) % half
            yield from self._put_flagged(node, owned * chunk, partner,
                                         xslot, chunk, self._flag_x)
            yield from self._wait(node, self._flag_x)
            self._reduce_into(node, owned * chunk, xslot, chunk)
            # Phase 3: allgather inside this ring.
            for step in range(half - 1):
                send = (pos + 1 - step) % half
                yield from self._put_flagged(
                    node, send * chunk, east, send * chunk,
                    chunk, self._flag_ag + step)
                yield from self._wait(node, self._flag_ag + step)

        workers: Dict[int, object] = {}
        for pos in range(half):
            workers[ring_a[pos]] = worker(ring_a, ring_b, pos)
            workers[ring_b[pos]] = worker(ring_b, ring_a, pos)
        return workers

    def _torus_phases(self, nbytes: int):
        """Per-dimension (chunk, staging base, flag offset) of the torus
        allreduce: phase d splits the previous region by extent d."""
        geometry = self.cluster.geometry
        phases = []
        size, stage, flag_off = nbytes, _align(nbytes), 0
        for extent in geometry.extents:
            chunk = size // extent
            phases.append((chunk, stage, flag_off))
            stage += (extent - 1) * chunk
            flag_off += extent - 1
            size = chunk
        return phases

    def _torus_staging_bytes(self, nbytes: int) -> int:
        """Bytes of staging the torus phases need past ``_align(nbytes)``."""
        phases = self._torus_phases(nbytes)
        last_chunk, last_stage, _ = phases[-1]
        extent = self.cluster.geometry.extents[-1]
        return (last_stage + (extent - 1) * last_chunk) - _align(nbytes)

    def _allreduce_torus_workers(self, nbytes: int) -> Dict[int, object]:
        """Workers for the per-dimension torus allreduce.

        Reduce-scatter sweeps dimensions 0..D-1: each phase runs the
        flat RS schedule on the node's dimension-d ring over its current
        region, then keeps chunk (p_d + 1) mod n_d as the next region.
        Allgather sweeps back D-1..0 rebuilding each region in place.
        Every phase stages into its own slot range (disjoint across
        phases), so a fast ring can run ahead without overwriting data a
        slower neighbour has not consumed; each phase also gets its own
        flag-bank offset, so step flags never collide across phases.
        """
        geometry = self.cluster.geometry
        extents = geometry.extents
        phases = self._torus_phases(nbytes)

        def worker(node: int):
            coords = geometry.coords_of(node)
            bases: List[int] = []
            base = 0
            for dim, extent in enumerate(extents):
                chunk, stage, flag_off = phases[dim]
                pos = coords[dim]
                plus = geometry.neighbor(node, dim, 1)
                flag = self._flag_rs + flag_off
                bases.append(base)
                for step in range(extent - 1):
                    send = (pos - step) % extent
                    yield from self._put_flagged(
                        node, base + send * chunk, plus,
                        stage + step * chunk, chunk, flag + step)
                    yield from self._wait(node, flag + step)
                    self._reduce_into(
                        node, base + ((pos - step - 1) % extent) * chunk,
                        stage + step * chunk, chunk)
                base += ((pos + 1) % extent) * chunk
            for dim in reversed(range(len(extents))):
                chunk, _, flag_off = phases[dim]
                extent = extents[dim]
                pos = coords[dim]
                plus = geometry.neighbor(node, dim, 1)
                flag = self._flag_ag + flag_off
                base = bases[dim]
                for step in range(extent - 1):
                    send = (pos + 1 - step) % extent
                    yield from self._put_flagged(
                        node, base + send * chunk, plus,
                        base + send * chunk, chunk, flag + step)
                    yield from self._wait(node, flag + step)

        return {node: worker(node)
                for node in range(self.cluster.num_nodes)}

    # -- broadcast ----------------------------------------------------------------

    def broadcast(self, data: np.ndarray, root: int = 0,
                  hierarchical: Optional[bool] = None) -> List[np.ndarray]:
        """Bidirectional ring broadcast from ``root``.

        The root launches East and West puts *concurrently* (two DMA
        channels via the scheduler); each segment store-and-forwards, so
        delivery takes ceil((N-1)/2) hops instead of N-1.  On a
        DUAL_RING cluster the root first crosses to its S-port partner,
        then both rings broadcast in parallel — and the root's S, E and
        W puts are all in flight at once.
        """
        n = self.cluster.num_nodes
        if not 0 <= root < n:
            raise ConfigError(f"root {root} out of range")
        if hierarchical is None:
            hierarchical = self.cluster.topology == DUAL_RING
        if hierarchical and self.cluster.topology != DUAL_RING:
            raise ConfigError("hierarchical broadcast needs a DUAL_RING "
                              "sub-cluster")
        data = np.ascontiguousarray(data, dtype=np.uint8)
        nbytes = data.size
        if nbytes <= 0:
            raise ConfigError("broadcast payload must be non-empty")
        if nbytes > self.data_bytes:
            raise ConfigError("payload too large for the DMA buffers")
        self.cluster.driver(root).fill_dma_buffer(0, data)

        if hierarchical:
            workers = self._broadcast_dual_workers(nbytes, root)
        else:
            ring = self._flat_ring()
            workers = {node: self._bcast_ring_worker(ring, node, root,
                                                     nbytes)
                       for node in range(n)}
        self._run(workers, "broadcast")

        results = []
        for rank in range(n):
            got = self.cluster.driver(rank).read_dma_buffer(0, nbytes)
            if not np.array_equal(got, data):
                raise ConfigError(f"broadcast mismatch on rank {rank}")
            results.append(got)
        return results

    def _bcast_ring_worker(self, ring: List[int], node: int, root: int,
                           nbytes: int):
        """One node of a bidirectional in-ring broadcast.

        The East segment takes the extra node of an odd split, matching
        :func:`~repro.tca.topology.ring_direction`'s E tie-break.
        """
        size = len(ring)
        pos = ring.index(node)
        rpos = ring.index(root)
        east_depth = size // 2          # ceil((size-1)/2)
        west_depth = (size - 1) // 2
        de = (pos - rpos) % size
        dw = (rpos - pos) % size

        def forward(direction: PortCode):
            nxt = ring_neighbor(ring, node, direction)
            yield from self._put_flagged(node, 0, nxt, 0, nbytes,
                                         self._flag_bcast)

        if node == root:
            branches = []
            if east_depth:
                branches.append(self.engine.process(
                    forward(PortCode.E), name=f"bcast{node}.E"))
            if west_depth:
                branches.append(self.engine.process(
                    forward(PortCode.W), name=f"bcast{node}.W"))
            for branch in branches:
                yield branch
        elif 1 <= de <= east_depth:
            yield from self._wait(node, self._flag_bcast)
            if de < east_depth:
                yield from forward(PortCode.E)
        else:
            yield from self._wait(node, self._flag_bcast)
            if dw < west_depth:
                yield from forward(PortCode.W)

    def _broadcast_dual_workers(self, nbytes: int,
                                root: int) -> Dict[int, object]:
        ring_a, ring_b = self.cluster.rings()
        if root in ring_a:
            my_ring, other_ring = ring_a, ring_b
        else:
            my_ring, other_ring = ring_b, ring_a
        partner = other_ring[my_ring.index(root)]

        def root_worker():
            # Cross to the S partner while this ring's E/W puts run.
            def cross():
                yield from self._put_flagged(root, 0, partner, 0, nbytes,
                                             self._flag_x)
            branch = self.engine.process(cross(), name=f"bcast{root}.S")
            yield from self._bcast_ring_worker(my_ring, root, root, nbytes)
            yield branch

        def partner_worker():
            yield from self._wait(partner, self._flag_x)
            yield from self._bcast_ring_worker(other_ring, partner,
                                               partner, nbytes)

        workers: Dict[int, object] = {root: root_worker(),
                                      partner: partner_worker()}
        for node in range(self.cluster.num_nodes):
            if node in workers:
                continue
            ring = my_ring if node in my_ring else other_ring
            sub_root = root if node in my_ring else partner
            workers[node] = self._bcast_ring_worker(ring, node, sub_root,
                                                    nbytes)
        return workers

    # -- barrier ------------------------------------------------------------------

    def barrier(self) -> int:
        """Dissemination barrier: ceil(log2 N) rounds of flag stores.

        Round r: rank i signals rank (i + 2^r) mod N and waits to be
        signalled by (i - 2^r) mod N.  Pure PIO flag traffic — the
        degenerate collective where the payload *is* the flag.  Returns
        the elapsed picoseconds.
        """
        n = self.cluster.num_nodes
        rounds = (n - 1).bit_length()

        def worker(rank: int):
            for r in range(rounds):
                self.flags.signal(rank, (rank + (1 << r)) % n,
                                  self._flag_barrier + r)
                yield from self._wait(rank, self._flag_barrier + r)

        start = self.engine.now_ps
        self._run({rank: worker(rank) for rank in range(n)}, "barrier")
        return self.engine.now_ps - start


# -- one-shot helpers (build a context, run one self-checking collective) ---------

def ring_allgather(cluster: TCASubCluster, block_bytes: int = 1024,
                   seed: int = 7) -> List[np.ndarray]:
    """Seeded one-shot allgather; returns each node's gathered buffer."""
    rng = np.random.default_rng(seed)
    blocks = [rng.integers(0, 256, block_bytes, dtype=np.uint8)
              for _ in range(cluster.num_nodes)]
    return TCACollectives(cluster).allgather(blocks)


def ring_reduce_scatter(cluster: TCASubCluster, nbytes: int = 4096,
                        seed: int = 7) -> List[np.ndarray]:
    """Seeded one-shot reduce-scatter; returns each rank's owned chunk."""
    rng = np.random.default_rng(seed)
    words = nbytes // 4
    vectors = [rng.integers(0, 1 << 32, words, dtype=np.uint32)
               for _ in range(cluster.num_nodes)]
    return TCACollectives(cluster).reduce_scatter(vectors)


def ring_allreduce(cluster: TCASubCluster, nbytes: int = 4096,
                   seed: int = 7,
                   hierarchical: Optional[bool] = None,
                   torus: Optional[bool] = None) -> List[np.ndarray]:
    """Seeded one-shot allreduce; returns each node's reduced vector."""
    rng = np.random.default_rng(seed)
    words = nbytes // 4
    vectors = [rng.integers(0, 1 << 32, words, dtype=np.uint32)
               for _ in range(cluster.num_nodes)]
    return TCACollectives(cluster).allreduce(vectors,
                                             hierarchical=hierarchical,
                                             torus=torus)


def ring_broadcast(cluster: TCASubCluster, nbytes: int = 4096,
                   root: int = 0, seed: int = 7,
                   hierarchical: Optional[bool] = None) -> List[np.ndarray]:
    """Seeded one-shot broadcast; returns each node's received buffer."""
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, nbytes, dtype=np.uint8)
    return TCACollectives(cluster).broadcast(data, root=root,
                                             hierarchical=hierarchical)


def ring_barrier(cluster: TCASubCluster) -> int:
    """One-shot dissemination barrier; returns the elapsed picoseconds."""
    return TCACollectives(cluster).barrier()
