"""Multi-channel DMA chain scheduling for one node.

PEACH2 carries four independent DMA channels (§III-F2); the paper's own
microbenchmarks drive one at a time, but a collective wants several
chains in flight per node — e.g. a bidirectional broadcast puts East and
West simultaneously, and a dual-ring collective adds an S-port exchange
on top.  :class:`ChannelScheduler` owns a node's channels and hands each
submitted descriptor chain to the first idle one, queueing (FIFO) when
all are busy.

Ordering caveat, per §III-H: chains on *different* channels are not
ordered against each other, and a DMA chain is not ordered against CPU
PIO stores issued while it runs.  A completion flag is therefore only
sound if it is stored *after* the payload chain's completion interrupt —
which is exactly what :class:`~repro.collectives.ring.TCACollectives`
does — because from that point the flag store follows the payload on the
same source-routed path and posted-write ordering holds.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.peach2.descriptor import DMADescriptor
from repro.sim.core import Signal
from repro.tca.subcluster import TCASubCluster


class ChannelScheduler:
    """FIFO arbitration of one node's DMA channels for chained puts.

    :meth:`submit` never blocks the caller: it returns a signal that
    fires (with the chain's doorbell-to-IRQ picoseconds) when the chain
    completes, launching immediately if a channel is idle and queueing
    otherwise.  Idle channels are handed out FIFO (round-robin over
    time); since the channels are identical engines this never changes
    timing, and a node with one outstanding chain at a time behaves
    exactly like the classic single-channel code path.
    """

    def __init__(self, cluster: TCASubCluster, node_id: int,
                 channels: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.node_id = node_id
        self.driver = cluster.driver(node_id)
        self.chip = cluster.board(node_id).chip
        self.engine = cluster.engine
        num = self.chip.dma.num_channels
        if channels is None:
            channels = range(num)
        channels = list(channels)
        if not channels:
            raise ConfigError("a scheduler needs at least one DMA channel")
        if len(set(channels)) != len(channels):
            raise ConfigError("duplicate DMA channels")
        for ch in channels:
            if not 0 <= ch < num:
                raise ConfigError(f"channel {ch} out of range (chip has "
                                  f"{num})")
        self.channels = channels
        self._free: Deque[int] = deque(sorted(channels))
        self._queue: Deque[Tuple[List[DMADescriptor], Signal]] = deque()
        self._idle_waiters: List[Signal] = []
        # Statistics the tests and metrics read.
        self.submitted = 0
        self.completed = 0
        self.inflight = 0
        self.max_inflight = 0
        self.queued_high_water = 0

    # -- submission ----------------------------------------------------------------

    def submit(self, descriptors: Sequence[DMADescriptor]) -> Signal:
        """Submit one chain; returns a signal firing with its elapsed ps."""
        if not descriptors:
            raise ConfigError("empty descriptor chain")
        done = self.engine.signal(
            f"node{self.node_id}.sched.{self.submitted}")
        self.submitted += 1
        if self._free:
            self._launch(self._free.popleft(), list(descriptors), done)
        else:
            self._queue.append((list(descriptors), done))
            self.queued_high_water = max(self.queued_high_water,
                                         len(self._queue))
        return done

    def _launch(self, channel: int, descriptors: List[DMADescriptor],
                done: Signal) -> None:
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        start_tsc = self.driver.node.cpu.read_tsc()
        if self.engine.tracer is not None:
            self.engine.trace(f"node{self.node_id}.sched", "chain-launch",
                              channel=channel, descriptors=len(descriptors))
        irq = self.driver.submit_chain(channel, descriptors)
        irq.add_callback(
            lambda end_tsc: self._complete(channel, done,
                                           end_tsc - start_tsc))

    def _complete(self, channel: int, done: Signal, elapsed_ps: int) -> None:
        self.inflight -= 1
        self.completed += 1
        if self._queue:
            descriptors, waiter = self._queue.popleft()
            self._launch(channel, descriptors, waiter)
        else:
            self._free.append(channel)
        done.fire(elapsed_ps)
        if self.inflight == 0 and not self._queue and self._idle_waiters:
            waiters, self._idle_waiters = self._idle_waiters, []
            for signal in waiters:
                signal.fire(self.completed)

    # -- synchronization -----------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is in flight or queued."""
        return self.inflight == 0 and not self._queue

    def drain(self):
        """Process: wait until every submitted chain has completed."""
        while not self.idle:
            signal = self.engine.signal(f"node{self.node_id}.sched.idle")
            self._idle_waiters.append(signal)
            yield signal

    def chains_per_channel(self) -> dict:
        """Chip-level chain counts for this scheduler's channels."""
        counts = self.chip.dma.chains_per_channel
        return {ch: counts[ch] for ch in self.channels}
