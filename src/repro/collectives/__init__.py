"""TCA-native collectives over a sub-cluster (§I, §III-H, §V).

The paper's motivating claim is that once remote GPU/host memory is just
addresses in the extended PCIe space, sub-cluster collectives stop being
an MPI software-stack problem: a collective is a schedule of RDMA puts
plus flag stores whose ordering PCIe itself guarantees.  This package is
that claim made executable:

* :class:`ChannelScheduler` — per-node arbitration of PEACH2's DMA
  channels: chained-DMA puts are submitted asynchronously and overlap
  across channels (and, on a :data:`~repro.tca.subcluster.DUAL_RING`
  sub-cluster, across both rings);
* :class:`TCACollectives` — ring **allgather**, **reduce-scatter**,
  **allreduce**, **broadcast** and **barrier**, with hierarchical
  variants that exploit the S-coupled dual-ring topology (§III-D);
* module-level one-shot helpers (:func:`ring_allreduce`,
  :func:`ring_reduce_scatter`, :func:`ring_broadcast`,
  :func:`ring_barrier`, :func:`ring_allgather`) that build a context,
  run one self-checking collective, and return the verified buffers.

``repro.apps.allgather`` is a thin wrapper over this layer; the E20/E21
experiments (``tca-bench collective-allreduce`` /
``collective-dual-ring``) race it against the MPI baselines in
:mod:`repro.baselines.collectives`.  See ``docs/collectives.md``.
"""

from repro.collectives.channels import ChannelScheduler
from repro.collectives.ring import (TCACollectives, ring_allgather,
                                    ring_allreduce, ring_barrier,
                                    ring_broadcast, ring_reduce_scatter)

__all__ = [
    "ChannelScheduler",
    "TCACollectives",
    "ring_allgather",
    "ring_allreduce",
    "ring_barrier",
    "ring_broadcast",
    "ring_reduce_scatter",
]
