"""The serving layer: an asyncio HTTP front-end over the job service.

The paper's whole argument is about shaving protocol layers off the
request path; this package applies the same discipline to serving the
reproduction's own results.  A request for a result whose content key
is already in the hardened cache is answered from memory in
microseconds — no experiment, no worker, no fork.  A cold request is
queued, deduplicated by the same content fingerprint the cache uses
(so a thousand identical requests cost one computation), and executed
by the existing supervised machinery from :mod:`repro.bench.jobs`.

Everything here is stdlib-only: ``asyncio`` for the event loop and
socket plumbing, hand-rolled HTTP/1.1 framing, and the repo's own
:mod:`repro.obs` metrics for telemetry.  See ``docs/serving.md`` for
the API reference and deployment story.
"""

from repro.serve.bridge import ServeBridge
from repro.serve.server import JobServer, serve_main

__all__ = ["ServeBridge", "JobServer", "serve_main"]
