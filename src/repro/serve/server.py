"""The asyncio HTTP/1.1 job server: ``tca-bench serve``.

Stdlib-only by design — tier-1 stays hermetic.  The server speaks just
enough HTTP/1.1 for real clients (curl, ``urllib``, any load
generator): request-line + headers, ``Content-Length`` bodies,
keep-alive, and close-delimited SSE streams.

Endpoints (full reference in ``docs/serving.md``)::

    GET  /healthz                  liveness + drain state + job counts
    GET  /metrics                  the serve RunLog registry, text format
    POST /v1/jobs                  submit {entry, mode, seed, wait, timeout_s}
    GET  /v1/jobs                  every known job, submission order
    GET  /v1/jobs/{id}             one job's state-machine snapshot
    GET  /v1/jobs/{id}/result      the payload text, byte-verbatim
    GET  /v1/jobs/{id}/events      SSE progress stream (?since=SEQ)
    GET  /v1/results/{fingerprint} result by content key (memory, then cache)

Dedup and byte-identity are not server features — they fall out of the
substrate.  A job id *is* the cache fingerprint, so identical submits
collapse in :meth:`JobService.submit` and every result response is the
canonical payload text served verbatim.

Shutdown: SIGTERM (or SIGINT) flips the server into *draining* — new
submits get 503, reads stay live, in-flight jobs finish and journal —
then the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.bench.jobs import (DONE, FAILED, Journal, JobService,
                              new_run_id)
from repro.errors import ConfigError
from repro.obs.runlog import RunLog
from repro.serve.bridge import ServeBridge

SERVER_NAME = "tca-bench-serve/1"
DEFAULT_PORT = 8023
#: A job id is a cache fingerprint: 64 hex chars.
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")
_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                409: "Conflict", 413: "Payload Too Large",
                500: "Internal Server Error",
                503: "Service Unavailable"}


class HttpError(Exception):
    """Raise inside a handler to short-circuit into an error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class JobServer:
    """One serving process: asyncio acceptor + ServeBridge executor."""

    def __init__(self, service: JobService, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT,
                 runlog: Optional[RunLog] = None,
                 run_id: Optional[str] = None):
        self.service = service
        self.host = host
        self.port = port
        self.runlog = runlog or RunLog(label="serve")
        self.run_id = run_id or new_run_id("serve", service.seed)
        self.bridge = ServeBridge(service, runlog=self.runlog)
        self._server: Optional[asyncio.base_events.Server] = None
        self._requests = self.runlog.metrics.counter("serve.http.requests")
        self._h_request_us = self.runlog.metrics.histogram(
            "serve.request_us")

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.bridge.start(loop)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        print(f"serving on http://{self.host}:{self.port} "
              f"run={self.run_id} workers={self.service.workers}",
              file=sys.stderr, flush=True)

    async def drain_and_stop(self) -> None:
        """The SIGTERM path: refuse new work, finish what's in flight."""
        self.bridge.draining = True
        print(f"draining run={self.run_id} "
              f"outstanding={self.service.counts()}",
              file=sys.stderr, flush=True)
        await self.bridge.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.bridge.stop()
        print(f"drained run={self.run_id}", file=sys.stderr, flush=True)

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while parked on a keep-alive read: tear the
            # connection down quietly instead of logging a cancelled task.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Dict[str, Any]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise
            return None  # clean EOF between requests
        if len(head) > _MAX_HEADER_BYTES:
            raise HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise HttpError(400, f"malformed request line {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise HttpError(413, "body too large")
        if length:
            body = await reader.readexactly(length)
        parts = urlsplit(target)
        return {"method": method.upper(), "path": parts.path,
                "query": {k: v[-1] for k, v in
                          parse_qs(parts.query).items()},
                "headers": headers, "body": body}

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, request: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        self._requests.inc()
        t0 = self.runlog.now_ps()
        method, path = request["method"], request["path"]
        try:
            if path == "/healthz" and method == "GET":
                status, doc = self._route_healthz()
            elif path == "/metrics" and method == "GET":
                return await self._send(
                    writer, 200, self.runlog.metrics.render_text(
                        self.runlog.now_ps()).encode(),
                    content_type="text/plain; charset=utf-8",
                    keep_alive=self._keep(request), t0=t0)
            elif path == "/v1/jobs" and method == "POST":
                status, doc = await self._route_submit(request)
            elif path == "/v1/jobs" and method == "GET":
                status, doc = 200, {"jobs": self.service.jobs()}
            elif path in ("/v1/jobs", "/healthz", "/metrics"):
                raise HttpError(405, f"no route for {method} {path}")
            else:
                match = re.match(
                    r"^/v1/jobs/([0-9a-f]{64})(/result|/events)?$", path)
                result_match = re.match(r"^/v1/results/([0-9a-f]{64})$",
                                        path)
                if (match or result_match) and method != "GET":
                    raise HttpError(405, f"no route for {method} {path}")
                if match and method == "GET":
                    key, tail = match.group(1), match.group(2)
                    if tail == "/result":
                        return await self._route_result(
                            key, writer, keep_alive=self._keep(request),
                            t0=t0)
                    if tail == "/events":
                        await self._route_events(key, request, writer)
                        return False  # SSE is close-delimited
                    status, doc = self._route_status(key)
                elif result_match and method == "GET":
                    return await self._route_fingerprint(
                        result_match.group(1), writer,
                        keep_alive=self._keep(request), t0=t0)
                else:
                    raise HttpError(404, f"no route for {method} {path}")
        except HttpError as exc:
            status, doc = exc.status, {"error": exc.message}
        except ConfigError as exc:
            status, doc = 400, {"error": str(exc)}
        body = (json.dumps(doc, sort_keys=True) + "\n").encode()
        return await self._send(writer, status, body,
                                keep_alive=self._keep(request), t0=t0)

    @staticmethod
    def _keep(request: Dict[str, Any]) -> bool:
        return request["headers"].get("connection", "").lower() != "close"

    # -- routes ----------------------------------------------------------

    def _route_healthz(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {
            "status": "draining" if self.bridge.draining else "ok",
            "run": self.run_id,
            "workers": self.service.workers,
            "jobs": self.service.counts(),
        }

    async def _route_submit(self, request: Dict[str, Any]
                            ) -> Tuple[int, Dict[str, Any]]:
        if self.bridge.draining:
            raise HttpError(503, "server is draining; submit refused")
        try:
            doc = json.loads(request["body"].decode() or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not JSON: {exc}")
        if not isinstance(doc, dict) or "entry" not in doc:
            raise HttpError(400, 'body must be {"entry": ..., ...}')
        entry = doc["entry"]
        mode = doc.get("mode", "full")
        seed = doc.get("seed")
        wait = bool(doc.get("wait", False))
        timeout_s = float(doc.get("timeout_s", 60.0))
        if seed is not None and not isinstance(seed, int):
            raise HttpError(400, "seed must be an integer or null")
        ticket = self.bridge.submit(entry, mode=mode, seed=seed)
        key = ticket["key"]
        if wait:
            await self.bridge.wait_done(key, timeout_s=timeout_s)
        job = self.service.get_job(key)
        status = 200 if job.state == DONE else 202
        return status, {
            "job": job.to_dict(),
            "fingerprint": key,
            "deduped": not ticket["created"],
            "cache_hit": ticket["cache_hit"],
            "links": {
                "status": f"/v1/jobs/{key}",
                "result": f"/v1/jobs/{key}/result",
                "events": f"/v1/jobs/{key}/events",
            },
        }

    def _route_status(self, key: str) -> Tuple[int, Dict[str, Any]]:
        if key not in self.service:
            raise HttpError(404, f"unknown job {key[:12]}")
        return 200, {"job": self.service.status(key),
                     "events": len(self.bridge.events(key))}

    async def _route_result(self, key: str, writer: asyncio.StreamWriter,
                            keep_alive: bool, t0: int) -> bool:
        if key not in self.service:
            raise HttpError(404, f"unknown job {key[:12]}")
        job = self.service.get_job(key)
        if job.state == FAILED:
            raise HttpError(500, f"job failed: {job.error}")
        if job.state != DONE:
            raise HttpError(409, f"job is {job.state}, result not ready")
        # Byte-identity contract: the canonical payload text, verbatim.
        payload = self.service.result_text(key).encode()
        return await self._send(writer, 200, payload,
                                keep_alive=keep_alive, t0=t0)

    async def _route_fingerprint(self, key: str,
                                 writer: asyncio.StreamWriter,
                                 keep_alive: bool, t0: int) -> bool:
        if key in self.service:
            job = self.service.get_job(key)
            if job.state == DONE:
                return await self._send(
                    writer, 200, self.service.result_text(key).encode(),
                    keep_alive=keep_alive, t0=t0)
        if self.service.cache is not None:
            hit = self.service.cache.get(key)
            if hit is not None:
                return await self._send(writer, 200, hit.encode(),
                                        keep_alive=keep_alive, t0=t0)
        raise HttpError(404, f"no result for fingerprint {key[:12]}")

    async def _route_events(self, key: str, request: Dict[str, Any],
                            writer: asyncio.StreamWriter) -> None:
        """SSE progress stream, fed from the job's bridge event log."""
        if key not in self.service:
            raise HttpError(404, f"unknown job {key[:12]}")
        try:
            since = int(request["query"].get("since", "0"))
        except ValueError:
            raise HttpError(400, "since must be an integer sequence")
        timeout_s = float(request["query"].get("timeout_s", "60"))
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: text/event-stream\r\n"
                     b"Cache-Control: no-cache\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                break
            fresh = await self.bridge.wait_event(key, since,
                                                 timeout_s=remaining)
            for event in fresh:
                since = event["seq"]
                data = json.dumps(event, sort_keys=True)
                writer.write(f"id: {event['seq']}\r\n"
                             f"event: {event['t']}\r\n"
                             f"data: {data}\r\n\r\n".encode())
            await writer.drain()
            if self.service.get_job(key).finished and not fresh:
                break
        job = self.service.get_job(key)
        final = json.dumps({"state": job.state, "key": key},
                           sort_keys=True)
        writer.write(f"event: end\r\ndata: {final}\r\n\r\n".encode())
        await writer.drain()

    # -- response plumbing -----------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    body: bytes,
                    content_type: str = "application/json",
                    keep_alive: bool = True, t0: int = 0) -> bool:
        reason = _STATUS_TEXT.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Server: {SERVER_NAME}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode() + body)
        await writer.drain()
        self._h_request_us.observe((self.runlog.now_ps() - t0) / 1e6)
        return keep_alive


# -- the CLI entry point --------------------------------------------------------------


def build_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 workers: int = 1, seed: int = 0,
                 cache_dir: Optional[str] = None,
                 journal_dir: Optional[str] = None) -> JobServer:
    """Assemble the service stack exactly as ``tca-bench serve`` does."""
    from repro.bench.cache import ResultCache

    cache = ResultCache(Path(cache_dir) if cache_dir else None)
    run_id = new_run_id("serve", seed)
    journal = None
    if journal_dir:
        jdir = Path(journal_dir)
        jdir.mkdir(parents=True, exist_ok=True)
        journal = Journal(Journal.path_for(jdir, run_id))
        journal.record("run", run_id=run_id, mode="serve", seed=seed,
                       entries=[], keys=[])
    service = JobService(cache=cache, workers=workers, seed=seed,
                         journal=journal)
    return JobServer(service, host=host, port=port, run_id=run_id)


async def _serve_until_signalled(server: JobServer) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await server.start()
    await stop.wait()
    await server.drain_and_stop()
    if server.service.journal is not None:
        server.service.journal.record("end", run_id=server.run_id)
        server.service.journal.close()


def serve_main(args) -> int:
    """``tca-bench serve``: run the job server until SIGTERM/SIGINT."""
    from repro.bench.suite import DEFAULT_JOURNAL_DIR

    journal_dir = (None if args.no_journal
                   else args.journal_dir or DEFAULT_JOURNAL_DIR)
    server = build_server(host=args.host, port=args.port,
                          workers=args.serve_workers, seed=args.seed,
                          cache_dir=args.cache_dir,
                          journal_dir=journal_dir)
    asyncio.run(_serve_until_signalled(server))
    return 0
