"""The serve load-test harness: ``tca-bench serve-bench``.

Proves the two latency claims the serving layer exists for, the same
way the paper proves its own (§IV: measure the request path, not the
components):

1. **Cold coalescing** — K concurrent identical cold submits trigger
   exactly *one* underlying computation (the content fingerprint is
   the dedup key), and all K clients receive byte-identical payloads.

2. **Warm latency** — once a result is cached, thousands of concurrent
   requests are answered from memory; client-observed p50 is orders of
   magnitude below the cold compute wall time.

The harness is self-contained: it stands up a real :class:`JobServer`
on an ephemeral port inside one asyncio loop, then runs an async HTTP
client fleet against it over keep-alive connections, so every number
includes genuine socket + HTTP framing cost.  Output is a
``tca-bench-serve-bench/1`` JSON document; ``--assert-speedup N``
turns the warm/cold ratio into an exit code for CI.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.server import JobServer, build_server

SCHEMA = "tca-bench-serve-bench/1"
DEFAULT_ENTRY = "fig9"
DEFAULT_MODE = "smoke"
DEFAULT_REQUESTS = 2000
DEFAULT_CONCURRENCY = 32
DEFAULT_COALESCE = 16


class _Client:
    """One keep-alive HTTP/1.1 connection to the server under test."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def request(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None
                      ) -> Tuple[int, bytes]:
        """One request/response on the persistent connection."""
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Content-Type: application/json\r\n\r\n")
        self.writer.write(head.encode() + payload)
        await self.writer.drain()
        status_line = await self.reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self.reader.readexactly(length) if length else b""
        return status, data


async def _coalesce_phase(server: JobServer, entry: str, mode: str,
                          k: int, timeout_s: float
                          ) -> Dict[str, Any]:
    """K concurrent identical cold submits -> 1 computation."""
    async def one() -> Tuple[int, bytes, bytes]:
        client = _Client(server.host, server.port)
        await client.connect()
        try:
            status, body = await client.request(
                "POST", "/v1/jobs",
                {"entry": entry, "mode": mode, "wait": True,
                 "timeout_s": timeout_s})
            doc = json.loads(body)
            key = doc["fingerprint"]
            _, result = await client.request(
                "GET", f"/v1/jobs/{key}/result")
            return status, result, key.encode()
        finally:
            await client.close()

    t0 = time.perf_counter()
    outcomes = await asyncio.gather(*[one() for _ in range(k)])
    wall_s = time.perf_counter() - t0
    payloads = {body for _, body, _ in outcomes}
    keys = {key for _, _, key in outcomes}
    computed = server.runlog.metrics.counter("serve.jobs.computed").value
    return {
        "submits": k,
        "statuses": sorted({s for s, _, _ in outcomes}),
        "computations": computed,
        "distinct_payloads": len(payloads),
        "distinct_fingerprints": len(keys),
        "identical": len(payloads) == 1 and len(keys) == 1,
        "wall_s": round(wall_s, 3),
        "payload_bytes": len(next(iter(payloads))),
        "fingerprint": next(iter(keys)).decode(),
    }


async def _warm_phase(server: JobServer, entry: str, mode: str,
                      requests: int, concurrency: int,
                      kind: str = "submit", key: str = ""
                      ) -> Dict[str, Any]:
    """Hammer the now-warm fingerprint from a keep-alive fleet.

    ``kind="submit"`` measures the full submit path (dedup against the
    in-memory job table); ``kind="result"`` measures result-by-
    fingerprint lookup, the payload served byte-verbatim.
    """
    latencies_us: List[float] = []
    per_worker = max(1, requests // concurrency)

    async def worker(i: int) -> None:
        client = _Client(server.host, server.port)
        await client.connect()
        try:
            for _ in range(per_worker):
                t0 = time.perf_counter_ns()
                if kind == "submit":
                    status, body = await client.request(
                        "POST", "/v1/jobs",
                        {"entry": entry, "mode": mode, "wait": True})
                else:
                    status, body = await client.request(
                        "GET", f"/v1/results/{key}")
                latencies_us.append(
                    (time.perf_counter_ns() - t0) / 1e3)
                assert status == 200, (status, body[:200])
        finally:
            await client.close()

    t0 = time.perf_counter()
    await asyncio.gather(*[worker(i) for i in range(concurrency)])
    wall_s = time.perf_counter() - t0
    latencies_us.sort()

    def pct(p: float) -> float:
        idx = min(len(latencies_us) - 1,
                  int(p / 100.0 * len(latencies_us)))
        return latencies_us[idx]

    return {
        "kind": kind,
        "requests": len(latencies_us),
        "concurrency": concurrency,
        "wall_s": round(wall_s, 3),
        "rps": round(len(latencies_us) / wall_s, 1),
        "p50_us": round(pct(50), 1),
        "p90_us": round(pct(90), 1),
        "p99_us": round(pct(99), 1),
        "mean_us": round(statistics.fmean(latencies_us), 1),
    }


async def _run_bench(entry: str, mode: str, requests: int,
                     concurrency: int, coalesce: int,
                     serve_workers: int, seed: int,
                     cache_dir: Optional[str],
                     timeout_s: float = 300.0,
                     log=lambda msg: print(msg, file=sys.stderr)
                     ) -> Dict[str, Any]:
    server = build_server(host="127.0.0.1", port=0,
                          workers=serve_workers, seed=seed,
                          cache_dir=cache_dir, journal_dir=None)
    await server.start()
    try:
        log(f"serve-bench: cold phase — {coalesce} concurrent "
            f"identical submits of {entry}/{mode}")
        coalesce_doc = await _coalesce_phase(server, entry, mode,
                                             coalesce, timeout_s)
        compute_ms = server.runlog.metrics.histogram(
            "serve.compute_ms").summary()
        cold_ms = compute_ms["mean"] if compute_ms["count"] else None
        log(f"serve-bench: cold compute {cold_ms:.1f} ms, "
            f"{coalesce_doc['computations']} computation(s) for "
            f"{coalesce} submits")
        log(f"serve-bench: warm phase — {requests} submits + "
            f"{requests} result lookups over {concurrency} "
            f"keep-alive connections")
        warm_doc = await _warm_phase(server, entry, mode, requests,
                                     concurrency, kind="submit")
        warm_result = await _warm_phase(
            server, entry, mode, requests, concurrency,
            kind="result", key=coalesce_doc["fingerprint"])
        log(f"serve-bench: warm submit p50 {warm_doc['p50_us']:.0f} us"
            f" / result p50 {warm_result['p50_us']:.0f} us, "
            f"{warm_doc['rps']:.0f} req/s")
        speedup = None
        if cold_ms and warm_doc["p50_us"]:
            speedup = round(cold_ms * 1e3 / warm_doc["p50_us"], 1)
        server.bridge.draining = True
        await server.bridge.drain()
        return {
            "schema": SCHEMA,
            "entry": entry,
            "mode": mode,
            "serve_workers": serve_workers,
            "cold": {"compute_ms": (round(cold_ms, 1)
                                    if cold_ms else None),
                     "computations": coalesce_doc["computations"]},
            "coalesce": coalesce_doc,
            "warm": warm_doc,
            "warm_result": warm_result,
            "speedup_cold_over_warm_p50": speedup,
            "metrics": server.runlog.metrics.to_dict(
                server.runlog.now_ps()),
        }
    finally:
        if server._server is not None:
            server._server.close()
            await server._server.wait_closed()
        server.bridge.stop()


def run_loadtest(entry: str = DEFAULT_ENTRY, mode: str = DEFAULT_MODE,
                 requests: int = DEFAULT_REQUESTS,
                 concurrency: int = DEFAULT_CONCURRENCY,
                 coalesce: int = DEFAULT_COALESCE,
                 serve_workers: int = 1, seed: int = 0,
                 cache_dir: Optional[str] = None,
                 log=lambda msg: print(msg, file=sys.stderr)
                 ) -> Dict[str, Any]:
    """Run the full bench; a fresh temp cache keeps the cold phase cold."""
    if cache_dir is None:
        with tempfile.TemporaryDirectory(prefix="tca-serve-bench-"
                                         ) as tmp:
            return asyncio.run(_run_bench(
                entry, mode, requests, concurrency, coalesce,
                serve_workers, seed, tmp, log=log))
    return asyncio.run(_run_bench(
        entry, mode, requests, concurrency, coalesce, serve_workers,
        seed, cache_dir, log=log))


def loadtest_main(args) -> int:
    """``tca-bench serve-bench``: run the harness, print the document."""
    doc = run_loadtest(entry=args.entry, mode=args.serve_bench_mode,
                       requests=args.requests,
                       concurrency=args.concurrency,
                       coalesce=args.coalesce,
                       serve_workers=args.serve_workers,
                       seed=args.seed, cache_dir=args.cache_dir)
    if args.bench_json:
        from repro.bench.ioutil import atomic_write_json

        atomic_write_json(args.bench_json, doc)
        print(f"serve-bench -> {args.bench_json}", file=sys.stderr)
    json.dump(doc, sys.stdout, indent=2)
    print()
    rc = 0
    if not doc["coalesce"]["identical"]:
        print("FAIL: concurrent submits returned divergent payloads",
              file=sys.stderr)
        rc = 1
    if doc["coalesce"]["computations"] != 1:
        print(f"FAIL: {doc['coalesce']['computations']} computations "
              f"for {doc['coalesce']['submits']} identical submits",
              file=sys.stderr)
        rc = 1
    if args.assert_speedup is not None:
        speedup = doc["speedup_cold_over_warm_p50"] or 0
        if speedup < args.assert_speedup:
            print(f"FAIL: warm speedup {speedup}x < required "
                  f"{args.assert_speedup}x", file=sys.stderr)
            rc = 1
        else:
            print(f"OK: warm speedup {speedup}x >= "
                  f"{args.assert_speedup}x", file=sys.stderr)
    return rc
