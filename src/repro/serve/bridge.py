"""The async/sync bridge between the HTTP server and the job machinery.

:class:`ServeBridge` owns the boundary between two worlds:

* the **asyncio event-loop thread**, where every HTTP request is
  parsed and answered.  Handlers call :meth:`submit` (thread-safe by
  the :class:`~repro.bench.jobs.JobService` contract) and park on
  :meth:`wait_done` / :meth:`wait_event` without blocking the loop;

* a single **executor thread**, which pulls cold job keys off a queue
  and drives them through the existing supervised machinery —
  :func:`~repro.bench.jobs.run_job_inline` for ``workers=1``, the
  fork-worker :class:`~repro.bench.jobs.JobScheduler` for more.

The two meet only through thread-safe primitives: the service's own
lock, a ``queue.SimpleQueue`` of cold keys, and
``loop.call_soon_threadsafe`` wakeups.  Results never cross the
boundary as mutable state — the executor finishes a job, pushes its
payload into the result cache, and *then* wakes the waiters, which
re-read the job through the service.

Every interesting instant is counted on a :class:`repro.obs.runlog.RunLog`
registry (queue depth, cache-hit latency, worker saturation, compute
wall time), so ``GET /metrics`` is a window into exactly the same
telemetry the suite runner exports.
"""

from __future__ import annotations

import asyncio
import queue
import threading
from typing import Any, Dict, List, Optional

from repro.bench.jobs import (DONE, FAILED, Job, JobScheduler, JobService,
                              run_job_inline, _registry_runner)
from repro.obs.runlog import RunLog

#: Executor shutdown sentinel (queue items are otherwise job keys).
_STOP = object()

#: Safety cap on a single event-chain wait; a missed wakeup costs at
#: most this much added latency instead of a hang.
_WAIT_SLICE_S = 0.5


class ServeBridge:
    """Bridge a :class:`JobService` into an asyncio event loop."""

    def __init__(self, service: JobService,
                 runlog: Optional[RunLog] = None,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        self.service = service
        self.runlog = runlog or RunLog(label="serve")
        self._loop = loop
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: keys this bridge has ever accepted (created, not deduped)
        self._seen: set = set()
        #: per-key progress events for the SSE stream, oldest first
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        #: per-key single-use wakeup events (event-chain pattern)
        self._wakeups: Dict[str, asyncio.Event] = {}
        #: cold keys enqueued but not yet finished
        self._outstanding = 0
        #: keys whose completion has been accounted (idempotence guard)
        self._accounted: set = set()
        self._drain_event: Optional[asyncio.Event] = None
        self.draining = False

        m = self.runlog.metrics
        self._c_cache_hit = m.counter("serve.submit.cache_hit")
        self._c_cold = m.counter("serve.submit.cold")
        self._c_deduped = m.counter("serve.submit.deduped")
        self._c_computed = m.counter("serve.jobs.computed")
        self._c_failed = m.counter("serve.jobs.failed")
        self._h_hit_us = m.histogram("serve.cache.hit_us")
        self._h_compute_ms = m.histogram("serve.compute_ms")
        self._g_depth = m.gauge("serve.queue.depth")
        self._g_busy = m.gauge("serve.workers.busy")
        self._g_depth.set(0)
        self._g_busy.set(0)

    # -- lifecycle -------------------------------------------------------

    def start(self, loop: Optional[asyncio.AbstractEventLoop] = None
              ) -> None:
        """Bind the loop and start the executor thread."""
        if loop is not None:
            self._loop = loop
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        self._drain_event = asyncio.Event()
        self._thread = threading.Thread(target=self._executor_loop,
                                        name="serve-executor",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the executor thread (after any in-flight job)."""
        if self._thread is not None:
            self._queue.put(_STOP)
            self._thread.join()
            self._thread = None

    async def drain(self) -> None:
        """Wait until every accepted cold job has finished.

        The caller is expected to have stopped accepting new submits
        first (:attr:`draining`); status/result/metrics reads stay
        live throughout.
        """
        self.draining = True
        while True:
            with self._lock:
                if self._outstanding == 0:
                    return
            self._drain_event.clear()
            try:
                await asyncio.wait_for(self._drain_event.wait(),
                                       _WAIT_SLICE_S)
            except asyncio.TimeoutError:
                pass

    # -- submission (event-loop thread) ----------------------------------

    def submit(self, entry: str, mode: str = "full",
               seed: Optional[int] = None) -> Dict[str, Any]:
        """Submit one experiment; never blocks on computation.

        Returns a small routing record: the job's content key plus how
        the submit resolved — ``cache_hit`` (DONE instantly from the
        result cache), ``deduped`` (attached to an existing job for the
        same fingerprint), or cold (queued for the executor).
        """
        t0 = self.runlog.now_ps()
        key = self.service.submit(entry, mode=mode, seed=seed)
        job = self.service.get_job(key)
        with self._lock:
            created = key not in self._seen
            if created:
                self._seen.add(key)
        if not created:
            self._c_deduped.inc()
            return {"key": key, "created": False,
                    "cache_hit": False, "state": job.state}
        self._record_event(key, "submit", name=entry, mode=mode,
                           seed=job.seed, state=job.state)
        if job.state == DONE:
            # Cache hit: the service loaded the payload inline; the
            # whole request path never left this thread.
            self._c_cache_hit.inc()
            self._h_hit_us.observe(
                (self.runlog.now_ps() - t0) / 1e6)  # ps -> us
            self._record_event(key, "job", name=entry, state=DONE,
                               cache="hit")
            return {"key": key, "created": True,
                    "cache_hit": True, "state": DONE}
        self._c_cold.inc()
        with self._lock:
            self._outstanding += 1
            self._g_depth.set(self._outstanding)
        self._queue.put(key)
        return {"key": key, "created": True,
                "cache_hit": False, "state": job.state}

    # -- waiting (event-loop thread) -------------------------------------

    async def wait_done(self, key: str,
                        timeout_s: float = 60.0) -> Job:
        """Wait until the job is finished (or the timeout passes).

        Returns the job either way; callers check ``job.finished``.
        """
        deadline = self._loop.time() + timeout_s
        while True:
            job = self.service.get_job(key)
            if job.finished:
                return job
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                return job
            await self._await_wakeup(key, min(remaining, _WAIT_SLICE_S))

    async def wait_event(self, key: str, after_seq: int,
                         timeout_s: float = 60.0
                         ) -> List[Dict[str, Any]]:
        """Progress events with ``seq > after_seq``, waiting if none yet.

        Returns an empty list only on timeout or when the job is
        already finished with no events left to deliver.
        """
        deadline = self._loop.time() + timeout_s
        while True:
            fresh = [e for e in self.events(key) if e["seq"] > after_seq]
            if fresh:
                return fresh
            if self.service.get_job(key).finished:
                return []
            remaining = deadline - self._loop.time()
            if remaining <= 0:
                return []
            await self._await_wakeup(key, min(remaining, _WAIT_SLICE_S))

    def events(self, key: str) -> List[Dict[str, Any]]:
        """Snapshot of the job's progress events, oldest first."""
        with self._lock:
            return list(self._events.get(key, ()))

    async def _await_wakeup(self, key: str, timeout_s: float) -> None:
        ev = self._wakeups.setdefault(key, asyncio.Event())
        try:
            await asyncio.wait_for(ev.wait(), timeout_s)
        except asyncio.TimeoutError:
            pass

    # -- executor (its own thread) ---------------------------------------

    def _executor_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            batch = [item]
            if self.service.workers > 1:
                # Opportunistic batching: everything already queued
                # runs as one fork-worker generation.
                while True:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
            if _STOP in batch:
                batch = [k for k in batch if k is not _STOP]
                self._run_batch(batch)
                return
            self._run_batch(batch)

    def _run_batch(self, keys: List[str]) -> None:
        jobs = [self.service.get_job(k) for k in keys]
        self._g_busy.set(min(len(jobs), self.service.workers))
        try:
            if self.service.workers > 1 and len(jobs) > 1:
                # The scheduler keys jobs by entry name; same-name jobs
                # (different mode/seed) must not share a generation.
                rest = list(jobs)
                while rest:
                    gen: List[Job] = []
                    names: set = set()
                    for job in list(rest):
                        if job.name not in names:
                            names.add(job.name)
                            gen.append(job)
                            rest.remove(job)
                    JobScheduler(gen, _registry_runner,
                                 workers=self.service.workers,
                                 journal=self.service.journal,
                                 on_event=self._make_on_event(
                                     {j.name: j.key for j in gen})
                                 ).run()
            else:
                for job in jobs:
                    run_job_inline(job, _registry_runner,
                                   journal=self.service.journal,
                                   on_event=self._make_on_event(
                                       {job.name: job.key}))
        finally:
            self._g_busy.set(0)
            for job in jobs:
                self._account(job)
                self._notify(job.key)
            self._signal_drain()

    def _account(self, job: Job) -> None:
        """Book one finished job's metrics and result, exactly once.

        Must run *before* any waiter can observe the job finished —
        i.e. before the wakeup for its terminal event — so a client
        that saw its submit complete also sees the counters agree.
        """
        with self._lock:
            if job.key in self._accounted or not job.finished:
                return
            self._accounted.add(job.key)
            self._outstanding -= 1
            self._g_depth.set(self._outstanding)
        self.service.store_result(job)
        if job.state == DONE:
            self._c_computed.inc()
            self._h_compute_ms.observe(job.wall_s * 1e3)
        else:
            self._c_failed.inc()

    def _make_on_event(self, key_by_name: Dict[str, str]):
        def on_event(t: str, info: Dict[str, Any]) -> None:
            key = key_by_name.get(info.get("name"))
            if key is None:
                return
            info = {k: v for k, v in info.items() if k != "payload_json"}
            self._record_event(key, t, **info)
            if info.get("state") in (DONE, FAILED):
                self._account(self.service.get_job(key))
            self._notify(key)
        return on_event

    # -- cross-thread plumbing -------------------------------------------

    def _record_event(self, key: str, t: str, **info: Any) -> None:
        with self._lock:
            log = self._events.setdefault(key, [])
            log.append({"seq": len(log) + 1, "t": t, **info})

    def _notify(self, key: str) -> None:
        """Wake any event-loop waiters parked on ``key``."""
        if self._loop is None:
            return

        def _fire() -> None:
            ev = self._wakeups.pop(key, None)
            if ev is not None:
                ev.set()

        try:
            self._loop.call_soon_threadsafe(_fire)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _signal_drain(self) -> None:
        if self._loop is None or self._drain_event is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._drain_event.set)
        except RuntimeError:
            pass
