"""CUDA streams: in-order asynchronous operation queues.

A stream executes its operations strictly in order while the host
process continues — the structure CUDA applications use to overlap
copies with kernels (and what a pipelined D2H/IB/H2D path is built
from).  Operations are generator factories; each runs as an engine
process when its turn comes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CudaError
from repro.sim.core import Engine, Signal
from repro.sim.queues import Latch, Store


class CudaStream:
    """One in-order asynchronous work queue."""

    def __init__(self, engine: Engine, name: str = "stream"):
        self.engine = engine
        self.name = name
        self._ops = Store(engine, name=f"{name}.ops")
        self._pending = Latch(engine, name=f"{name}.pending")
        self.ops_completed = 0
        engine.process(self._worker(), name=f"{name}.worker")

    def enqueue(self, op: Callable[[], object],
                label: str = "op") -> Signal:
        """Queue an operation; returns a signal fired at its completion.

        ``op`` is a zero-argument callable returning a generator (the
        operation body), invoked when the stream reaches it.
        """
        done = self.engine.signal(f"{self.name}.{label}")
        self._pending.up()
        self._ops.put((op, done))
        return done

    def _worker(self):
        while True:
            op, done = yield self._ops.get()
            result = yield self.engine.process(op(), name=f"{self.name}.op")
            self.ops_completed += 1
            self._pending.down()
            done.fire(result)

    def synchronize(self):
        """Process: wait until every operation enqueued so far finished
        (cudaStreamSynchronize semantics)."""
        if self._pending.count:
            yield self._pending.wait_zero()

    @property
    def idle(self) -> bool:
        """True when no operations are queued or running."""
        return self._pending.count == 0
