"""The CUDA-like runtime context of one node.

Timing model: every ``cudaMemcpy*`` call pays a fixed software overhead
(driver call, engine programming — the cost that makes host-staged
GPU-to-GPU communication so expensive for short messages, §I), then the
GPU copy engine moves the data over PCIe at TLP granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.errors import CudaError
from repro.cuda.pointer import (CU_POINTER_ATTRIBUTE_P2P_TOKENS, DevicePtr,
                                P2PToken)
from repro.hw.gpu import GPU
from repro.hw.node import ComputeNode
from repro.units import us


@dataclass(frozen=True)
class CudaParams:
    """Software costs of the CUDA runtime (CUDA 5-era Linux x86_64)."""

    #: cudaMemcpy launch overhead: user->driver->engine doorbell.
    memcpy_overhead_ps: int = us(8)
    #: cudaMemcpyPeer overhead (P2P path setup between two engines).
    memcpy_peer_overhead_ps: int = us(10)


class CudaContext:
    """Per-node CUDA runtime: allocations and copy-engine operations."""

    def __init__(self, node: ComputeNode, params: CudaParams = CudaParams()):
        self.node = node
        self.engine = node.engine
        self.params = params
        self._cursors: Dict[str, int] = {g.name: 0 for g in node.gpus}
        self._peer_mappings = set()

    # -- memory management -------------------------------------------------------

    def cu_mem_alloc(self, gpu_index: int, nbytes: int,
                     align: int = 4096) -> DevicePtr:
        """cuMemAlloc(): carve device memory on one GPU."""
        gpu = self._gpu(gpu_index)
        cursor = self._cursors[gpu.name]
        base = -(-cursor // align) * align
        if base + nbytes > gpu.params.memory_bytes:
            raise CudaError(f"{gpu.name}: out of device memory")
        self._cursors[gpu.name] = base + nbytes
        return DevicePtr(gpu, base, nbytes)

    def cu_pointer_get_attribute(self, attribute: str,
                                 ptr: DevicePtr) -> P2PToken:
        """cuPointerGetAttribute(): only the P2P-tokens attribute exists."""
        if attribute != CU_POINTER_ATTRIBUTE_P2P_TOKENS:
            raise CudaError(f"unknown pointer attribute {attribute!r}")
        return P2PToken(ptr.gpu.name, ptr.offset, ptr.nbytes)

    def _gpu(self, index: int) -> GPU:
        try:
            return self.node.gpus[index]
        except IndexError:
            raise CudaError(f"no GPU {index} in {self.node.name}")

    # -- copies (engine processes; yield from them or wrap in engine.process) ----

    def memcpy_htod(self, dst: DevicePtr, src_bus_addr: int, nbytes: int):
        """Process: host memory -> device memory (cudaMemcpyHostToDevice)."""
        dst.check_span(nbytes)
        yield self.params.memcpy_overhead_ps
        yield self.engine.process(
            dst.gpu.ce_read_from_bus(src_bus_addr, dst.offset, nbytes),
            name="memcpy_htod")

    def memcpy_dtoh(self, dst_bus_addr: int, src: DevicePtr, nbytes: int):
        """Process: device memory -> host memory (cudaMemcpyDeviceToHost)."""
        src.check_span(nbytes)
        yield self.params.memcpy_overhead_ps
        yield self.engine.process(
            src.gpu.ce_write_to_bus(dst_bus_addr, src.offset, nbytes),
            name="memcpy_dtoh")

    def memcpy_peer(self, dst: DevicePtr, src: DevicePtr, nbytes: int):
        """Process: cudaMemcpyPeer() within the node (§III-H).

        The source GPU's copy engine writes straight into the destination
        GPU's BAR — GPUDirect Peer-to-Peer over the shared PCIe fabric.
        The destination pages must be pinned/mapped (the runtime does this
        implicitly for P2P-enabled pairs; we model it with pin_pages).
        """
        src.check_span(nbytes)
        dst.check_span(nbytes)
        if dst.gpu is src.gpu:
            raise CudaError("peer copy needs two distinct GPUs")
        yield self.params.memcpy_peer_overhead_ps
        # Peer access stays enabled for the allocation's lifetime (like
        # cudaDeviceEnablePeerAccess); unpinning immediately would race
        # the posted writes still in flight.
        key = (dst.gpu.name, dst.offset, nbytes)
        if key not in self._peer_mappings:
            dst.gpu.pin_pages(dst.offset, nbytes)
            self._peer_mappings.add(key)
        bus = dst.gpu.offset_to_bar(dst.offset)
        yield self.engine.process(
            src.gpu.ce_write_to_bus(bus, src.offset, nbytes),
            name="memcpy_peer")

    # -- streams (asynchronous, in-order; cudaMemcpyAsync-style) -------------------

    def create_stream(self, name: str = "") -> "CudaStream":
        """cudaStreamCreate()."""
        from repro.cuda.stream import CudaStream

        return CudaStream(self.engine,
                          name or f"{self.node.name}.stream")

    def memcpy_htod_async(self, dst: DevicePtr, src_bus_addr: int,
                          nbytes: int, stream) -> "Signal":
        """cudaMemcpyAsync host-to-device on a stream."""
        return stream.enqueue(
            lambda: self.memcpy_htod(dst, src_bus_addr, nbytes),
            label="htod")

    def memcpy_dtoh_async(self, dst_bus_addr: int, src: DevicePtr,
                          nbytes: int, stream) -> "Signal":
        """cudaMemcpyAsync device-to-host on a stream."""
        return stream.enqueue(
            lambda: self.memcpy_dtoh(dst_bus_addr, src, nbytes),
            label="dtoh")

    def launch_kernel_async(self, gpu_index: int, flops: float,
                            bytes_moved: float, stream,
                            body=None) -> "Signal":
        """Queue a roofline-timed kernel on a stream."""
        gpu = self._gpu(gpu_index)
        return stream.enqueue(
            lambda: gpu.launch_kernel(flops, bytes_moved, body),
            label="kernel")

    # -- zero-time backdoors for test setup/verification ---------------------------

    def upload(self, ptr: DevicePtr, data: np.ndarray) -> None:
        """Place bytes in device memory instantly (test fixture setup)."""
        data = np.asarray(data, dtype=np.uint8)
        ptr.check_span(len(data))
        ptr.gpu.memory.write(ptr.offset, data)

    def download(self, ptr: DevicePtr, nbytes: int) -> np.ndarray:
        """Read bytes from device memory instantly (test verification)."""
        ptr.check_span(nbytes)
        return ptr.gpu.memory.read(ptr.offset, nbytes)
