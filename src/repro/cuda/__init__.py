"""CUDA-like runtime: device memory, memcpy engines, P2P tokens, UVA.

A deliberately small model of the CUDA 5 features the paper depends on:
``cuMemAlloc``, ``cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_P2P_TOKENS)``
(§IV-A2 steps 1-2), host<->device copies via the GPU copy engines, and
``cudaMemcpyPeer`` within a node (§III-H).
"""

from repro.cuda.pointer import DevicePtr, P2PToken, CU_POINTER_ATTRIBUTE_P2P_TOKENS
from repro.cuda.runtime import CudaContext, CudaParams
from repro.cuda.stream import CudaStream

__all__ = [
    "DevicePtr",
    "P2PToken",
    "CU_POINTER_ATTRIBUTE_P2P_TOKENS",
    "CudaContext",
    "CudaParams",
    "CudaStream",
]
