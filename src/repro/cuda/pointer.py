"""Device pointers and pointer attributes.

``DevicePtr`` plays the role of a CUDA device pointer under Unified
Virtual Addressing: it knows which GPU it belongs to and where.  The P2P
token (``CU_POINTER_ATTRIBUTE_P2P_TOKENS``) is the capability the P2P
driver demands before pinning GPU pages into the PCIe space (§IV-A2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CudaError
from repro.hw.gpu import GPU

#: The attribute name used with :meth:`CudaContext.cu_pointer_get_attribute`.
CU_POINTER_ATTRIBUTE_P2P_TOKENS = "CU_POINTER_ATTRIBUTE_P2P_TOKENS"


@dataclass(frozen=True)
class DevicePtr:
    """A device-memory pointer: GPU plus offset, with allocation bounds."""

    gpu: GPU
    offset: int
    nbytes: int

    def __add__(self, delta: int) -> "DevicePtr":
        if delta < 0 or delta > self.nbytes:
            raise CudaError("pointer arithmetic outside the allocation")
        return DevicePtr(self.gpu, self.offset + delta, self.nbytes - delta)

    def check_span(self, nbytes: int) -> None:
        """Validate an access of ``nbytes`` starting at this pointer."""
        if nbytes < 0 or nbytes > self.nbytes:
            raise CudaError(
                f"access of {nbytes} bytes overruns allocation of "
                f"{self.nbytes} bytes on {self.gpu.name}")


@dataclass(frozen=True)
class P2PToken:
    """Access token for GPUDirect RDMA pinning (opaque to user code)."""

    gpu_name: str
    offset: int
    nbytes: int
