"""Deterministic fault injection with PCIe replay semantics.

The package splits into:

* :mod:`repro.faults.plan` — seeded, declarative fault plans (what goes
  wrong and when);
* :mod:`repro.faults.injector` — the per-engine executor behind the
  ``engine.faults`` hook;
* :mod:`repro.faults.session` — arm a plan on every engine an experiment
  builds (the ``tca-bench --fault-plan`` mechanism);
* :mod:`repro.faults.chaos` — workloads under randomized faults with
  end-to-end delivery and byte-exactness checks;
* :mod:`repro.faults.harness_chaos` — process-level chaos against the
  *suite harness itself* (SIGKILLed workers, hung entries, corrupted
  cache files, mid-run kills + resume), asserting byte-identical
  output.

See ``docs/robustness.md`` for the fault model and the recovery state
machine.
"""

from repro.faults.chaos import ChaosReport, run_chaos
from repro.faults.harness_chaos import (HarnessChaosReport,
                                        run_harness_chaos)
from repro.faults.injector import (FaultInjector, VERDICT_CORRUPT,
                                   VERDICT_DROP, VERDICT_OK)
from repro.faults.plan import (DescriptorFetchError, Fault, FaultPlan,
                               LinkFlap, LostInterrupt, PRESETS,
                               StuckDoorbell, SwitchDrop, TLPCorrupt,
                               TLPDrop)
from repro.faults.session import FaultSession

__all__ = [
    "ChaosReport",
    "DescriptorFetchError",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "FaultSession",
    "HarnessChaosReport",
    "LinkFlap",
    "LostInterrupt",
    "PRESETS",
    "StuckDoorbell",
    "SwitchDrop",
    "TLPCorrupt",
    "TLPDrop",
    "VERDICT_CORRUPT",
    "VERDICT_DROP",
    "VERDICT_OK",
    "run_chaos",
    "run_harness_chaos",
]
