"""The fault injector: executes one :class:`FaultPlan` on one engine.

The injector is the single object hardware models consult at their fault
points, through ``engine.faults`` — an attribute that is ``None`` by
default, exactly like ``engine.tracer``/``engine.metrics``, so the whole
disabled-path cost is one identity check and un-faulted runs stay
picosecond-identical.

Hook points (the callee names the component; the injector matches it
against the plan's ``fnmatch`` targets):

* ``link_verdict(name)`` — per serialized TLP on a link direction;
  returns ``"ok"``, ``"corrupt"`` (NAK + replay) or ``"drop"``
  (replay-timer retransmission).
* ``switch_drop(name)`` — per forwarded packet in a host switch.
* ``doorbell_stuck(chip, channel)`` — per doorbell register write.
* ``drop_interrupt(chip, vector)`` — per completion MSI raised.
* ``descriptor_fetch_error(chip, channel)`` — per descriptor-table
  fetch issued by the DMAC.
* ``register_link(link)`` — called by :class:`~repro.pcie.link.PCIeLink`
  at construction so :class:`LinkFlap` events can be scheduled; links
  built before :meth:`arm` are registered by :meth:`attach_cluster` or
  an explicit call.

Every injected fault increments a counter; :meth:`flush_metrics` mirrors
the totals into a metrics registry as ``faults.*`` counters so degraded
runs are machine-distinguishable from healthy ones.
"""

from __future__ import annotations

from fnmatch import fnmatch
import random
from typing import Dict, List, Optional

from repro.errors import FaultError
from repro.faults.plan import (DescriptorFetchError, FaultPlan, LinkFlap,
                               LostInterrupt, StuckDoorbell, SwitchDrop,
                               TLPCorrupt, TLPDrop)

VERDICT_OK = "ok"
VERDICT_CORRUPT = "corrupt"
VERDICT_DROP = "drop"


class FaultInjector:
    """Executes one plan's faults against one engine's components."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.engine = None
        self.counters: Dict[str, int] = {}
        self._links: Dict[str, object] = {}
        self._corrupts: List[TLPCorrupt] = []
        self._drops: List[TLPDrop] = []
        self._switch_drops: List[SwitchDrop] = []
        self._flaps: List[LinkFlap] = []
        # Occurrence counters for nth-based faults, keyed by fault object.
        self._occurrences: Dict[int, int] = {}
        self._ordinals: List[object] = []
        for fault in plan.faults:
            if isinstance(fault, TLPCorrupt):
                self._corrupts.append(fault)
            elif isinstance(fault, TLPDrop):
                self._drops.append(fault)
            elif isinstance(fault, SwitchDrop):
                self._switch_drops.append(fault)
            elif isinstance(fault, LinkFlap):
                self._flaps.append(fault)
            else:
                self._ordinals.append(fault)

    # -- wiring --------------------------------------------------------------

    def arm(self, engine) -> "FaultInjector":
        """Install on ``engine`` (sets ``engine.faults``) and return self."""
        if self.engine is not None and self.engine is not engine:
            raise FaultError("injector is already armed on another engine")
        self.engine = engine
        engine.faults = self
        return self

    def register_link(self, link) -> None:
        """Track a link and schedule any flap whose target matches it."""
        if link.name in self._links:
            return
        self._links[link.name] = link
        for flap in self._flaps:
            if fnmatch(link.name, flap.target):
                self._schedule_flap(link, flap)

    def attach_cluster(self, cluster) -> None:
        """Register every link of an already-built sub-cluster.

        Needed when the cluster was constructed before :meth:`arm`;
        links built after arming self-register.
        """
        for _, _, link in cluster._ring_cables:
            self.register_link(link)

    def _schedule_flap(self, link, flap: LinkFlap) -> None:
        down_at = max(self.engine.now_ps, flap.down_at_ps)

        def cut() -> None:
            if link.up:
                link.take_down()
                self.count("link_flaps")
                self.engine.trace("faults", "link-cut", link=link.name)

        self.engine.at(down_at, cut)
        if flap.up_at_ps is not None:
            self.engine.at(max(down_at + 1, flap.up_at_ps), link.bring_up)

    # -- hook queries --------------------------------------------------------

    def link_verdict(self, link_name: str) -> str:
        """Fate of one TLP leaving serialization on ``link_name``."""
        now = self.engine.now_ps
        for fault in self._corrupts:
            if fault.in_window(now) and fnmatch(link_name, fault.target):
                if self.rng.random() < fault.probability:
                    self.count("tlps_corrupted")
                    return VERDICT_CORRUPT
        for fault in self._drops:
            if fault.in_window(now) and fnmatch(link_name, fault.target):
                if self.rng.random() < fault.probability:
                    self.count("tlps_dropped_wire")
                    return VERDICT_DROP
        return VERDICT_OK

    def switch_drop(self, switch_name: str) -> bool:
        """True when a host switch loses this forwarded packet."""
        now = self.engine.now_ps
        for fault in self._switch_drops:
            if fault.in_window(now) and fnmatch(switch_name, fault.target):
                if self.rng.random() < fault.probability:
                    self.count("tlps_dropped_switch")
                    return True
        return False

    def _nth_hit(self, fault, key: str) -> bool:
        seen = self._occurrences.get(id(fault), 0) + 1
        self._occurrences[id(fault)] = seen
        if seen == fault.nth:
            self.count(key)
            return True
        return False

    def doorbell_stuck(self, chip_name: str, channel: int) -> bool:
        """True when this doorbell write must be swallowed."""
        for fault in self._ordinals:
            if (isinstance(fault, StuckDoorbell)
                    and fnmatch(chip_name, fault.chip)
                    and (fault.channel is None or fault.channel == channel)):
                if self._nth_hit(fault, "doorbells_stuck"):
                    return True
        return False

    def drop_interrupt(self, chip_name: str, vector: int) -> bool:
        """True when this completion MSI must be swallowed."""
        for fault in self._ordinals:
            if (isinstance(fault, LostInterrupt)
                    and fnmatch(chip_name, fault.chip)):
                if self._nth_hit(fault, "interrupts_lost"):
                    return True
        return False

    def descriptor_fetch_error(self, chip_name: str, channel: int) -> bool:
        """True when this descriptor fetch must return garbage."""
        for fault in self._ordinals:
            if (isinstance(fault, DescriptorFetchError)
                    and fnmatch(chip_name, fault.chip)):
                if self._nth_hit(fault, "descriptor_fetch_errors"):
                    return True
        return False

    # -- accounting ----------------------------------------------------------

    def count(self, key: str, n: int = 1) -> None:
        """Record ``n`` injected faults of one kind."""
        self.counters[key] = self.counters.get(key, 0) + n

    @property
    def total_injected(self) -> int:
        """Total faults injected so far."""
        return sum(self.counters.values())

    def flush_metrics(self, registry=None) -> None:
        """Mirror the counters into a metrics registry as ``faults.*``.

        Uses the armed engine's registry when none is given; a no-op
        when neither exists.  Also writes ``faults.plan_armed`` so a
        metrics document always reveals that a fault plan was active.
        """
        registry = registry or (self.engine.metrics if self.engine else None)
        if registry is None:
            return
        registry.counter("faults.plan_armed").inc()
        for key, value in sorted(self.counters.items()):
            registry.counter(f"faults.{key}").inc(value)

    def summary(self) -> str:
        """One-line human summary of what was injected."""
        if not self.counters:
            return (f"fault plan {self.plan.name!r} (seed {self.plan.seed}): "
                    "no faults injected")
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return (f"fault plan {self.plan.name!r} (seed {self.plan.seed}): "
                f"{parts}")
