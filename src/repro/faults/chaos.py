"""Chaos harness: real workloads under randomized fault plans.

Builds a sub-cluster with a :class:`~repro.faults.injector.FaultInjector`
armed *before* construction (so every link self-registers its hook),
starts the NIOS watchdogs wired to automatic PEARL healing, then drives
two traffic phases and checks that the robustness stack actually
recovers:

1. **resilient ping-pong** — PIO stores between two nodes where both
   sides tolerate loss: the initiator re-stores its value when the echo
   does not come back in time, the responder periodically re-echoes the
   latest value it has seen.  A mid-run cable cut is survived by the
   watchdog detect → heal reroute; the retry carries the round across.
2. **DMA put + byte-exact verify** — a two-phase chained DMA through
   :meth:`~repro.drivers.peach2_driver.PEACH2Driver.run_chain_reliable`
   (timeout, lost-IRQ recovery, doorbell retry), after which the
   destination buffer is compared byte for byte against the source.

The harness is fully deterministic for a given plan: the injector's RNG
is the only randomness, and the engine itself orders ties by schedule
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError, FaultError
from repro.drivers.peach2_driver import RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.core import Engine
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster


@dataclass
class ChaosReport:
    """What happened during one chaos run (all counts are totals)."""

    plan_name: str
    seed: int
    num_nodes: int
    duration_ps: int = 0
    #: Engine events processed over the whole run — a cheap, fully
    #: deterministic fingerprint of the event schedule (fault timing
    #: shifts it even when the injected-fault *counts* coincide).
    events_processed: int = 0
    # Phase 1: resilient ping-pong.
    pingpong_rounds: int = 0
    pingpong_retries: int = 0
    # Phase 2: reliable DMA put.
    dma_bytes: int = 0
    dma_attempts: int = 0
    byte_exact: bool = False
    # Recovery machinery.
    healed: bool = False
    heal_chain: Optional[List[int]] = None
    time_to_heal_ps: Optional[int] = None
    lost_irqs_recovered: int = 0
    doorbell_retries: int = 0
    completion_timeouts: int = 0
    # Link-layer repair work.
    replays: int = 0
    naks: int = 0
    tlps_dropped: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        """Operator-facing one-paragraph summary."""
        heal = "no heal needed"
        if self.healed:
            tth = ("" if self.time_to_heal_ps is None
                   else f" in {self.time_to_heal_ps / 1000.0:.0f} ns")
            heal = f"auto-healed{tth} -> chain {self.heal_chain}"
        integrity = "byte-exact" if self.byte_exact else "CORRUPTED"
        injected = (", ".join(f"{k}={v}" for k, v in
                              sorted(self.faults_injected.items()))
                    or "none")
        return (f"chaos[{self.plan_name}:{self.seed}] on {self.num_nodes} "
                f"nodes: {self.pingpong_rounds} pingpong rounds "
                f"({self.pingpong_retries} retries), DMA {self.dma_bytes} B "
                f"x{self.dma_attempts} {integrity}; {heal}; "
                f"replays={self.replays} naks={self.naks} "
                f"dropped={self.tlps_dropped} "
                f"lost_irqs={self.lost_irqs_recovered} "
                f"doorbell_retries={self.doorbell_retries}; "
                f"injected: {injected}")


def run_chaos(plan: FaultPlan, num_nodes: int = 6,
              pingpong_iterations: int = 8,
              dma_bytes: int = 32 * 1024,
              cut_east_node: Optional[int] = 0,
              cut_at_ps: int = 2_000_000,
              round_timeout_ps: int = 200_000_000,
              max_round_retries: int = 16,
              max_dma_attempts: int = 3,
              watchdog_interval_ps: Optional[int] = None,
              retry_policy: Optional[RetryPolicy] = None,
              topology: str = "ring",
              extents: Optional[List[int]] = None) -> ChaosReport:
    """Run the chaos scenario; returns a :class:`ChaosReport`.

    ``cut_east_node`` schedules a hard cable cut (the PEARL failure) at
    ``cut_at_ps``, on top of whatever the plan injects; pass ``None`` to
    rely on the plan alone.  Raises :class:`FaultError` if a ping-pong
    round exceeds ``max_round_retries`` — the scenario's recovery budget.
    ``topology``/``extents`` select the fabric (ring by default; pass
    ``topology="torus", extents=(k, k)`` to chaos-test a torus — the cut
    then lands on a dimension-0 cable and heals via the fabric builder).
    """
    engine = Engine()
    injector = FaultInjector(plan).arm(engine)
    cluster = TCASubCluster(num_nodes, topology=topology, extents=extents,
                            engine=engine)
    cluster.enable_auto_heal(watchdog_interval_ps)
    report = ChaosReport(plan_name=plan.name, seed=plan.seed,
                         num_nodes=num_nodes, dma_bytes=dma_bytes)

    if cut_east_node is not None:
        def _cut() -> None:
            try:
                cluster.cut_ring_cable(cut_east_node)
            except ConfigError:
                pass  # the plan already took a ring cable down
        engine.at(cut_at_ps, _cut)

    node_a, node_b = 0, 1
    drv_a = cluster.driver(node_a)
    drv_b = cluster.driver(node_b)
    comm = TCAComm(cluster)
    slot_a, slot_b = 0x800, 0x800
    addr_at_b = comm.host_global(node_b, drv_b.dma_buffer(slot_b))
    addr_at_a = comm.host_global(node_a, drv_a.dma_buffer(slot_a))
    poll_ps = cluster.node(node_a).params.calib.driver_poll_interval_ps
    stop = [False]

    def responder():
        """Echo the latest value seen, re-echoing every few polls so a
        lost echo store cannot wedge the initiator."""
        last_stored = 0
        polls = 0
        while not stop[0]:
            word = drv_b.read_dma_buffer(slot_b, 4)
            seen = int.from_bytes(word.tobytes(), "little")
            polls += 1
            if seen and (seen != last_stored or polls % 8 == 0):
                cluster.node(node_b).cpu.store_u32(addr_at_a, seen)
                last_stored = seen
            yield poll_ps

    def await_value(driver, slot, expect, deadline_ps):
        """Bounded poll; returns True when the value showed up in time."""
        while engine.now_ps < deadline_ps:
            word = driver.read_dma_buffer(slot, 4)
            if int.from_bytes(word.tobytes(), "little") == expect:
                return True
            yield poll_ps
        return False

    def initiator():
        for i in range(1, pingpong_iterations + 1):
            for _retry in range(max_round_retries):
                cluster.node(node_a).cpu.store_u32(addr_at_b, i)
                arrived = yield engine.process(
                    await_value(drv_a, slot_a, i,
                                engine.now_ps + round_timeout_ps),
                    name="chaos.await")
                if arrived:
                    break
                report.pingpong_retries += 1
            else:
                stop[0] = True
                raise FaultError(
                    f"pingpong round {i} exceeded its recovery budget "
                    f"({max_round_retries} retries of {round_timeout_ps} ps)")
            report.pingpong_rounds += 1
        stop[0] = True

    engine.process(responder(), name="chaos.responder")
    engine.run_process(initiator(), name="chaos.initiator")

    # Phase 2: chained DMA put across the (possibly healed) ring, then a
    # byte-exact comparison at the destination.
    dma_target = num_nodes // 2
    drv_t = cluster.driver(dma_target)
    src_off, dst_off = 0x10000, 0x20000
    pattern = (np.arange(dma_bytes, dtype=np.int64) * 131 + plan.seed) % 251
    pattern = pattern.astype(np.uint8)
    drv_a.fill_dma_buffer(src_off, pattern)
    dst_global = comm.host_global(dma_target, drv_t.dma_buffer(dst_off))
    chain = comm.put_dma_descriptors(node_a, drv_a.dma_buffer(src_off),
                                     dst_global, dma_bytes)

    def dma_phase():
        for _attempt in range(max_dma_attempts):
            report.dma_attempts += 1
            yield engine.process(
                drv_a.run_chain_reliable(0, chain, retry_policy),
                name="chaos.dma")
            landed = drv_t.read_dma_buffer(dst_off, dma_bytes)
            if np.array_equal(landed, pattern):
                report.byte_exact = True
                return
        report.byte_exact = False

    engine.run_process(dma_phase(), name="chaos.dma_phase")

    # Wind down: stop the watchdogs, drain stray timers, gather totals.
    cluster.disable_auto_heal()
    engine.run()
    report.duration_ps = engine.now_ps
    report.events_processed = engine.events_processed
    report.healed = cluster.heals_completed > 0
    report.heal_chain = cluster.last_heal_chain
    report.time_to_heal_ps = cluster.last_time_to_heal_ps
    for driver in cluster.drivers:
        report.lost_irqs_recovered += driver.lost_irqs_recovered
        report.doorbell_retries += driver.doorbell_retries
        report.completion_timeouts += driver.completion_timeouts
    for link in injector._links.values():
        report.replays += link.replays
        report.naks += link.naks
        report.tlps_dropped += link.tlps_dropped
    # Egress-stage drops (a healed route landing mid-flight) never reach
    # a link's serializer, so the link counters above miss them; the
    # forwarding stage records each one once in the injector.
    report.tlps_dropped += injector.counters.get("tlps_dropped_egress", 0)
    report.faults_injected = dict(injector.counters)
    injector.flush_metrics()
    return report
