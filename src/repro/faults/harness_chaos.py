"""Process-level chaos: prove the *harness* survives what the sim does.

:mod:`repro.faults.chaos` injects faults into the simulated fabric;
this module injects them into the machinery that runs the suite —
worker processes, deadlines, the result cache, the run journal — and
asserts the one property the whole robustness layer exists for:

    **a disturbed run produces byte-identical payloads to a clean
    run, with every anchor still green.**

Four scenarios, each independently checkable::

    worker-kill       SIGKILL a fork worker the moment it starts a
                      job; the supervisor must reap it, requeue the
                      job on the survivors, and finish.
    deadline-hang     force one entry to hang past an (injected) tiny
                      deadline; the supervisor must kill the worker
                      and retry with an escalated deadline.
    cache-corruption  bit-flip one cache entry and truncate another;
                      the next run must quarantine both and
                      transparently re-measure.
    kill-resume       SIGKILL an entire journalled suite run mid-way;
                      ``--resume`` must re-execute only the unfinished
                      entries and reassemble identical payloads.

Byte-identity holds by construction — a payload depends only on
``(entry, mode, seed)`` — so any divergence here is a real supervisor
bug (a lost job, a double-counted retry mutating state, a stale
message applied), which is exactly what this harness is for.

Run it directly (CI does, see ``suite-chaos``)::

    python -m repro.faults.harness_chaos --mode smoke
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.cache import ResultCache
from repro.bench.suite import run_suite
from repro.errors import ConfigError

#: Scenario registry order == execution and report order.
SCENARIOS = ("worker-kill", "deadline-hang", "cache-corruption",
             "kill-resume")


@dataclass
class Check:
    """One asserted property of one scenario."""

    name: str
    ok: bool
    detail: str

    def __str__(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return f"    [{mark}] {self.name}: {self.detail}"


@dataclass
class ScenarioResult:
    """Everything one chaos scenario observed."""

    scenario: str
    checks: List[Check] = field(default_factory=list)
    robustness: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(c.ok for c in self.checks)

    def expect(self, name: str, ok: bool, detail: str) -> None:
        self.checks.append(Check(name=name, ok=bool(ok), detail=detail))

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
            "checks": [{"name": c.name, "ok": c.ok, "detail": c.detail}
                       for c in self.checks],
            "robustness": self.robustness,
        }


@dataclass
class HarnessChaosReport:
    """The full chaos-harness verdict (``tca-harness-chaos/1``)."""

    mode: str
    seed: int
    workers: int
    results: List[ScenarioResult] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "tca-harness-chaos/1",
            "mode": self.mode,
            "seed": self.seed,
            "workers": self.workers,
            "ok": self.ok,
            "wall_s": round(self.wall_s, 3),
            "scenarios": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        lines = [f"harness chaos  mode={self.mode} seed={self.seed} "
                 f"workers={self.workers}"]
        for result in self.results:
            verdict = "pass" if result.ok else "FAIL"
            lines.append(f"  {result.scenario}: {verdict} "
                         f"({result.wall_s:.1f}s)")
            lines += [str(c) for c in result.checks]
        lines.append(f"chaos: {'PASS' if self.ok else 'FAIL'} "
                     f"({sum(r.ok for r in self.results)} of "
                     f"{len(self.results)} scenarios)  "
                     f"wall: {self.wall_s:.1f}s")
        return "\n".join(lines)


def _payload_map(report) -> Dict[str, Optional[str]]:
    """Entry name -> canonical payload text; the byte-identity basis."""
    return {e.name: e.payload_json for e in report.entries}


def _identical(result: ScenarioResult, clean: Dict[str, Optional[str]],
               disturbed) -> None:
    got = _payload_map(disturbed)
    diverged = sorted(n for n in clean
                      if got.get(n) != clean[n])
    missing = sorted(n for n in clean if n not in got)
    result.expect(
        "byte-identical", not diverged and not missing,
        "all payloads match the clean run" if not diverged and not missing
        else f"diverged: {diverged[:5]} missing: {missing[:5]}")


def _anchors_green(result: ScenarioResult, report, mode: str) -> None:
    summary = report.summary()
    if mode == "tiny":
        result.expect("anchors", True, "tiny mode: anchors skipped")
        return
    result.expect("anchors", summary["anchors_fail"] == 0,
                  f"{summary['anchors_pass']} pass, "
                  f"{summary['anchors_fail']} fail")


# -- scenarios ------------------------------------------------------------------------


def scenario_worker_kill(clean: Dict[str, Optional[str]], mode: str,
                         seed: int, workers: int,
                         log: Callable[[str], None]) -> ScenarioResult:
    """SIGKILL the first worker to start a job; the run must survive."""
    result = ScenarioResult(scenario="worker-kill")
    killed: List[int] = []

    def on_event(kind: str, info: Dict[str, object]) -> None:
        if kind == "job-start" and not killed and info.get("pid"):
            pid = int(info["pid"])
            killed.append(pid)
            os.kill(pid, signal.SIGKILL)

    report = run_suite(mode=mode, cache=None, shards=workers, seed=seed,
                       on_event=on_event)
    result.robustness = report.robustness
    result.expect("worker-killed", bool(killed),
                  f"SIGKILLed worker pid {killed[0]}" if killed
                  else "no job-start event carried a pid")
    lost = report.robustness.get("workers_lost", 0)
    result.expect("supervisor-reaped", lost >= 1,
                  f"workers_lost={lost}")
    result.expect("run-completed", report.ok and not report.interrupted,
                  f"ok={report.ok} interrupted={report.interrupted}")
    _identical(result, clean, report)
    _anchors_green(result, report, mode)
    return result


def scenario_deadline_hang(clean: Dict[str, Optional[str]], mode: str,
                           seed: int, workers: int,
                           log: Callable[[str], None]) -> ScenarioResult:
    """Hang one entry past a tiny injected deadline; retry must land."""
    result = ScenarioResult(scenario="deadline-hang")
    victim = "theory"  # cheap, present in every mode
    chaos = {"hang_s": {victim: 30.0}, "deadline_s": {victim: 0.5}}
    report = run_suite(mode=mode, cache=None, shards=workers, seed=seed,
                       chaos=chaos)
    result.robustness = report.robustness
    kills = report.robustness.get("deadline_kills", 0)
    retries = report.robustness.get("retries", 0)
    result.expect("deadline-fired", kills >= 1,
                  f"deadline_kills={kills}")
    result.expect("retried", retries >= 1, f"retries={retries}")
    result.expect("run-completed", report.ok and not report.interrupted,
                  f"ok={report.ok} interrupted={report.interrupted}")
    _identical(result, clean, report)
    _anchors_green(result, report, mode)
    return result


def scenario_cache_corruption(clean: Dict[str, Optional[str]], mode: str,
                              seed: int, workers: int,
                              log: Callable[[str], None]
                              ) -> ScenarioResult:
    """Damage two cache entries; the next run quarantines and re-runs."""
    result = ScenarioResult(scenario="cache-corruption")
    with tempfile.TemporaryDirectory(prefix="tca-chaos-cache-") as tmp:
        cache_dir = Path(tmp)
        warm = run_suite(mode=mode, cache=ResultCache(cache_dir),
                         shards=1, seed=seed)
        entries = sorted(p for p in cache_dir.rglob("*.json")
                         if p.parent.name != ResultCache.QUARANTINE_DIR)
        result.expect("cache-populated", len(entries) >= 2,
                      f"{len(entries)} cached documents")
        if len(entries) >= 2:
            # Bit-flip the middle byte of one document ...
            blob = bytearray(entries[0].read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            entries[0].write_bytes(bytes(blob))
            # ... and tear the tail off another (torn write).
            blob = entries[1].read_bytes()
            entries[1].write_bytes(blob[:len(blob) // 2])

        cache = ResultCache(cache_dir)
        report = run_suite(mode=mode, cache=cache, shards=1, seed=seed)
        result.robustness = report.robustness
        result.expect("quarantined", cache.corrupted == 2,
                      f"corrupted={cache.corrupted} "
                      f"({[q['reason'] for q in cache.quarantined]})")
        parked = list((cache_dir / ResultCache.QUARANTINE_DIR).glob("*"))
        result.expect("parked-for-postmortem", len(parked) >= 1,
                      f"{len(parked)} files in quarantine/")
        stats = cache.stats()
        result.expect("transparent-rerun",
                      stats["misses"] >= 2 and report.ok,
                      f"misses={stats['misses']} ok={report.ok}")
        _identical(result, _payload_map(warm), report)
        _identical(result, clean, report)
        _anchors_green(result, report, mode)
    return result


def scenario_kill_resume(clean: Dict[str, Optional[str]], mode: str,
                         seed: int, workers: int,
                         log: Callable[[str], None]) -> ScenarioResult:
    """SIGKILL a whole journalled run mid-way; resume must complete it."""
    result = ScenarioResult(scenario="kill-resume")
    with tempfile.TemporaryDirectory(prefix="tca-chaos-resume-") as tmp:
        jdir = Path(tmp) / "journal"
        mode_flag = {"smoke": ["--smoke"], "tiny": ["--tiny"],
                     "full": []}[mode]
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get(
            "PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.bench.cli", "suite",
             *mode_flag, "--no-cache", "--shards", str(workers),
             "--seed", str(seed), "--journal-dir", str(jdir)],
            cwd=tmp, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        # Wait for the first journalled completion, then pull the plug.
        journal_path = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and proc.poll() is None:
            candidates = list(jdir.glob("*.jsonl")) if jdir.exists() \
                else []
            if candidates:
                journal_path = candidates[0]
                if '"state":"done"' in journal_path.read_text(
                        encoding="utf-8"):
                    break
            time.sleep(0.05)
        mid_run = proc.poll() is None
        if mid_run:
            proc.kill()
        proc.wait()
        result.expect("killed-mid-run", mid_run and journal_path is not None,
                      "SIGKILLed after first journalled completion"
                      if mid_run else "run finished before the kill "
                      "(machine too fast for this mode)")
        if journal_path is None:
            return result

        run_id = journal_path.stem
        report = run_suite(cache=None, journal_dir=jdir, resume=run_id)
        result.robustness = report.robustness
        resumed = report.robustness.get("resumed_entries", 0)
        reran = sum(1 for e in report.entries if e.cache == "miss")
        result.expect("partial-restore", resumed >= 1,
                      f"{resumed} entries restored from the journal")
        result.expect("partial-rerun", not mid_run or reran >= 1,
                      f"{reran} unfinished entries re-executed")
        result.expect("run-completed", report.ok and not report.interrupted,
                      f"ok={report.ok} interrupted={report.interrupted}")
        _identical(result, clean, report)
        _anchors_green(result, report, mode)
    return result


_SCENARIO_FNS: Dict[str, Callable] = {
    "worker-kill": scenario_worker_kill,
    "deadline-hang": scenario_deadline_hang,
    "cache-corruption": scenario_cache_corruption,
    "kill-resume": scenario_kill_resume,
}


def run_harness_chaos(mode: str = "smoke", seed: int = 0,
                      workers: int = 2,
                      scenarios: Optional[Sequence[str]] = None,
                      log: Optional[Callable[[str], None]] = None
                      ) -> HarnessChaosReport:
    """Run the chaos scenarios against a clean-run baseline."""
    log = log or (lambda msg: None)
    scenarios = list(scenarios) if scenarios is not None \
        else list(SCENARIOS)
    unknown = [s for s in scenarios if s not in _SCENARIO_FNS]
    if unknown:
        raise ConfigError(
            f"unknown chaos scenarios: {', '.join(unknown)} "
            f"(known: {', '.join(SCENARIOS)})")
    report = HarnessChaosReport(mode=mode, seed=seed, workers=workers)
    start = time.perf_counter()
    log(f"clean baseline run (mode={mode}) ...")
    baseline = run_suite(mode=mode, cache=None, shards=1, seed=seed)
    if not baseline.ok:
        raise ConfigError(
            "clean baseline run failed; chaos verdicts would be "
            "meaningless — fix the suite first")
    clean = _payload_map(baseline)
    for name in scenarios:
        log(f"scenario {name} ...")
        t0 = time.perf_counter()
        result = _SCENARIO_FNS[name](clean, mode, seed, workers, log)
        result.wall_s = time.perf_counter() - t0
        report.results.append(result)
        log(f"scenario {name}: {'pass' if result.ok else 'FAIL'}")
    report.wall_s = time.perf_counter() - start
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.faults.harness_chaos`` (the CI suite-chaos step)."""
    parser = argparse.ArgumentParser(
        prog="harness-chaos",
        description="Kill workers, hang entries, corrupt caches — then "
                    "assert the suite's output did not change by a byte.")
    parser.add_argument("--mode", choices=("full", "smoke", "tiny"),
                        default="smoke",
                        help="suite mode for every run (default smoke)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the disturbed runs")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", choices=SCENARIOS,
                        help="run only this scenario (repeatable)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the verdict document to PATH")
    args = parser.parse_args(argv)

    try:
        report = run_harness_chaos(
            mode=args.mode, seed=args.seed, workers=args.workers,
            scenarios=args.scenario,
            log=lambda msg: print(msg, file=sys.stderr))
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        from repro.bench.ioutil import atomic_write_json

        atomic_write_json(args.json, report.to_dict())
        print(f"chaos verdict -> {args.json}", file=sys.stderr)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
