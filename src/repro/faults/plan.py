"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a static description of *what goes wrong and
when*: every fault kind is a frozen dataclass naming its target (a
``fnmatch`` pattern over component names), its trigger (an absolute
simulated time, a probability window, or an occurrence ordinal), and
nothing else.  All randomness comes from one ``random.Random(seed)``
owned by the :class:`~repro.faults.injector.FaultInjector` that executes
the plan, and the discrete-event engine is itself deterministic, so the
same plan over the same workload reproduces the same fault sequence
bit-for-bit — the property every chaos test leans on.

Fault kinds (mirroring what the APEnet+/PEARL literature treats as
first-class link errors):

* :class:`LinkFlap` — a cable goes down at ``down_at_ps`` (and,
  optionally, comes back at ``up_at_ps``); permanent when ``up_at_ps``
  is ``None``.  This is §III-A's PEARL failure case.
* :class:`TLPCorrupt` — with probability ``probability`` a transmitted
  TLP arrives with a bad LCRC inside the window; the receiver NAKs it
  and the transmitter replays it (real latency cost, no data loss).
* :class:`TLPDrop` — the TLP vanishes on the wire; the transmitter's
  replay timer expires and retransmits.
* :class:`SwitchDrop` — a host switch silently loses a forwarded packet
  (no DLL protection inside the switch model; recovery is end to end).
* :class:`DescriptorFetchError` — the ``nth`` descriptor-table fetch of
  a matching chip returns garbage; the DMAC discards it and refetches.
* :class:`LostInterrupt` — the ``nth`` completion MSI a matching chip
  raises is swallowed before reaching the CPU.
* :class:`StuckDoorbell` — the ``nth`` doorbell register write to a
  matching chip/channel is ignored by the hardware.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.errors import FaultError


@dataclass(frozen=True)
class LinkFlap:
    """Take a matching link down at ``down_at_ps`` (back up at ``up_at_ps``)."""

    target: str
    down_at_ps: int
    up_at_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if self.down_at_ps < 0:
            raise FaultError("down_at_ps must be non-negative")
        if self.up_at_ps is not None and self.up_at_ps <= self.down_at_ps:
            raise FaultError("up_at_ps must follow down_at_ps")


@dataclass(frozen=True)
class _WindowedProbability:
    """Base for per-event probabilistic faults over a time window."""

    target: str = "*"
    probability: float = 0.01
    start_ps: int = 0
    end_ps: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability {self.probability} not in [0, 1]")
        if self.end_ps is not None and self.end_ps <= self.start_ps:
            raise FaultError("fault window must end after it starts")

    def in_window(self, now_ps: int) -> bool:
        """True while the fault is active at ``now_ps``."""
        if now_ps < self.start_ps:
            return False
        return self.end_ps is None or now_ps < self.end_ps


@dataclass(frozen=True)
class TLPCorrupt(_WindowedProbability):
    """Wire corruption: bad LCRC at the receiver -> NAK -> replay."""


@dataclass(frozen=True)
class TLPDrop(_WindowedProbability):
    """Wire loss: no ACK ever arrives -> replay-timer retransmission."""


@dataclass(frozen=True)
class SwitchDrop(_WindowedProbability):
    """A host-switch forwarding slot silently loses the packet."""


@dataclass(frozen=True)
class DescriptorFetchError:
    """The ``nth`` descriptor fetch by a matching chip returns garbage."""

    chip: str = "*"
    nth: int = 1

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise FaultError("nth is 1-based")


@dataclass(frozen=True)
class LostInterrupt:
    """The ``nth`` completion MSI raised by a matching chip is swallowed."""

    chip: str = "*"
    nth: int = 1

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise FaultError("nth is 1-based")


@dataclass(frozen=True)
class StuckDoorbell:
    """The ``nth`` doorbell write to a matching chip/channel is ignored."""

    chip: str = "*"
    channel: Optional[int] = None
    nth: int = 1

    def __post_init__(self) -> None:
        if self.nth < 1:
            raise FaultError("nth is 1-based")


Fault = Union[LinkFlap, TLPCorrupt, TLPDrop, SwitchDrop,
              DescriptorFetchError, LostInterrupt, StuckDoorbell]

_KINDS = {
    "link-flap": LinkFlap,
    "tlp-corrupt": TLPCorrupt,
    "tlp-drop": TLPDrop,
    "switch-drop": SwitchDrop,
    "descriptor-fetch-error": DescriptorFetchError,
    "lost-interrupt": LostInterrupt,
    "stuck-doorbell": StuckDoorbell,
}


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of faults to execute together."""

    seed: int = 0
    faults: Tuple[Fault, ...] = ()
    name: str = "custom"

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same faults under a different RNG seed."""
        return FaultPlan(seed=seed, faults=self.faults, name=self.name)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing (a control plan)."""
        return not self.faults

    # -- construction from CLI specs / JSON ---------------------------------

    @staticmethod
    def preset(name: str, seed: int = 0) -> "FaultPlan":
        """A built-in plan by name (see ``tca-bench --fault-plan``)."""
        if name not in PRESETS:
            raise FaultError(
                f"unknown fault preset {name!r}; choose from "
                f"{', '.join(sorted(PRESETS))}")
        return PRESETS[name].with_seed(seed)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        """Parse a CLI spec: ``preset[:seed]`` or a JSON file path.

        The JSON form is ``{"seed": N, "faults": [{"kind": "tlp-corrupt",
        ...fields...}, ...]}`` with kinds named like the CLI presets.
        """
        if spec.endswith(".json"):
            try:
                with open(spec, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                raise FaultError(f"cannot load fault plan {spec!r}: {exc}")
            return FaultPlan.from_dict(doc, name=spec)
        name, _, seed_text = spec.partition(":")
        seed = 0
        if seed_text:
            try:
                seed = int(seed_text)
            except ValueError:
                raise FaultError(f"bad fault-plan seed {seed_text!r}")
        return FaultPlan.preset(name, seed)

    @staticmethod
    def from_dict(doc: dict, name: str = "custom") -> "FaultPlan":
        """Build a plan from its JSON document form."""
        faults = []
        for entry in doc.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            cls = _KINDS.get(kind)
            if cls is None:
                raise FaultError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{', '.join(sorted(_KINDS))}")
            try:
                faults.append(cls(**entry))
            except TypeError as exc:
                raise FaultError(f"bad {kind!r} fault: {exc}")
        return FaultPlan(seed=int(doc.get("seed", 0)), faults=tuple(faults),
                         name=doc.get("name", name))


#: Built-in plans for ``tca-bench --fault-plan NAME[:SEED]``.
PRESETS = {
    # A control plan: hooks armed, nothing injected.  Runs must be
    # picosecond-identical to unhooked runs (pinned by tests/obs).
    "none": FaultPlan(name="none"),
    # Marginal cables: 1 % corrupted TLPs and 0.2 % lost TLPs everywhere.
    "flaky-links": FaultPlan(name="flaky-links", faults=(
        TLPCorrupt(probability=0.01),
        TLPDrop(probability=0.002),
    )),
    # One swallowed completion interrupt per chip (driver must recover).
    "lost-irq": FaultPlan(name="lost-irq", faults=(
        LostInterrupt(nth=1),
    )),
    # Everything at once: marginal links, a lost IRQ, a stuck doorbell
    # and a corrupted descriptor fetch.
    "chaos": FaultPlan(name="chaos", faults=(
        TLPCorrupt(probability=0.01),
        TLPDrop(probability=0.002),
        LostInterrupt(nth=1),
        StuckDoorbell(nth=1),
        DescriptorFetchError(nth=1),
    )),
}
