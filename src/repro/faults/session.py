"""Arm a fault plan on every engine an experiment builds.

Mirrors :class:`repro.obs.Observability`'s session mechanism: the bench
rigs construct their own engines internally, so ``tca-bench <exp>
--fault-plan flaky-links:7`` needs a way to reach engines it never sees.
A :class:`FaultSession` registers an engine observer that arms a *fresh*
injector per engine — each one seeded deterministically from the plan
seed and the engine's ordinal, so multi-engine runs stay reproducible
while different rigs draw independent fault sequences.
"""

from __future__ import annotations

import contextlib
from typing import List, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.core import (Engine, register_engine_observer,
                            unregister_engine_observer)


class FaultSession:
    """Per-engine fault injectors over a whole experiment run."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: (engine, injector) per armed engine, in construction order.
        self.armed: List[Tuple[Engine, FaultInjector]] = []

    def _arm(self, engine: Engine) -> None:
        injector = FaultInjector(
            self.plan.with_seed(self.plan.seed + len(self.armed)))
        injector.arm(engine)
        self.armed.append((engine, injector))

    @contextlib.contextmanager
    def session(self):
        """Arm every :class:`Engine` constructed inside the block."""
        register_engine_observer(self._arm)
        try:
            yield self
        finally:
            unregister_engine_observer(self._arm)
            self.flush_metrics()

    # -- accounting ----------------------------------------------------------

    def flush_metrics(self) -> None:
        """Mirror each injector's counters into its engine's registry."""
        for engine, injector in self.armed:
            injector.flush_metrics(engine.metrics)

    @property
    def total_injected(self) -> int:
        """Faults injected across every armed engine."""
        return sum(injector.total_injected for _, injector in self.armed)

    def summary(self) -> str:
        """Aggregate one-line summary across engines."""
        totals: dict = {}
        for _, injector in self.armed:
            for key, value in injector.counters.items():
                totals[key] = totals.get(key, 0) + value
        detail = (", ".join(f"{k}={v}" for k, v in sorted(totals.items()))
                  or "no faults injected")
        return (f"fault plan {self.plan.name!r} (seed {self.plan.seed}) "
                f"over {len(self.armed)} engine(s): {detail}")
