"""QPI inter-socket bridge with peer-to-peer write degradation.

The paper observes (§IV-A2) that PEACH2 DMA writes to a GPU on the *other*
socket — i.e. peer-to-peer PCIe traffic tunnelled over QPI — collapse to a
few hundred Mbytes/s, and concludes that "P2P access through PCIe over QPI
should be still prohibited"; PEACH2 therefore only serves GPU0/GPU1 on its
own socket.  This bridge reproduces that: CPU-originated traffic crosses
with a small gap, but device-originated (P2P) packets are serialized with a
large per-packet occupancy, capping them at a few hundred Mbytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.pcie.device import Device, DeviceId
from repro.pcie.forwarding import EgressQueue
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP
from repro.sim.core import Engine
from repro.units import ns


@dataclass(frozen=True)
class QPIParams:
    """Crossing latency plus per-packet occupancy for the two traffic classes."""

    latency_ps: int = ns(120)
    cpu_gap_ps: int = ns(4)      # CPU-originated: near line rate
    p2p_gap_ps: int = ns(800)    # device P2P: ~300 Mbytes/s at 256-B payloads


class QPIBridge(Device):
    """Two-port store-and-forward bridge between the sockets' switches."""

    def __init__(self, engine: Engine, name: str,
                 params: QPIParams = QPIParams()):
        super().__init__(engine, name)
        self.params = params
        self.port_a = Port(engine, f"{name}.a", PortRole.INTERNAL, self)
        self.port_b = Port(engine, f"{name}.b", PortRole.INTERNAL, self)
        residual = max(0, params.latency_ps - params.cpu_gap_ps)
        self._egress = {
            id(self.port_a): EgressQueue(engine, self.port_a, residual),
            id(self.port_b): EgressQueue(engine, self.port_b, residual),
        }
        # Requester IDs whose traffic counts as peer-to-peer (devices, not
        # CPU cores); registered by the node assembly.
        self.p2p_requesters: Set[DeviceId] = set()
        self.p2p_tlps = 0

    def mark_p2p_requester(self, device_id: DeviceId) -> None:
        """Traffic from ``device_id`` is device P2P and gets the slow path."""
        self.p2p_requesters.add(device_id)

    def handle_tlp(self, port: Port, tlp: TLP):
        """Cross the socket boundary with the traffic class's occupancy."""
        out = self.port_b if port is self.port_a else self.port_a
        if tlp.requester_id in self.p2p_requesters:
            self.p2p_tlps += 1
            gap = self.params.p2p_gap_ps
        else:
            gap = self.params.cpu_gap_ps
        return self._ingest(out, tlp, gap)

    def _ingest(self, out: Port, tlp: TLP, gap_ps: int):
        # Serialize the crossing at the traffic class's occupancy; a full
        # egress (stalled far side) backpressures the ingress.
        yield gap_ps
        cls = "p2p" if gap_ps == self.params.p2p_gap_ps else "cpu"
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "qpi-cross", cls=cls,
                              tlp=tlp.kind.value)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(f"qpi.{self.name}.{cls}_tlps").inc()
        accepted = self._egress[id(out)].submit(tlp)
        if not accepted.fired:
            yield accepted
