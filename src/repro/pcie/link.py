"""Full-duplex PCIe links with serialization, latency and credit flow.

Each direction of a link is an independent transmitter: packets serialize
one after another at the post-encoding link rate (so a 256-B-payload TLP
occupies the wire for its full 280-B framed footprint), then arrive at the
far port a fixed ``latency_ps`` later (PHY + propagation, store-and-forward
at the receiver).  A credit pool the size of the receiver's ingress buffer
provides backpressure: when the far device stops draining, the transmitter
stalls — exactly how posted-write flow control throttles a slow sink such
as the QPI bridge.

Data-link-layer reliability (exercised only under fault injection, see
:mod:`repro.faults`): every transmitted TLP notionally sits in a replay
buffer until acknowledged.  A TLP that arrives with a bad LCRC is NAK'd —
the transmitter pays the NAK round trip, then reserializes and retransmits
it.  A TLP lost on the wire draws no ACK at all; the replay timer expires
and the transmitter retransmits.  Either way delivery is in-order and the
payload reaches the sink intact, at a real latency cost — the PEARL /
APEnet+ style link-level retransmission the paper's §III-A names.

``take_down()`` models unplugging the cable: TLPs still in flight (already
serialized, not yet delivered) are *dropped and counted*, never delivered
after the link died, and queued TLPs die at the transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LinkError
from repro.pcie.gen import PCIeGen, link_bytes_per_ps
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP
from repro.sim.core import Engine, Signal
from repro.sim.queues import Resource, Store
from repro.units import transfer_ps


@dataclass(frozen=True)
class LinkParams:
    """Static characteristics of one physical link.

    ``latency_ps`` is the one-way packet latency beyond wire serialization
    (transmitter/receiver PHY plus propagation; larger for external cables
    than for on-board traces).  ``replay_timeout_ps`` is how long the
    transmitter waits for an ACK before retransmitting a lost TLP; a NAK'd
    (corrupted) TLP instead costs the detect + NAK-DLLP round trip of
    ``2 * latency_ps + nak_processing_ps`` before its replay.
    """

    gen: PCIeGen = PCIeGen.GEN2
    lanes: int = 8
    latency_ps: int = 120_000  # 120 ns default; calibrated values in model/
    rx_credits: int = 32
    #: Transmit-queue depth; bounded so that a stalled receiver
    #: backpressures the sender instead of buffering unboundedly.
    tx_queue_tlps: int = 4
    #: ACK-timeout before a lost TLP is replayed (PCIe replay timer).
    replay_timeout_ps: int = 1_000_000  # 1 us
    #: Receiver LCRC check + NAK DLLP turnaround at the far end.
    nak_processing_ps: int = 8_000

    @property
    def bytes_per_ps(self) -> float:
        """Post-encoding data rate."""
        return link_bytes_per_ps(self.gen, self.lanes)


class _Direction:
    """One simplex half of a link: tx queue, wire, credits, delivery."""

    def __init__(self, engine: Engine, name: str, source: Port, sink: Port,
                 params: LinkParams, link: "PCIeLink"):
        self.engine = engine
        self.name = name
        self.source = source
        self.sink = sink
        self.params = params
        self.link = link
        self.tx = Store(engine, capacity=params.tx_queue_tlps,
                        name=f"{name}.tx")
        # Credits mirror the *sink's* actual ingress buffer so the
        # guaranteed-space invariant in _deliver holds.
        credit_count = sink.ingress.capacity or params.rx_credits
        self.credits = Resource(engine, credit_count, name=f"{name}.fc")
        #: Goodput: framed bytes / TLPs accepted onto the wire toward
        #: delivery — each TLP counts **once**, however many times the DLL
        #: had to retransmit it.
        self.bytes_carried = 0
        self.tlps_carried = 0
        #: Wire traffic: framed bytes / TLPs serialized, **including**
        #: every NAK/replay retransmission.  ``wire - carried`` is the
        #: bandwidth the DLL burned on reliability.
        self.wire_bytes_carried = 0
        self.wire_tlps_carried = 0
        #: TLPs that died with the link (queued or in flight at take_down).
        self.tlps_dropped = 0
        #: DLL retransmissions (NAK'd + replay-timer expirations).
        self.replays = 0
        #: Replays caused by receiver NAKs (bad LCRC).
        self.naks = 0
        # Serialization times keyed on framed size: TLP trains are made of
        # a handful of distinct wire footprints (MPS-sized payloads plus a
        # header-only straggler), so the float division in transfer_ps
        # collapses to a dict hit on every TLP after the first.
        self._serialize_ps: dict = {}
        # Metric instrument handles, bound once per registry instead of
        # paying an f-string + registry lookup on every TLP (hot path).
        self._bound_metrics = None
        self._m_busy = None
        self._m_tlps = None
        self._m_bytes = None
        self._m_wire_tlps = None
        self._m_wire_bytes = None
        engine.process(self._transmitter(), name=f"{name}.xmit")
        # Return a credit whenever the sink device drains one packet.
        sink.ingress_drained = self._on_drained

    def _bind_metrics(self, registry) -> None:
        """(Re)bind per-TLP instrument handles to ``registry``."""
        self._bound_metrics = registry
        name = self.name
        self._m_busy = registry.gauge(f"link.{name}.busy")
        self._m_tlps = registry.counter(f"link.{name}.tlps")
        self._m_bytes = registry.counter(f"link.{name}.bytes")
        self._m_wire_tlps = registry.counter(f"link.{name}.wire_tlps")
        self._m_wire_bytes = registry.counter(f"link.{name}.wire_bytes")

    def _on_drained(self) -> None:
        self.credits.release()

    def _drop(self, tlp: TLP, where: str) -> None:
        self.tlps_dropped += 1
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "link-drop", where=where,
                              tlp=tlp.kind.value, bytes=tlp.wire_bytes)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(f"link.{self.name}.dropped").inc()

    def _transmitter(self):
        # The replay loop runs inline in the transmitter: the direction
        # is occupied for the whole NAK/replay sequence of one TLP, which
        # keeps delivery strictly in order (the replay buffer retransmits
        # before anything younger may pass) — and, when no fault fires,
        # the event sequence is identical to a replay-free transmitter.
        engine = self.engine
        bytes_per_ps = self.params.bytes_per_ps
        latency_ps = self.params.latency_ps
        link = self.link
        tx_get = self.tx.get
        acquire_credit = self.credits.acquire
        serialize_cache = self._serialize_ps
        while True:
            tlp = yield tx_get()
            if not link.up:
                # The cable died while this packet sat in the tx queue.
                self._drop(tlp, where="tx-queue")
                continue
            yield acquire_credit()
            epoch = link.epoch
            wire_bytes = tlp.wire_bytes
            serialize_ps = serialize_cache.get(wire_bytes)
            if serialize_ps is None:
                serialize_ps = transfer_ps(wire_bytes, bytes_per_ps)
                serialize_cache[wire_bytes] = serialize_ps
            while True:
                metrics = engine.metrics
                if metrics is not None:
                    if metrics is not self._bound_metrics:
                        self._bind_metrics(metrics)
                    self._m_busy.set(1, engine.now_ps)
                yield serialize_ps
                self.wire_bytes_carried += wire_bytes
                self.wire_tlps_carried += 1
                tracer = engine.tracer
                if tracer is not None:
                    tracer.emit(engine.now_ps, self.name, "link-tx",
                                dur_ps=serialize_ps,
                                bytes=wire_bytes,
                                tlp=tlp.kind.value)
                metrics = engine.metrics
                if metrics is not None:
                    if metrics is not self._bound_metrics:
                        self._bind_metrics(metrics)
                    self._m_busy.set(0, engine.now_ps)
                    self._m_wire_tlps.inc()
                    self._m_wire_bytes.inc(wire_bytes)

                faults = engine.faults
                verdict = ("ok" if faults is None
                           else faults.link_verdict(self.name))
                if verdict == "ok":
                    self.bytes_carried += wire_bytes
                    self.tlps_carried += 1
                    if metrics is not None:
                        self._m_tlps.inc()
                        self._m_bytes.inc(wire_bytes)
                    engine.after(latency_ps, self._deliver, tlp, epoch)
                    break

                # The TLP never gets ACK'd: pay the detection cost, then
                # retransmit from the replay buffer.
                self.replays += 1
                if verdict == "corrupt":
                    self.naks += 1
                    if self.engine.tracer is not None:
                        self.engine.trace(self.name, "link-nak",
                                          tlp=tlp.kind.value)
                    if self.engine.metrics is not None:
                        self.engine.metrics.counter(
                            f"link.{self.name}.naks").inc()
                    # Corrupted TLP reaches the receiver (latency), fails
                    # the LCRC check, the NAK DLLP travels back (latency).
                    yield (2 * self.params.latency_ps
                           + self.params.nak_processing_ps)
                else:  # dropped on the wire: only the replay timer notices
                    if self.engine.tracer is not None:
                        self.engine.trace(self.name, "link-replay-timeout",
                                          tlp=tlp.kind.value)
                    yield self.params.replay_timeout_ps
                if self.engine.metrics is not None:
                    self.engine.metrics.counter(
                        f"link.{self.name}.replays").inc()
                if not self.link.up or self.link.epoch != epoch:
                    # The link died mid-replay; the sink will never drain
                    # this packet, so return its flow-control credit.
                    self._drop(tlp, where="replay")
                    self.credits.release()
                    break

    def _deliver(self, tlp: TLP, epoch: int) -> None:
        if not self.link.up or self.link.epoch != epoch:
            # The cable died (or flapped) while this packet flew: it is
            # lost, never delivered on a link that already went down.
            self._drop(tlp, where="in-flight")
            self.credits.release()
            return
        # Space is guaranteed: a credit is held until the sink drains.
        if not self.sink.ingress.try_put(tlp):  # pragma: no cover - invariant
            raise LinkError(f"{self.name}: rx overflow despite credits")


class PCIeLink:
    """A trained link between an RC-facing and an EP-facing port."""

    def __init__(self, engine: Engine, port_a: Port, port_b: Port,
                 params: Optional[LinkParams] = None, name: str = ""):
        params = params or LinkParams()
        if not port_a.role.can_train_with(port_b.role):
            raise LinkError(
                f"link {name!r}: cannot train {port_a.name}({port_a.role.value})"
                f" with {port_b.name}({port_b.role.value})")
        self.engine = engine
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.params = params
        self.up = True
        #: Bumped on every take_down so in-flight packets of an earlier
        #: link session can never be delivered after a flap.
        self.epoch = 0
        #: Simulated time of the most recent take_down (for time-to-heal).
        self.down_since_ps: Optional[int] = None
        self._dir_ab = _Direction(engine, f"{self.name}:a->b", port_a, port_b,
                                  params, self)
        self._dir_ba = _Direction(engine, f"{self.name}:b->a", port_b, port_a,
                                  params, self)
        self._by_source = {id(port_a): self._dir_ab, id(port_b): self._dir_ba}
        port_a.attach(self)
        port_b.attach(self)
        if engine.faults is not None:
            engine.faults.register_link(self)

    def transmit(self, source: Port, tlp: TLP) -> Signal:
        """Queue ``tlp`` for the direction whose transmitter is ``source``."""
        if not self.up:
            raise LinkError(f"link {self.name} is down")
        direction = self._by_source.get(id(source))
        if direction is None:
            raise LinkError(f"{source.name} is not an end of link {self.name}")
        return direction.tx.put(tlp)

    def take_down(self) -> None:
        """Simulate unplugging the external cable.

        Packets already serialized onto the wire are dropped (and counted
        in :attr:`tlps_dropped`) instead of being delivered after the
        link died; packets still queued die at the transmitter.
        """
        if not self.up:
            return
        self.up = False
        self.epoch += 1
        self.down_since_ps = self.engine.now_ps
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "link-down")

    def bring_up(self) -> None:
        """Re-train the link after :meth:`take_down`."""
        if self.up:
            return
        self.up = True
        self.down_since_ps = None
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "link-up")

    @property
    def bytes_carried(self) -> int:
        """Goodput: framed bytes carried in both directions (one count per
        TLP, replays excluded)."""
        return self._dir_ab.bytes_carried + self._dir_ba.bytes_carried

    @property
    def tlps_carried(self) -> int:
        """Goodput: packets carried in both directions (replays excluded)."""
        return self._dir_ab.tlps_carried + self._dir_ba.tlps_carried

    @property
    def wire_bytes_carried(self) -> int:
        """Wire traffic: framed bytes serialized in both directions,
        including every NAK/replay retransmission."""
        return (self._dir_ab.wire_bytes_carried
                + self._dir_ba.wire_bytes_carried)

    @property
    def wire_tlps_carried(self) -> int:
        """Wire traffic: serializations in both directions, replays
        included."""
        return (self._dir_ab.wire_tlps_carried
                + self._dir_ba.wire_tlps_carried)

    @property
    def tlps_dropped(self) -> int:
        """Packets that died with the link, both directions."""
        return self._dir_ab.tlps_dropped + self._dir_ba.tlps_dropped

    @property
    def replays(self) -> int:
        """DLL retransmissions in both directions."""
        return self._dir_ab.replays + self._dir_ba.replays

    @property
    def naks(self) -> int:
        """Receiver NAKs (bad LCRC) in both directions."""
        return self._dir_ab.naks + self._dir_ba.naks
