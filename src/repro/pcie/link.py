"""Full-duplex PCIe links with serialization, latency and credit flow.

Each direction of a link is an independent transmitter: packets serialize
one after another at the post-encoding link rate (so a 256-B-payload TLP
occupies the wire for its full 280-B framed footprint), then arrive at the
far port a fixed ``latency_ps`` later (PHY + propagation, store-and-forward
at the receiver).  A credit pool the size of the receiver's ingress buffer
provides backpressure: when the far device stops draining, the transmitter
stalls — exactly how posted-write flow control throttles a slow sink such
as the QPI bridge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import LinkError
from repro.pcie.gen import PCIeGen, link_bytes_per_ps
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP
from repro.sim.core import Engine, Signal
from repro.sim.queues import Resource, Store
from repro.units import transfer_ps


@dataclass(frozen=True)
class LinkParams:
    """Static characteristics of one physical link.

    ``latency_ps`` is the one-way packet latency beyond wire serialization
    (transmitter/receiver PHY plus propagation; larger for external cables
    than for on-board traces).
    """

    gen: PCIeGen = PCIeGen.GEN2
    lanes: int = 8
    latency_ps: int = 120_000  # 120 ns default; calibrated values in model/
    rx_credits: int = 32
    #: Transmit-queue depth; bounded so that a stalled receiver
    #: backpressures the sender instead of buffering unboundedly.
    tx_queue_tlps: int = 4

    @property
    def bytes_per_ps(self) -> float:
        """Post-encoding data rate."""
        return link_bytes_per_ps(self.gen, self.lanes)


class _Direction:
    """One simplex half of a link: tx queue, wire, credits, delivery."""

    def __init__(self, engine: Engine, name: str, source: Port, sink: Port,
                 params: LinkParams):
        self.engine = engine
        self.name = name
        self.source = source
        self.sink = sink
        self.params = params
        self.tx = Store(engine, capacity=params.tx_queue_tlps,
                        name=f"{name}.tx")
        # Credits mirror the *sink's* actual ingress buffer so the
        # guaranteed-space invariant in _deliver holds.
        credit_count = sink.ingress.capacity or params.rx_credits
        self.credits = Resource(engine, credit_count, name=f"{name}.fc")
        self.bytes_carried = 0
        self.tlps_carried = 0
        engine.process(self._transmitter(), name=f"{name}.xmit")
        # Return a credit whenever the sink device drains one packet.
        sink.ingress_drained = self._on_drained

    def _on_drained(self) -> None:
        self.credits.release()

    def _transmitter(self):
        bytes_per_ps = self.params.bytes_per_ps
        while True:
            tlp = yield self.tx.get()
            yield self.credits.acquire()
            if self.engine.metrics is not None:
                self.engine.metrics.gauge(f"link.{self.name}.busy").set(1)
            serialize_ps = transfer_ps(tlp.wire_bytes, bytes_per_ps)
            yield serialize_ps
            self.bytes_carried += tlp.wire_bytes
            self.tlps_carried += 1
            if self.engine.tracer is not None:
                self.engine.trace(self.name, "link-tx", dur_ps=serialize_ps,
                                  bytes=tlp.wire_bytes, tlp=tlp.kind.value)
            if self.engine.metrics is not None:
                metrics = self.engine.metrics
                metrics.gauge(f"link.{self.name}.busy").set(0)
                metrics.counter(f"link.{self.name}.tlps").inc()
                metrics.counter(f"link.{self.name}.bytes").inc(tlp.wire_bytes)
            self.engine.after(self.params.latency_ps, self._deliver, tlp)

    def _deliver(self, tlp: TLP) -> None:
        # Space is guaranteed: a credit is held until the sink drains.
        if not self.sink.ingress.try_put(tlp):  # pragma: no cover - invariant
            raise LinkError(f"{self.name}: rx overflow despite credits")


class PCIeLink:
    """A trained link between an RC-facing and an EP-facing port."""

    def __init__(self, engine: Engine, port_a: Port, port_b: Port,
                 params: Optional[LinkParams] = None, name: str = ""):
        params = params or LinkParams()
        if not port_a.role.can_train_with(port_b.role):
            raise LinkError(
                f"link {name!r}: cannot train {port_a.name}({port_a.role.value})"
                f" with {port_b.name}({port_b.role.value})")
        self.engine = engine
        self.name = name or f"{port_a.name}<->{port_b.name}"
        self.params = params
        self.up = True
        self._dir_ab = _Direction(engine, f"{self.name}:a->b", port_a, port_b,
                                  params)
        self._dir_ba = _Direction(engine, f"{self.name}:b->a", port_b, port_a,
                                  params)
        self._by_source = {id(port_a): self._dir_ab, id(port_b): self._dir_ba}
        port_a.attach(self)
        port_b.attach(self)

    def transmit(self, source: Port, tlp: TLP) -> Signal:
        """Queue ``tlp`` for the direction whose transmitter is ``source``."""
        if not self.up:
            raise LinkError(f"link {self.name} is down")
        direction = self._by_source.get(id(source))
        if direction is None:
            raise LinkError(f"{source.name} is not an end of link {self.name}")
        return direction.tx.put(tlp)

    def take_down(self) -> None:
        """Simulate unplugging the external cable."""
        self.up = False

    def bring_up(self) -> None:
        """Re-train the link after :meth:`take_down`."""
        self.up = True

    @property
    def bytes_carried(self) -> int:
        """Total framed bytes carried in both directions."""
        return self._dir_ab.bytes_carried + self._dir_ba.bytes_carried

    @property
    def tlps_carried(self) -> int:
        """Total packets carried in both directions."""
        return self._dir_ab.tlps_carried + self._dir_ba.tlps_carried
