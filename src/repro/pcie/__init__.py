"""PCI Express substrate: links, TLPs, switches, address spaces.

This package models PCIe at the Transaction Layer Packet (TLP) level with
the exact per-packet framing overhead the paper's Eq. (1) uses:

    16 B TLP header + 2 B DLL sequence + 4 B LCRC + 1 B start + 1 B stop

per payload of at most the Max Payload Size (256 B on the evaluated
platform).  Links are full duplex, store-and-forward per hop, with
credit-based backpressure; read requests are answered by completions with
data, subject to the completer's service latency and outstanding-request
limit — which is what produces the paper's asymmetric read/write curves.
"""

from repro.pcie.gen import PCIeGen, link_bytes_per_ps
from repro.pcie.tlp import TLP, TLPKind, tlp_wire_bytes, TLP_OVERHEAD_BYTES
from repro.pcie.packetizer import split_transfer, split_read_requests
from repro.pcie.address import AddressSpace, BAR, Region
from repro.pcie.device import Device, DeviceId
from repro.pcie.link import LinkParams, PCIeLink
from repro.pcie.port import Port, PortRole
from repro.pcie.switch import PCIeSwitch, SwitchParams
from repro.pcie.qpi import QPIBridge, QPIParams

__all__ = [
    "PCIeGen",
    "link_bytes_per_ps",
    "TLP",
    "TLPKind",
    "tlp_wire_bytes",
    "TLP_OVERHEAD_BYTES",
    "split_transfer",
    "split_read_requests",
    "AddressSpace",
    "BAR",
    "Region",
    "Device",
    "DeviceId",
    "LinkParams",
    "PCIeLink",
    "Port",
    "PortRole",
    "PCIeSwitch",
    "SwitchParams",
    "QPIBridge",
    "QPIParams",
]
