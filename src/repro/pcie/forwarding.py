"""Bounded egress queues: pipelined forwarding with real backpressure.

Every store-and-forward element (switch, PEACH2 crossbar, QPI/NTB bridge)
forwards packets with a *pipelined* latency — a packet takes
``forward_latency`` to traverse, but a new one can enter every
``issue_interval``.  The egress stage here preserves that timing while
staying **bounded**: when the downstream link (whose transmit queue is
also bounded) stops draining — a QPI-throttled peer, a busy completer —
the egress queue fills, the ingress handler blocks on ``submit``, the
ingress buffer fills, link credits run out, and the stall propagates all
the way back to the traffic source, exactly like PCIe flow control.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import LinkError
from repro.pcie.port import Port
from repro.pcie.tlp import TLP
from repro.sim.core import Engine, Signal
from repro.sim.queues import Store


class EgressQueue:
    """Latency-preserving, bounded queue in front of one output port.

    For ring directions the queue also implements **bubble flow control**
    (Carrión et al.): packets *injected into* the ring (from the host or
    the DMA engine) may only enqueue while at least ``bubble`` slots stay
    free, whereas ring *transit* packets may use every slot.  Transit
    therefore never loses the free "hole" it needs to keep rotating, so a
    ring of bounded queues cannot deadlock under cyclic saturation — the
    situation an all-nodes-shift workload creates (E19).
    """

    BUBBLE_SLOTS = 2

    def __init__(self, engine: Engine, port: Port, residual_latency_ps: int,
                 capacity: int = 8, name: str = ""):
        self.engine = engine
        self.port = port
        self.residual_latency_ps = max(0, residual_latency_ps)
        self.name = name or f"{port.name}.egress"
        self.store = Store(engine, capacity=capacity, name=self.name)
        self.tlps_emitted = 0
        #: Packets abandoned because the output link died (faulted runs).
        self.tlps_dropped = 0
        self.injections_held = 0
        self._injection_waiters = []  # (signal, tlp) FIFO
        # Depth-gauge handle, bound once per registry (sampled per TLP).
        self._bound_metrics = None
        self._m_depth = None
        engine.process(self._emitter(), name=f"{self.name}.emit")

    def _sample_depth(self) -> None:
        """Time-weighted egress depth sample (cheap no-op when metrics off)."""
        metrics = self.engine.metrics
        if metrics is not None:
            if metrics is not self._bound_metrics:
                self._bound_metrics = metrics
                self._m_depth = metrics.gauge(f"egress.{self.name}.depth")
            self._m_depth.set(len(self.store))

    def submit(self, tlp: TLP) -> Signal:
        """Hand a transit/ejection packet to the egress stage.

        The returned signal fires when the packet is *accepted* (queued);
        a full queue delays it — that is the backpressure edge.
        """
        accepted = self.store.put((self.engine.now_ps, tlp))
        if self.engine.metrics is not None:
            self._sample_depth()
        return accepted

    def submit_injection(self, tlp: TLP) -> Signal:
        """Inject a new packet into a ring direction (bubble rule).

        Enqueues only while ``BUBBLE_SLOTS`` slots remain free; otherwise
        the injection waits for transit to drain — ring packets always
        keep a circulating hole.
        """
        accepted = self.engine.signal(f"{self.name}.inject")
        if not self._injection_waiters and self._has_bubble():
            self.store.put((self.engine.now_ps, tlp))
            self._sample_depth()
            accepted.fire()
        else:
            self.injections_held += 1
            self._injection_waiters.append((accepted, tlp))
        return accepted

    def _has_bubble(self) -> bool:
        free = self.store.free_slots
        return free is None or free >= self.BUBBLE_SLOTS

    def _admit_injections(self) -> None:
        while self._injection_waiters and self._has_bubble():
            accepted, tlp = self._injection_waiters.pop(0)
            self.store.put((self.engine.now_ps, tlp))
            self._sample_depth()
            accepted.fire()

    def _emitter(self):
        engine = self.engine
        store_get = self.store.get
        port_send = self.port.send
        residual_latency_ps = self.residual_latency_ps
        while True:
            enqueued_ps, tlp = yield store_get()
            if engine.metrics is not None:
                self._sample_depth()
            if self._injection_waiters:
                self._admit_injections()
            # Let the pipeline latency elapse relative to ingress time.
            target = enqueued_ps + residual_latency_ps
            if target > engine.now_ps:
                yield target - engine.now_ps
            try:
                accepted = port_send(tlp)
            except LinkError:
                # The output link is down.  Without fault injection that
                # is a configuration bug and must stay fatal; under an
                # armed fault plan it is an injected cable failure, and a
                # store-and-forward stage drops the packet (counted) so
                # the fabric can keep moving and the healed route can
                # carry the retry.
                if self.engine.faults is None:
                    raise
                self.tlps_dropped += 1
                # The dead link never serialized this packet, so no
                # link-level counter saw it: record the drop in the
                # fabric-wide fault accounting here (exactly once) so
                # healed-mid-flight losses show up in ``--metrics`` and
                # chaos reports instead of being under-counted.
                self.engine.faults.count("tlps_dropped_egress")
                if self.engine.tracer is not None:
                    self.engine.trace(self.name, "egress-drop",
                                      tlp=tlp.kind.value)
                if self.engine.metrics is not None:
                    self.engine.metrics.counter(
                        f"egress.{self.name}.dropped").inc()
                continue
            if not accepted.fired:
                yield accepted
            self.tlps_emitted += 1
