"""PCIe configuration space: IDs, BAR sizing probes, capabilities.

Models the part of PCIe that runs at boot: every function exposes a 4-KiB
configuration space with vendor/device IDs, class code, and Base Address
Registers that the BIOS *sizes* with the standard probe protocol (write
all-ones, read back the size mask, then program the base).  The node's
BIOS performs a real scan over these spaces during
:meth:`~repro.hw.node.ComputeNode.enumerate`-time BAR assignment — which
is exactly the step the paper's §V critique of NTB is about ("during the
BIOS scan at boot time, the host must recognize the EPs").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

CONFIG_SPACE_BYTES = 4096

# Standard header offsets (type 0).
REG_VENDOR_ID = 0x00
REG_DEVICE_ID = 0x02
REG_COMMAND = 0x04
REG_STATUS = 0x06
REG_CLASS_CODE = 0x09
REG_BAR0 = 0x10
REG_CAP_POINTER = 0x34

# Command-register bits.
CMD_MEMORY_SPACE = 0x2
CMD_BUS_MASTER = 0x4

# Capability IDs.
CAP_MSI = 0x05
CAP_PCIE = 0x10

#: Vendor IDs used by the modelled devices.
VENDOR_NVIDIA = 0x10DE
VENDOR_MELLANOX = 0x15B3
VENDOR_UNIV_TSUKUBA = 0x1813  # PEACH2's experimental ID
VENDOR_PLX = 0x10B5


@dataclass
class BARDescriptor:
    """One implemented BAR: its size and the address the BIOS assigned."""

    index: int
    size: int
    is_64bit: bool = True
    prefetchable: bool = True
    assigned_base: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size & (self.size - 1) or self.size < 128:
            raise ConfigError(
                f"BAR{self.index}: size {self.size:#x} must be a power of "
                "two >= 128")

    @property
    def size_mask(self) -> int:
        """What a sizing probe reads back: ones above the size bits."""
        return (~(self.size - 1)) & 0xFFFF_FFFF_FFFF_FFFF


@dataclass
class Capability:
    """A capability-list entry."""

    cap_id: int
    payload: bytes = b""


class ConfigSpace:
    """Type-0 configuration space of one PCIe function."""

    def __init__(self, vendor_id: int, device_id: int, class_code: int,
                 name: str = ""):
        self.name = name
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.class_code = class_code
        self.command = 0
        self.bars: Dict[int, BARDescriptor] = {}
        self.capabilities: List[Capability] = []
        self._probing: Dict[int, bool] = {}

    # -- construction -----------------------------------------------------------

    def add_bar(self, index: int, size: int, is_64bit: bool = True,
                prefetchable: bool = True) -> BARDescriptor:
        """Implement a BAR (64-bit BARs occupy two register slots)."""
        if not 0 <= index <= 5:
            raise ConfigError(f"BAR index {index} out of range")
        if index in self.bars:
            raise ConfigError(f"{self.name}: BAR{index} already implemented")
        if is_64bit and index >= 5:
            raise ConfigError("a 64-bit BAR cannot start at BAR5")
        bar = BARDescriptor(index, size, is_64bit, prefetchable)
        self.bars[index] = bar
        return bar

    def add_capability(self, capability: Capability) -> None:
        """Append to the capability list."""
        self.capabilities.append(capability)

    def has_capability(self, cap_id: int) -> bool:
        """True if the capability list contains ``cap_id``."""
        return any(c.cap_id == cap_id for c in self.capabilities)

    # -- the BIOS-facing protocol ---------------------------------------------------

    def probe_bar_size(self, index: int) -> int:
        """The sizing handshake: write all-ones, read the mask back.

        Returns the BAR's size (0 for an unimplemented BAR, as reading
        zeros would indicate).
        """
        bar = self.bars.get(index)
        if bar is None:
            return 0
        self._probing[index] = True
        return bar.size

    def program_bar(self, index: int, base: int) -> None:
        """Write the assigned base address after a sizing probe."""
        bar = self.bars.get(index)
        if bar is None:
            raise ConfigError(f"{self.name}: BAR{index} not implemented")
        if not self._probing.get(index):
            raise ConfigError(
                f"{self.name}: BAR{index} programmed without a sizing probe")
        if base % bar.size:
            raise ConfigError(
                f"{self.name}: BAR{index} base {base:#x} not naturally "
                f"aligned to {bar.size:#x}")
        bar.assigned_base = base
        self._probing[index] = False

    def enable(self) -> None:
        """Set Memory Space + Bus Master Enable (end of enumeration)."""
        for bar in self.bars.values():
            if bar.assigned_base is None:
                raise ConfigError(
                    f"{self.name}: enabling with unprogrammed BAR{bar.index}")
        self.command |= CMD_MEMORY_SPACE | CMD_BUS_MASTER

    @property
    def enabled(self) -> bool:
        """True once memory decoding and bus mastering are on."""
        return bool(self.command & CMD_MEMORY_SPACE)

    def describe(self) -> str:
        """lspci-style one-device summary."""
        lines = [f"{self.name}: {self.vendor_id:04x}:{self.device_id:04x} "
                 f"class {self.class_code:02x} "
                 f"{'enabled' if self.enabled else 'disabled'}"]
        for index in sorted(self.bars):
            bar = self.bars[index]
            base = (f"0x{bar.assigned_base:x}" if bar.assigned_base is not None
                    else "unassigned")
            width = "64-bit" if bar.is_64bit else "32-bit"
            lines.append(f"  BAR{index}: {base} [size {bar.size:#x}, {width}"
                         f"{', prefetchable' if bar.prefetchable else ''}]")
        for cap in self.capabilities:
            lines.append(f"  capability 0x{cap.cap_id:02x}")
        return "\n".join(lines)
