"""Ports: the attachment points between devices and links.

A port has a *role* — Root Complex side or Endpoint side; PCIe only trains
a link between an RC-facing (downstream) and an EP-facing (upstream) pair,
which is exactly why PEACH2 fixes Port E as EP and Port W as RC so that a
ring can always be cabled (§III-D), and why Port S must be role-selectable
to couple two rings.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import LinkError
from repro.sim.core import Engine, Signal
from repro.sim.queues import Store
from repro.pcie.tlp import TLP

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.device import Device
    from repro.pcie.link import PCIeLink


class PortRole(enum.Enum):
    """Which side of a link the port plays."""

    RC = "root-complex"
    EP = "endpoint"
    INTERNAL = "internal"  # on-die attach, exempt from RC/EP pairing

    def can_train_with(self, other: "PortRole") -> bool:
        """PCIe trains RC<->EP; INTERNAL pairs with anything internal."""
        if self is PortRole.INTERNAL or other is PortRole.INTERNAL:
            return self is other
        return self is not other


class Port:
    """One link attachment point of a device.

    Egress: :meth:`send` enqueues onto the attached link's transmit queue.
    Ingress: the link deposits packets into :attr:`ingress` (a bounded
    store modelling receive flow-control credits); the owning device drains
    it via its ingress loop.
    """

    def __init__(self, engine: Engine, name: str, role: PortRole,
                 owner: "Device", rx_credits: int = 32):
        self.engine = engine
        self.name = name
        self.role = role
        self.owner = owner
        self.link: Optional["PCIeLink"] = None
        self.ingress = Store(engine, capacity=rx_credits, name=f"{name}.rx")
        # Set by the link direction feeding this port: called once per
        # drained packet so the far transmitter gets its credit back.
        self.ingress_drained = None  # type: Optional[callable]
        self.tlps_sent = 0
        self.tlps_received = 0
        self._ingress_proc = engine.process(self._ingress_loop(),
                                            name=f"{name}.ingress")

    @property
    def connected(self) -> bool:
        """True once a link is attached and trained."""
        return self.link is not None

    def attach(self, link: "PCIeLink") -> None:
        """Called by :class:`PCIeLink` when the cable is plugged in."""
        if self.link is not None:
            raise LinkError(f"port {self.name} already linked")
        self.link = link

    def detach(self) -> None:
        """Unplug the cable (used by link-failure experiments)."""
        self.link = None

    def send(self, tlp: TLP) -> Signal:
        """Queue a packet for transmission; fires when accepted by the link."""
        if self.link is None:
            raise LinkError(f"port {self.name} is not connected")
        self.tlps_sent += 1
        tracer = self.engine.tracer
        if tracer is not None:
            tracer.emit(self.engine.now_ps, self.name, "tlp-sent",
                        tlp=tlp.kind.value, addr=tlp.address,
                        bytes=tlp.wire_bytes)
        return self.link.transmit(self, tlp)

    def _ingress_loop(self):
        """Drain the ingress queue into the owner's handler, in order."""
        engine = self.engine
        ingress_get = self.ingress.get
        handle_tlp = self.owner.handle_tlp
        handle_name = f"{self.name}.handle"
        while True:
            tlp = yield ingress_get()
            self.tlps_received += 1
            tracer = engine.tracer
            if tracer is not None:
                tracer.emit(engine.now_ps, self.name, "tlp-recv",
                            tlp=tlp.kind.value, addr=tlp.address,
                            bytes=tlp.wire_bytes)
            drained = self.ingress_drained
            if drained is not None:
                drained()
            result = handle_tlp(self, tlp)
            if result is not None:
                # Multi-step handling: run it to completion before the next
                # packet, preserving PCIe's per-link ordering.
                yield engine.process(result, name=handle_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Port({self.name!r}, {self.role.value})"
