"""PCIe address space: regions, BARs, and interval lookup.

Each compute node owns a single flat 64-bit PCIe address space shared by
every device below its root complexes (§III-C: "all of the devices ...
share a single PCIe address space").  Regions are non-overlapping,
naturally-aligned windows claimed by devices (host DRAM window, GPU BAR1,
PEACH2's control BAR and its huge TCA window).  Lookup is a bisect over
sorted bases — the hot path of every routed packet.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import AddressError, ConfigError


def is_aligned(value: int, alignment: int) -> bool:
    """True if ``value`` is a multiple of ``alignment`` (a power of two)."""
    return value % alignment == 0


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    return -(-value // alignment) * alignment


@dataclass(frozen=True)
class Region:
    """A half-open address window ``[base, base + size)``."""

    base: int
    size: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise ConfigError(f"region {self.name!r} has negative base")

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def contains(self, address: int, length: int = 1) -> bool:
        """True if ``[address, address+length)`` lies inside the region."""
        return self.base <= address and address + length <= self.end

    def offset_of(self, address: int) -> int:
        """Offset of ``address`` from the region base (must be inside)."""
        if not self.contains(address):
            raise AddressError(
                f"0x{address:x} outside region {self.name!r} "
                f"[0x{self.base:x}, 0x{self.end:x})")
        return address - self.base

    def overlaps(self, other: "Region") -> bool:
        """True if the two regions share any address."""
        return self.base < other.end and other.base < self.end


@dataclass(frozen=True)
class BAR:
    """A Base Address Register as assigned by the BIOS at enumeration.

    ``index`` is the BAR number on the device, ``region`` the window the
    BIOS carved out of the node's address space.
    """

    index: int
    region: Region

    @property
    def base(self) -> int:
        """Assigned base address."""
        return self.region.base

    @property
    def size(self) -> int:
        """Window size in bytes."""
        return self.region.size


class AddressSpace:
    """Sorted, non-overlapping set of regions, each owned by a target.

    ``target`` is opaque to this class — switches store ports, memories
    store themselves.  ``lookup`` raises :class:`AddressError` for unmapped
    addresses, which models a PCIe Unsupported Request.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._bases: List[int] = []
        self._regions: List[Region] = []
        self._targets: List[Any] = []

    def __len__(self) -> int:
        return len(self._regions)

    @property
    def regions(self) -> List[Region]:
        """All mapped regions in ascending base order (copy)."""
        return list(self._regions)

    def add(self, region: Region, target: Any) -> Region:
        """Map ``region`` to ``target``; regions must not overlap."""
        idx = bisect_right(self._bases, region.base)
        for neighbor in self._regions[max(0, idx - 1):idx + 1]:
            if neighbor.overlaps(region):
                raise ConfigError(
                    f"{self.name}: region {region.name!r} "
                    f"[0x{region.base:x},0x{region.end:x}) overlaps "
                    f"{neighbor.name!r} [0x{neighbor.base:x},0x{neighbor.end:x})")
        self._bases.insert(idx, region.base)
        self._regions.insert(idx, region)
        self._targets.insert(idx, target)
        return region

    def lookup(self, address: int, length: int = 1) -> Any:
        """Target owning ``[address, address+length)``; raises if unmapped.

        A range straddling two regions is rejected: the packetizer always
        splits at 4-KiB boundaries and regions are at least page aligned,
        so a straddle means a configuration bug.
        """
        _, target = self.lookup_region(address, length)
        return target

    def lookup_region(self, address: int, length: int = 1):
        """(region, target) pair owning the given range."""
        idx = bisect_right(self._bases, address) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.contains(address, length):
                return region, self._targets[idx]
            if region.contains(address):
                raise AddressError(
                    f"{self.name}: range 0x{address:x}+{length} straddles "
                    f"the end of region {region.name!r}")
        raise AddressError(f"{self.name}: unmapped address 0x{address:x}")

    def find(self, name: str) -> Region:
        """Region by name (for tests and diagnostics)."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)
