"""Splitting memory transfers into TLP-sized pieces.

PCIe rules observed here:

* a Memory Write payload never exceeds the Max Payload Size (MPS) and never
  crosses a 4-KiB address boundary;
* a Memory Read request never asks for more than the Max Read Request Size
  (MRRS) and never crosses a 4-KiB boundary either.

The evaluated platform uses MPS = 256 B (§IV-A1), which is what makes
Eq. (1) come out to 3.66 Gbytes/s.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import PCIeError

PAGE_BOUNDARY = 4096
DEFAULT_MPS = 256
DEFAULT_MRRS = 256

#: Below this many chunks the scalar loop beats the numpy fixed cost.
_VECTOR_MIN_CHUNKS = 16

Chunk = Tuple[int, int]  # (address, nbytes)


def _split(address: int, nbytes: int, max_chunk: int) -> Iterator[Chunk]:
    if nbytes < 0:
        raise PCIeError(f"negative transfer length {nbytes}")
    if max_chunk <= 0:
        raise PCIeError(f"invalid chunk limit {max_chunk}")
    offset = 0
    while offset < nbytes:
        addr = address + offset
        to_boundary = PAGE_BOUNDARY - (addr % PAGE_BOUNDARY)
        take = min(nbytes - offset, max_chunk, to_boundary)
        yield addr, take
        offset += take


def _split_vectorized(address: int, nbytes: int, max_chunk: int) -> List[Chunk]:
    """Chunk list for the aligned regular case, built with one arange.

    Applies only when the start address sits on a ``max_chunk`` boundary
    and ``max_chunk`` divides the 4-KiB page (the layout every DMA chain
    in the reproduction uses): every chunk except a final straggler is
    exactly ``max_chunk`` long and none can straddle a page, so the greedy
    scalar walk degenerates to a fixed stride.  The result is equal,
    element for element, to ``list(_split(...))``
    (tests/properties/test_props_packetizer.py holds the two together).
    """
    full = nbytes // max_chunk
    chunks: List[Chunk] = list(zip(
        (address + np.arange(full, dtype=np.int64) * max_chunk).tolist(),
        (full * (max_chunk,))))
    tail = nbytes - full * max_chunk
    if tail:
        chunks.append((address + full * max_chunk, tail))
    return chunks


def split_transfer(address: int, nbytes: int,
                   mps: int = DEFAULT_MPS) -> List[Chunk]:
    """Chunk a write transfer into MWr payload pieces."""
    if (nbytes >= mps * _VECTOR_MIN_CHUNKS and mps > 0
            and address % mps == 0 and PAGE_BOUNDARY % mps == 0):
        return _split_vectorized(address, nbytes, mps)
    return list(_split(address, nbytes, mps))


def split_read_requests(address: int, nbytes: int,
                        mrrs: int = DEFAULT_MRRS) -> List[Chunk]:
    """Chunk a read transfer into MRd request pieces."""
    if (nbytes >= mrrs * _VECTOR_MIN_CHUNKS and mrrs > 0
            and address % mrrs == 0 and PAGE_BOUNDARY % mrrs == 0):
        return _split_vectorized(address, nbytes, mrrs)
    return list(_split(address, nbytes, mrrs))


def count_write_tlps(nbytes: int, mps: int = DEFAULT_MPS,
                     address: int = 0) -> int:
    """Number of MWr packets a transfer of ``nbytes`` needs.

    Computed in closed form: within one page the greedy split takes
    ``ceil(span / mps)`` pieces, so the count is the sum over the partial
    leading page, the full pages, and the trailing remainder — no chunk
    list is materialized.  Kept equal to ``len(split_transfer(...))`` by
    the packetizer property suite.
    """
    if nbytes < 0:
        raise PCIeError(f"negative transfer length {nbytes}")
    if mps <= 0:
        raise PCIeError(f"invalid chunk limit {mps}")
    if nbytes == 0:
        return 0
    lead = min(nbytes, PAGE_BOUNDARY - (address % PAGE_BOUNDARY))
    count = -(-lead // mps)
    remaining = nbytes - lead
    full_pages, tail = divmod(remaining, PAGE_BOUNDARY)
    count += full_pages * -(-PAGE_BOUNDARY // mps)
    if tail:
        count += -(-tail // mps)
    return count
