"""Splitting memory transfers into TLP-sized pieces.

PCIe rules observed here:

* a Memory Write payload never exceeds the Max Payload Size (MPS) and never
  crosses a 4-KiB address boundary;
* a Memory Read request never asks for more than the Max Read Request Size
  (MRRS) and never crosses a 4-KiB boundary either.

The evaluated platform uses MPS = 256 B (§IV-A1), which is what makes
Eq. (1) come out to 3.66 Gbytes/s.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.errors import PCIeError

PAGE_BOUNDARY = 4096
DEFAULT_MPS = 256
DEFAULT_MRRS = 256

Chunk = Tuple[int, int]  # (address, nbytes)


def _split(address: int, nbytes: int, max_chunk: int) -> Iterator[Chunk]:
    if nbytes < 0:
        raise PCIeError(f"negative transfer length {nbytes}")
    if max_chunk <= 0:
        raise PCIeError(f"invalid chunk limit {max_chunk}")
    offset = 0
    while offset < nbytes:
        addr = address + offset
        to_boundary = PAGE_BOUNDARY - (addr % PAGE_BOUNDARY)
        take = min(nbytes - offset, max_chunk, to_boundary)
        yield addr, take
        offset += take


def split_transfer(address: int, nbytes: int,
                   mps: int = DEFAULT_MPS) -> List[Chunk]:
    """Chunk a write transfer into MWr payload pieces."""
    return list(_split(address, nbytes, mps))


def split_read_requests(address: int, nbytes: int,
                        mrrs: int = DEFAULT_MRRS) -> List[Chunk]:
    """Chunk a read transfer into MRd request pieces."""
    return list(_split(address, nbytes, mrrs))


def count_write_tlps(nbytes: int, mps: int = DEFAULT_MPS,
                     address: int = 0) -> int:
    """Number of MWr packets a transfer of ``nbytes`` needs."""
    return len(split_transfer(address, nbytes, mps))
