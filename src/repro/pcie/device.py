"""Device base class and requester-ID/tag bookkeeping.

Every fabric component (memory controller, GPU endpoint, PEACH2 chip,
switch, IB HCA) is a :class:`Device`: it owns ports, consumes packets from
their ingress queues, and may issue read requests whose completions are
matched back by ``(requester_id, tag)`` exactly like on real PCIe.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import CompletionTimeoutError, PCIeError, SimulationError
from repro.pcie.tlp import TLP, TLPKind
from repro.sim.core import Engine, Signal

DeviceId = int

_device_ids: Iterator[int] = itertools.count(1)


def allocate_device_id() -> DeviceId:
    """Globally unique requester/completer ID for a new device."""
    return next(_device_ids)


class Device:
    """Base class: owns ports and handles the packets they deliver.

    Subclasses implement :meth:`handle_tlp`.  The port machinery calls it
    once per ingested packet, *after* the packet has cleared the ingress
    queue (so queue backpressure is already applied).
    """

    def __init__(self, engine: Engine, name: str):
        self.engine = engine
        self.name = name
        self.device_id: DeviceId = allocate_device_id()

    def handle_tlp(self, port: "Port", tlp: TLP):  # pragma: no cover - abstract
        """Consume one packet delivered on ``port``.

        May return a generator to be run as a process (for multi-step
        handling), or None for instantaneous handling.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, id={self.device_id})"


class TagPool:
    """Outstanding-read tag allocator and completion matcher for one device.

    ``issue`` registers a pending read and returns the tag plus a signal
    that fires with the reassembled data once *all* completion bytes have
    arrived (a single MRd may legally be answered by several CplDs).

    With ``completion_timeout_ps`` set, a read whose completion never
    arrives raises :class:`CompletionTimeoutError` out of the engine run
    instead of deadlocking the simulation — the PCIe completion-timeout
    mechanism a faulted fabric (switch drop, dead cable) relies on.  The
    default (``None``) schedules nothing, so un-faulted timing and the
    event heap are untouched.
    """

    MAX_TAGS = 256  # 8-bit PCIe tag field

    def __init__(self, engine: Engine, name: str = "",
                 completion_timeout_ps: Optional[int] = None):
        self.engine = engine
        self.name = name
        self.completion_timeout_ps = completion_timeout_ps
        self._next = 0
        # Entry: (done, buffer, expected_bytes, issue_serial).  The serial
        # distinguishes reuses of a tag so a stale timeout cannot kill a
        # younger read that recycled the number.
        self._pending: Dict[int, Tuple[Signal, bytearray, int, int]] = {}
        self._serial = 0
        self.timeouts = 0

    @property
    def outstanding(self) -> int:
        """Number of reads currently awaiting completions."""
        return len(self._pending)

    def issue(self, expected_bytes: int) -> Tuple[int, Signal]:
        """Allocate a tag for a read expecting ``expected_bytes`` back."""
        if len(self._pending) >= self.MAX_TAGS:
            raise PCIeError(f"{self.name}: tag space exhausted")
        for _ in range(self.MAX_TAGS):
            tag = self._next
            self._next = (self._next + 1) % self.MAX_TAGS
            if tag not in self._pending:
                break
        else:  # pragma: no cover - guarded by the check above
            raise PCIeError(f"{self.name}: no free tag")
        done = self.engine.signal(f"{self.name}.read[{tag}]")
        self._serial += 1
        serial = self._serial
        self._pending[tag] = (done, bytearray(), expected_bytes, serial)
        if self.completion_timeout_ps is not None:
            self.engine.after(self.completion_timeout_ps,
                              self._expire, tag, serial)
        return tag, done

    def _expire(self, tag: int, serial: int) -> None:
        entry = self._pending.get(tag)
        if entry is None or entry[3] != serial:
            return  # completed in time (or the tag was reused since)
        del self._pending[tag]
        self.timeouts += 1
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "completion-timeout", tag=tag)
        if self.engine.metrics is not None:
            self.engine.metrics.counter(
                f"tags.{self.name}.completion_timeouts").inc()
        # Raised from an engine callback, this propagates out of
        # Engine.step()/run() to whoever drives the simulation.
        raise CompletionTimeoutError(
            f"{self.name}: no completion for tag {tag} within "
            f"{self.completion_timeout_ps} ps")

    def complete(self, tlp: TLP) -> None:
        """Feed a CplD back; fires the signal when the read is whole."""
        if tlp.kind is not TLPKind.CPLD:
            raise PCIeError(f"{self.name}: not a completion: {tlp}")
        entry = self._pending.get(tlp.tag)
        if entry is None:
            raise PCIeError(f"{self.name}: completion for unknown tag {tlp.tag}")
        done, buf, expected, serial = entry
        buf.extend(tlp.payload.tobytes())
        if len(buf) > expected:
            raise PCIeError(
                f"{self.name}: tag {tlp.tag} over-completed "
                f"({len(buf)} > {expected} bytes)")
        if len(buf) == expected:
            del self._pending[tlp.tag]
            done.fire(bytes(buf))
