"""PCIe generations: signalling rates and line encodings.

The paper's links are Gen2 x8: 5 GT/s per lane with 8b/10b encoding, i.e.
500 Mbytes/s of post-encoding bandwidth per lane and 4 Gbytes/s for eight
lanes — the "4 Gbytes/sec" figure Eq. (1) starts from.
"""

from __future__ import annotations

import enum

from repro.errors import ConfigError
from repro.units import PS_PER_S


class PCIeGen(enum.Enum):
    """PCIe generation; value is (GT/s per lane, encoding num, encoding den)."""

    GEN1 = (2.5, 8, 10)
    GEN2 = (5.0, 8, 10)
    GEN3 = (8.0, 128, 130)

    @property
    def gigatransfers_per_s(self) -> float:
        """Raw signalling rate per lane in GT/s."""
        return self.value[0]

    @property
    def encoding_efficiency(self) -> float:
        """Fraction of raw bits that carry data (8b/10b or 128b/130b)."""
        return self.value[1] / self.value[2]

    @property
    def bytes_per_s_per_lane(self) -> float:
        """Post-encoding data rate of a single lane, bytes/second."""
        return self.gigatransfers_per_s * 1e9 * self.encoding_efficiency / 8.0


VALID_LANE_COUNTS = (1, 2, 4, 8, 12, 16, 32)


def link_bytes_per_s(gen: PCIeGen, lanes: int) -> float:
    """Post-encoding link data rate in bytes/second."""
    if lanes not in VALID_LANE_COUNTS:
        raise ConfigError(f"invalid PCIe lane count x{lanes}")
    return gen.bytes_per_s_per_lane * lanes


def link_bytes_per_ps(gen: PCIeGen, lanes: int) -> float:
    """Post-encoding link data rate in bytes/picosecond (simulator unit)."""
    return link_bytes_per_s(gen, lanes) / PS_PER_S
