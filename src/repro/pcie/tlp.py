"""Transaction Layer Packets.

Only the packet kinds the paper's hardware exercises are modelled:

* ``MWR``  — posted Memory Write Request (the RDMA-put building block;
  PEACH2 restricts remote access to these, §III-F),
* ``MRD``  — non-posted Memory Read Request,
* ``CPLD`` — Completion with Data (the read reply PEACH2 deliberately does
  not implement for remote traffic),
* ``MSI``  — Message Signalled Interrupt, modelled as a tiny posted write
  toward the host interrupt logic (used for DMA-completion interrupts).

Payloads are numpy ``uint8`` arrays so every simulated transfer moves real
bytes end to end and can be verified for integrity.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import PCIeError

# Per-packet wire overhead from the paper's Eq. (1):
# 16 B TLP header (4-DW header w/ 64-bit address) + 2 B DLL sequence number
# + 4 B LCRC + 1 B start framing + 1 B stop framing.
TLP_HEADER_BYTES = 16
TLP_DLL_SEQ_BYTES = 2
TLP_LCRC_BYTES = 4
TLP_FRAMING_BYTES = 2
TLP_OVERHEAD_BYTES = (TLP_HEADER_BYTES + TLP_DLL_SEQ_BYTES + TLP_LCRC_BYTES
                      + TLP_FRAMING_BYTES)

_serial = itertools.count()


class TLPKind(enum.Enum):
    """Transaction layer packet type."""

    MWR = "MWr"
    MRD = "MRd"
    CPLD = "CplD"
    MSI = "MSI"

    @property
    def is_posted(self) -> bool:
        """Posted transactions need no completion (writes, interrupts)."""
        return self in (TLPKind.MWR, TLPKind.MSI)


#: Kinds whose wire footprint includes the payload bytes.
_CARRIES_PAYLOAD = frozenset((TLPKind.MWR, TLPKind.CPLD, TLPKind.MSI))
#: Kinds that must carry a payload array of exactly ``length`` bytes.
_REQUIRES_PAYLOAD = frozenset((TLPKind.MWR, TLPKind.CPLD))


@dataclass(slots=True)
class TLP:
    """One transaction layer packet travelling through the fabric.

    ``address`` is the destination bus address for MWR/MRD/MSI; completions
    are routed by ``requester_id`` instead, as on real PCIe.  ``length`` is
    the payload length in bytes for MWR/CPLD, or the *requested* read length
    for MRD.  Slotted: tens of thousands of TLPs flow through one
    experiment, so the per-instance dict is measurable churn.
    """

    kind: TLPKind
    address: int = 0
    length: int = 0
    payload: Optional[np.ndarray] = None
    requester_id: int = 0
    tag: int = 0
    serial: int = field(default_factory=_serial.__next__)
    #: Framed wire footprint; computed once — every hop (port, link,
    #: switch, tracer) reads it.
    wire_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        length = self.length
        kind = self.kind
        if length < 0:
            raise PCIeError(f"negative TLP length {length}")
        if kind in _REQUIRES_PAYLOAD:
            payload = self.payload
            if payload is None:
                raise PCIeError(f"{kind.value} requires a payload")
            if len(payload) != length:
                raise PCIeError(
                    f"{kind.value} payload is {len(payload)} B "
                    f"but length says {length} B")
            self.wire_bytes = TLP_OVERHEAD_BYTES + length
        elif kind is TLPKind.MRD:
            if self.payload is not None:
                raise PCIeError("MRd must not carry a payload")
            self.wire_bytes = TLP_OVERHEAD_BYTES
        else:
            self.wire_bytes = (TLP_OVERHEAD_BYTES + length
                               if kind in _CARRIES_PAYLOAD
                               else TLP_OVERHEAD_BYTES)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"TLP({self.kind.value} addr=0x{self.address:x} "
                f"len={self.length} req={self.requester_id} tag={self.tag})")


def tlp_wire_bytes(kind: TLPKind, length: int) -> int:
    """Wire footprint of a packet: framing plus payload (if it carries one)."""
    payload = length if kind in _CARRIES_PAYLOAD else 0
    return TLP_OVERHEAD_BYTES + payload


def make_write(address: int, data: np.ndarray, requester_id: int = 0,
               tag: int = 0) -> TLP:
    """Build a posted Memory Write Request carrying ``data``."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    return TLP(TLPKind.MWR, address=address, length=len(data), payload=data,
               requester_id=requester_id, tag=tag)


def make_read(address: int, length: int, requester_id: int, tag: int) -> TLP:
    """Build a Memory Read Request for ``length`` bytes."""
    return TLP(TLPKind.MRD, address=address, length=length,
               requester_id=requester_id, tag=tag)


def make_completion(request: TLP, data: np.ndarray) -> TLP:
    """Build the Completion-with-Data answering ``request``."""
    if request.kind is not TLPKind.MRD:
        raise PCIeError("only MRd packets take completions")
    data = np.ascontiguousarray(data, dtype=np.uint8)
    return TLP(TLPKind.CPLD, address=request.address, length=len(data),
               payload=data, requester_id=request.requester_id,
               tag=request.tag)


def make_msi(address: int, vector: int, requester_id: int = 0) -> TLP:
    """Build a Message Signalled Interrupt write (4-byte payload)."""
    payload = np.frombuffer(int(vector).to_bytes(4, "little"), dtype=np.uint8)
    return TLP(TLPKind.MSI, address=address, length=4,
               payload=payload.copy(), requester_id=requester_id)
