"""PCIe switch: address-routed forwarding with pipelined latency.

Models the PCIe switch embedded in the Xeon E5 socket (§III-C): memory
requests route by address against the node's address map, completions
route back by requester ID.  Forwarding is pipelined — each packet takes
``forward_latency_ps`` to traverse, but a new packet can enter every
``issue_interval_ps`` — so the switch adds latency without capping
throughput below the link rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import AddressError, ConfigError
from repro.pcie.address import AddressSpace, Region
from repro.pcie.device import Device, DeviceId
from repro.pcie.forwarding import EgressQueue
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind
from repro.sim.core import Engine
from repro.units import ns


@dataclass(frozen=True)
class SwitchParams:
    """Timing of one switch: per-packet traversal and issue interval."""

    forward_latency_ps: int = ns(50)
    issue_interval_ps: int = ns(2)


class PCIeSwitch(Device):
    """Address/ID-routed crossbar with per-ingress-port pipelining."""

    def __init__(self, engine: Engine, name: str,
                 params: SwitchParams = SwitchParams()):
        super().__init__(engine, name)
        self.params = params
        self.routes = AddressSpace(name=f"{name}.routes")
        self.id_routes: Dict[DeviceId, Port] = {}
        self.ports: Dict[str, Port] = {}
        self._egress: Dict[int, EgressQueue] = {}
        self.tlps_forwarded = 0
        #: Packets lost inside the crossbar (fault injection only).
        self.tlps_dropped = 0
        # Forwarded-counter handle, bound once per registry (hit per TLP).
        self._bound_metrics = None
        self._m_forwarded = None

    def new_port(self, name: str, role: PortRole = PortRole.RC,
                 rx_credits: int = 32) -> Port:
        """Create a port on this switch (downstream ports face RC-side)."""
        if name in self.ports:
            raise ConfigError(f"{self.name}: duplicate port {name!r}")
        port = Port(self.engine, f"{self.name}.{name}", role, self,
                    rx_credits=rx_credits)
        self.ports[name] = port
        residual = (self.params.forward_latency_ps
                    - self.params.issue_interval_ps)
        self._egress[id(port)] = EgressQueue(self.engine, port, residual)
        return port

    def map_region(self, region: Region, port: Port) -> None:
        """Route memory requests for ``region`` out of ``port``."""
        self.routes.add(region, port)

    def map_device(self, device_id: DeviceId, port: Port) -> None:
        """Route completions for ``device_id`` out of ``port``."""
        if device_id in self.id_routes:
            raise ConfigError(f"{self.name}: device {device_id} already mapped")
        self.id_routes[device_id] = port

    def route_for(self, tlp: TLP) -> Port:
        """Output port for a packet (completions by ID, the rest by address)."""
        if tlp.kind is TLPKind.CPLD:
            port = self.id_routes.get(tlp.requester_id)
            if port is None:
                raise AddressError(
                    f"{self.name}: no completion route for requester "
                    f"{tlp.requester_id}")
            return port
        return self.routes.lookup(tlp.address)

    def handle_tlp(self, port: Port, tlp: TLP):
        """Forward with pipelined latency; block when the egress is full.

        The ingress is occupied for one issue interval per packet; a
        congested output then holds the ingress, which backs up the
        feeding link's credits — real PCIe-style backpressure.
        """
        out = self.route_for(tlp)
        return self._ingest(out, tlp)

    def _ingest(self, out: Port, tlp: TLP):
        yield self.params.issue_interval_ps
        faults = self.engine.faults
        if faults is not None and faults.switch_drop(self.name):
            # The crossbar lost this packet.  There is no DLL inside the
            # switch, so nothing retransmits here — recovery is end to
            # end (completion timeout / driver retry).
            self.tlps_dropped += 1
            if self.engine.tracer is not None:
                self.engine.trace(self.name, "switch-drop",
                                  tlp=tlp.kind.value, out=out.name)
            if self.engine.metrics is not None:
                self.engine.metrics.counter(
                    f"switch.{self.name}.dropped").inc()
            return
        self.tlps_forwarded += 1
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "switch-forward",
                              tlp=tlp.kind.value, out=out.name)
        metrics = self.engine.metrics
        if metrics is not None:
            if metrics is not self._bound_metrics:
                self._bound_metrics = metrics
                self._m_forwarded = metrics.counter(
                    f"switch.{self.name}.forwarded")
            self._m_forwarded.inc()
        accepted = self._egress[id(out)].submit(tlp)
        if not accepted.fired:
            yield accepted
