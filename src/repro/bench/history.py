"""Perf history, the regression gate, and the HTML dashboard.

Three consumers of the ``tca-bench-perf/1`` document:

* **History** — ``append_run`` keeps one JSONL line per harness run
  (compact: totals + per-experiment throughput/overhead, no raw
  samples), so the repo accumulates a perf trajectory the dashboard can
  plot and future regressions can be dated against.
* **Gate** — :func:`check_against_baseline` compares a fresh run to a
  committed baseline (e.g. ``BENCH_PR6.json``) and fails on a >15 %
  bare events/s regression or an instrumented/bare overhead ratio over
  budget.  ``tca-bench perf --check`` exits nonzero when the gate
  fails, which is what CI hangs on.
* **Dashboard** — :func:`render_dashboard` emits one self-contained
  HTML file (no external assets): anchor pass/fail, the events/s trend
  over recorded runs, overhead ratios against the budget, and the
  profiler's top hotspots.

The gate compares per experiment and only over experiments present in
*both* documents, so a tiny CI budget (``--perf-experiments fig9``) can
gate against the full committed baseline.
"""

from __future__ import annotations

import html
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

#: Version tag of each history line.
HISTORY_SCHEMA = "tca-bench-history/1"

#: The perf-document schema the gate and the dashboard understand.
#: (Mirrors :data:`repro.bench.perf.SCHEMA`; kept here so document
#: validation does not import the harness.)
PERF_SCHEMA = "tca-bench-perf/1"

#: Default gate limits: fail on >15 % bare events/s regression, or an
#: instrumented/bare overhead ratio above 3.0x (BENCH_PR3 measured
#: 1.6-2.0x, so 3.0x means "observability cost regressed badly").
DEFAULT_THRESHOLD = 0.15
DEFAULT_OVERHEAD_BUDGET = 3.0


def _rows(doc: Dict[str, Any]) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Perf-doc results regrouped as experiment -> mode -> row."""
    out: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for row in doc.get("results", []):
        out.setdefault(row["experiment"], {})[row["mode"]] = row
    return out


def experiment_stats(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Per-experiment throughput and overhead from one perf document."""
    stats: Dict[str, Dict[str, float]] = {}
    for name, modes in _rows(doc).items():
        entry: Dict[str, float] = {}
        bare = modes.get("bare")
        inst = modes.get("instrumented")
        if bare is not None:
            entry["bare_events_per_s"] = float(bare["events_per_s"])
        if inst is not None:
            entry["instrumented_events_per_s"] = float(inst["events_per_s"])
        if bare and inst and bare["wall_s"]:
            entry["overhead_ratio"] = round(
                inst["wall_s"] / bare["wall_s"], 3)
        stats[name] = entry
    return stats


def validate_perf_doc(doc: Any, what: str = "perf document"
                      ) -> Optional[str]:
    """One-line actionable error for a malformed perf document, or None.

    The gate (``tca-bench perf --check``) and the dashboard
    (``tca-bench report``) run every externally supplied document
    through this before touching its rows, so a stale, truncated, or
    foreign-schema baseline produces a clear message instead of a raw
    ``KeyError`` traceback.
    """
    fix = ("regenerate it with 'tca-bench perf --bench-json PATH'")
    if not isinstance(doc, dict):
        return f"{what} is not a JSON object; {fix}"
    schema = doc.get("schema")
    if schema != PERF_SCHEMA:
        return (f"{what} has schema {schema!r} but the gate needs "
                f"{PERF_SCHEMA!r}; {fix}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return f"{what} has no 'results' rows; {fix}"
    required = ("experiment", "mode", "wall_s", "events_per_s")
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            return f"{what} results[{i}] is not an object; {fix}"
        missing = [k for k in required if k not in row]
        if missing:
            return (f"{what} results[{i}] is missing "
                    f"{', '.join(missing)}; {fix}")
    return None


# -- history ----------------------------------------------------------------------

def append_run(path: str, doc: Dict[str, Any],
               label: str = "") -> Dict[str, Any]:
    """Append one compact history line for a perf document; returns it."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "unix_time": doc.get("unix_time", round(time.time(), 3)),
        "label": label,
        "python": doc.get("python", ""),
        "totals": doc.get("totals", {}),
        "experiments": experiment_stats(doc),
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True,
                            separators=(",", ":")) + "\n")
    return entry


def load_history(path: str) -> List[Dict[str, Any]]:
    """All history lines, oldest first; missing file -> empty list."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return []
    entries = []
    for line in lines:
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


# -- the regression gate ----------------------------------------------------------

@dataclass(frozen=True)
class GateCheck:
    """One gate comparison: a measured number against its limit."""

    experiment: str
    metric: str       # "events_per_s" | "overhead_ratio" | "coverage"
    ok: bool
    measured: float
    limit: float
    detail: str

    def __str__(self) -> str:
        mark = "ok  " if self.ok else "FAIL"
        return f"  [{mark}] {self.experiment:<16} {self.detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "metric": self.metric,
            "ok": self.ok,
            "measured": round(self.measured, 3),
            "limit": round(self.limit, 3),
            "detail": self.detail,
        }


@dataclass
class GateResult:
    """Outcome of one gate evaluation against a baseline."""

    baseline: str
    threshold: float
    overhead_budget: float
    checks: List[GateCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "tca-bench-gate/1",
            "baseline": self.baseline,
            "threshold": self.threshold,
            "overhead_budget": self.overhead_budget,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
        }

    def render(self) -> str:
        lines = [f"perf gate vs {self.baseline} "
                 f"(regression threshold {self.threshold:.0%}, "
                 f"overhead budget x{self.overhead_budget:g})"]
        lines += [str(c) for c in self.checks]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"gate: {verdict} ({len(self.failures)} of "
                     f"{len(self.checks)} checks failed)")
        return "\n".join(lines)


def check_against_baseline(doc: Dict[str, Any], baseline: Dict[str, Any],
                           baseline_name: str = "baseline",
                           threshold: float = DEFAULT_THRESHOLD,
                           overhead_budget: float = DEFAULT_OVERHEAD_BUDGET,
                           events_floor: Optional[float] = None
                           ) -> GateResult:
    """Gate one perf run against a committed baseline document.

    Only experiments present in **both** documents are compared (a
    subset run gates against the full baseline); an empty intersection
    is itself a failure, so a typo'd experiment list cannot silently
    pass.

    ``events_floor`` adds an **absolute** bound on top of the relative
    per-experiment checks: the run's overall bare throughput (total
    bare events over total bare wall) must meet it.  The relative gate
    catches drift against the committed baseline; the floor catches the
    slow boil — a sequence of individually-passing regressions eroding
    the engine across many PRs.
    """
    result = GateResult(baseline=baseline_name, threshold=threshold,
                        overhead_budget=overhead_budget)
    if events_floor is not None:
        bare = [s for s in doc.get("results", [])
                if s.get("mode") == "bare"]
        wall = sum(float(s.get("wall_s", 0.0)) for s in bare)
        events = sum(int(s.get("events", 0)) for s in bare)
        measured = events / wall if wall > 0 else 0.0
        result.checks.append(GateCheck(
            experiment="(overall)", metric="events_floor",
            ok=measured >= events_floor, measured=measured,
            limit=events_floor,
            detail=(f"overall bare {measured:,.0f} events/s >= "
                    f"absolute floor {events_floor:,.0f}")))
    current = experiment_stats(doc)
    base = experiment_stats(baseline)
    shared = [name for name in current if name in base]
    if not shared:
        result.checks.append(GateCheck(
            experiment="(none)", metric="coverage", ok=False,
            measured=0.0, limit=1.0,
            detail="no experiment appears in both run and baseline"))
        return result
    for name in shared:
        cur, ref = current[name], base[name]
        if "bare_events_per_s" in cur and "bare_events_per_s" in ref:
            floor = ref["bare_events_per_s"] * (1.0 - threshold)
            measured = cur["bare_events_per_s"]
            result.checks.append(GateCheck(
                experiment=name, metric="events_per_s",
                ok=measured >= floor, measured=measured, limit=floor,
                detail=(f"bare {measured:,.0f} events/s >= floor "
                        f"{floor:,.0f} (baseline "
                        f"{ref['bare_events_per_s']:,.0f} "
                        f"- {threshold:.0%})")))
        if "overhead_ratio" in cur:
            measured = cur["overhead_ratio"]
            result.checks.append(GateCheck(
                experiment=name, metric="overhead_ratio",
                ok=measured <= overhead_budget, measured=measured,
                limit=overhead_budget,
                detail=(f"overhead x{measured:.2f} <= budget "
                        f"x{overhead_budget:g}")))
    return result


# -- the HTML dashboard -----------------------------------------------------------
#
# Self-contained: inline CSS + inline SVG, no scripts, no external
# assets.  Colors follow the repo-wide viz conventions: a fixed
# 4-slot categorical order (one slot per perf experiment, assigned by
# name so a filtered run never repaints survivors), status colors
# reserved for pass/fail and always paired with a textual mark, and
# every chart backed by a table (the light-mode aqua/yellow slots sit
# below 3:1 contrast, so the tables are the relief, not a luxury).

#: Fixed categorical slot order (light, dark) — validated palette.
_SERIES = [("#2a78d6", "#3987e5"), ("#eb6834", "#d95926"),
           ("#1baf7a", "#199e70"), ("#eda100", "#c98500")]

#: Slot assignment: the canonical perf experiments first, extras fold
#: into the last slot's hue via name order.
_SLOT_ORDER = ["fig7", "fig9", "comparison-gpu", "contention"]

_STATUS = {"good": "#0ca30c", "warning": "#fab219", "critical": "#d03b3b"}


def _slot(name: str, names: Sequence[str]) -> int:
    order = [n for n in _SLOT_ORDER if n in names]
    order += sorted(n for n in names if n not in _SLOT_ORDER)
    return order.index(name) % len(_SERIES)


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px; font: 14px/1.5 system-ui, sans-serif;
  background: #fcfcfb; color: #0b0b0b;
}
@media (prefers-color-scheme: dark) {
  body { background: #1a1a19; color: #ffffff; }
  .muted { color: #c3c2b7 !important; }
  .tile, table { border-color: #3a3a38 !important; }
  th { border-bottom-color: #3a3a38 !important; }
  td { border-top-color: #2a2a28 !important; }
  .grid { stroke: #3a3a38 !important; }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.muted { color: #52514e; font-size: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  border: 1px solid #e3e2de; border-radius: 8px; padding: 12px 16px;
  min-width: 150px;
}
.tile .v { font-size: 24px; font-weight: 600; }
.tile .k { font-size: 12px; }
table { border-collapse: collapse; border: 1px solid #e3e2de; }
th, td { padding: 4px 10px; text-align: right; }
th {
  font-size: 12px; font-weight: 600; border-bottom: 1px solid #e3e2de;
}
td { border-top: 1px solid #f0efeb; font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
.status { font-weight: 600; }
.swatch {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 6px; vertical-align: baseline;
}
.legend { margin: 4px 0 8px; font-size: 12px; }
.legend span { margin-right: 16px; }
svg text { font: 11px system-ui, sans-serif; }
.grid { stroke: #e3e2de; stroke-width: 1; }
"""


def _series_color(slot: int) -> str:
    light, dark = _SERIES[slot]
    return (f"light-dark({light}, {dark})")


def _status_mark(ok: bool, pass_text: str = "pass",
                 fail_text: str = "fail") -> str:
    color = _STATUS["good"] if ok else _STATUS["critical"]
    mark = "✓" if ok else "✗"
    text = pass_text if ok else fail_text
    return (f'<span class="status" style="color:{color}">'
            f"{mark} {_esc(text)}</span>")


def _tile(value: str, caption: str, color: Optional[str] = None) -> str:
    style = f' style="color:{color}"' if color else ""
    return (f'<div class="tile"><div class="v"{style}>{value}</div>'
            f'<div class="k muted">{_esc(caption)}</div></div>')


def _trend_svg(history: List[Dict[str, Any]],
               names: Sequence[str]) -> str:
    """Bare events/s per experiment over recorded runs (line chart)."""
    width, height = 680, 240
    left, right, top, bottom = 56, 120, 12, 28
    plot_w, plot_h = width - left - right, height - top - bottom
    runs = range(len(history))
    values = [history[i].get("experiments", {}).get(name, {})
              .get("bare_events_per_s") for name in names for i in runs]
    peak = max((v for v in values if v is not None), default=0.0) or 1.0
    peak *= 1.08

    def x(i: int) -> float:
        return left + (plot_w * i / max(1, len(history) - 1))

    def y(v: float) -> float:
        return top + plot_h * (1.0 - v / peak)

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img" '
             'aria-label="bare events per second per experiment, '
             'by recorded run">']
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        gy = top + plot_h * (1 - frac)
        label = f"{peak * frac / 1000:.0f}k"
        parts.append(f'<line class="grid" x1="{left}" y1="{gy:.1f}" '
                     f'x2="{left + plot_w}" y2="{gy:.1f}"/>')
        parts.append(f'<text x="{left - 6}" y="{gy + 4:.1f}" '
                     f'text-anchor="end" fill="currentColor" '
                     f'opacity="0.65">{label}</text>')
    for name in names:
        slot = _slot(name, names)
        color = _series_color(slot)
        pts = [(i, history[i]["experiments"][name]["bare_events_per_s"])
               for i in runs
               if history[i].get("experiments", {}).get(name, {})
               .get("bare_events_per_s") is not None]
        if not pts:
            continue
        path = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in pts)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for i, v in pts:
            parts.append(
                f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
                f'fill="{color}"><title>{_esc(name)} run {i}: '
                f"{v:,.0f} events/s</title></circle>")
        li, lv = pts[-1]
        parts.append(f'<text x="{x(li) + 8:.1f}" y="{y(lv) + 4:.1f}" '
                     f'fill="currentColor">{_esc(name)}</text>')
    parts.append(f'<text x="{left + plot_w / 2:.0f}" y="{height - 6}" '
                 f'text-anchor="middle" fill="currentColor" '
                 f'opacity="0.65">run (oldest → newest)</text>')
    parts.append("</svg>")
    return "".join(parts)


def _overhead_svg(stats: Dict[str, Dict[str, float]],
                  budget: float) -> str:
    """Horizontal overhead-ratio bars with the budget as a rule."""
    names = [n for n in stats if "overhead_ratio" in stats[n]]
    if not names:
        return ""
    width = 560
    row_h, bar_h = 26, 14
    left, right, top = 120, 70, 8
    height = top + row_h * len(names) + 24
    plot_w = width - left - right
    peak = max(budget, max(stats[n]["overhead_ratio"] for n in names))
    peak *= 1.1

    def w(v: float) -> float:
        return plot_w * v / peak

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img" '
             'aria-label="instrumented over bare overhead ratio per '
             'experiment">']
    for row, name in enumerate(names):
        v = stats[name]["overhead_ratio"]
        cy = top + row * row_h
        color = _series_color(_slot(name, names))
        parts.append(f'<text x="{left - 8}" y="{cy + bar_h - 2}" '
                     f'text-anchor="end" fill="currentColor">'
                     f"{_esc(name)}</text>")
        parts.append(f'<rect x="{left}" y="{cy}" width="{w(v):.1f}" '
                     f'height="{bar_h}" rx="3" fill="{color}">'
                     f"<title>{_esc(name)}: x{v:.2f} instrumented/bare"
                     f"</title></rect>")
        parts.append(f'<text x="{left + w(v) + 6:.1f}" '
                     f'y="{cy + bar_h - 2}" fill="currentColor">'
                     f"x{v:.2f}</text>")
    bx = left + w(budget)
    parts.append(f'<line x1="{bx:.1f}" y1="{top - 4}" x2="{bx:.1f}" '
                 f'y2="{top + row_h * len(names) - 8}" '
                 f'stroke="currentColor" stroke-dasharray="4 3" '
                 f'opacity="0.55"/>')
    parts.append(f'<text x="{bx:.1f}" '
                 f'y="{top + row_h * len(names) + 8}" '
                 f'text-anchor="middle" fill="currentColor" '
                 f'opacity="0.65">budget x{budget:g}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _runs_table(history: List[Dict[str, Any]],
                names: Sequence[str]) -> str:
    head = "".join(f"<th>{_esc(n)} (ev/s)</th>" for n in names)
    rows = []
    for i, entry in enumerate(history):
        stamp = time.strftime("%Y-%m-%d %H:%M",
                              time.gmtime(entry.get("unix_time", 0)))
        cells = []
        for n in names:
            v = entry.get("experiments", {}).get(n, {}) \
                .get("bare_events_per_s")
            cells.append(f"<td>{v:,.0f}</td>" if v is not None
                         else "<td>—</td>")
        label = _esc(entry.get("label") or "")
        rows.append(f"<tr><td>{i}</td><td>{stamp}</td>"
                    f"{''.join(cells)}<td>{label}</td></tr>")
    return (f"<table><thead><tr><th>run</th><th>when (UTC)</th>{head}"
            f"<th>label</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


def _anchors_section(suite_doc: Dict[str, Any]) -> str:
    anchors = suite_doc.get("anchors", [])
    if not anchors:
        return "<p class='muted'>no anchor results in the report</p>"
    rows = []
    for a in anchors:
        status = a.get("status", "?")
        if status == "skipped":
            cell = '<span class="muted">– skipped</span>'
        else:
            cell = _status_mark(status == "pass", "pass", "fail")
        measured = a.get("measured")
        measured = "—" if measured is None else f"{measured:g}"
        paper = a.get("paper")
        paper = "—" if paper is None else f"{paper:g}"
        rows.append(
            f"<tr><td>{_esc(a.get('name', '?'))}</td>"
            f"<td>{_esc(a.get('section', ''))}</td>"
            f"<td>{paper}</td><td>{measured}</td><td>{cell}</td></tr>")
    return ("<table><thead><tr><th>anchor</th><th>section</th>"
            "<th>paper</th><th>measured</th><th>status</th></tr>"
            f"</thead><tbody>{''.join(rows)}</tbody></table>")


def _hotspots_section(profiles: Dict[str, Dict[str, Any]],
                      top_n: int = 10) -> str:
    merged = []
    for name, doc in profiles.items():
        for spot in doc.get("hotspots", []):
            merged.append((spot["wall_ns"], name, spot))
    merged.sort(key=lambda t: -t[0])
    rows = []
    for wall_ns, name, spot in merged[:top_n]:
        rows.append(
            f"<tr><td>{_esc(name)}</td>"
            f"<td>{_esc(spot['component'])}</td>"
            f"<td>{_esc(spot['kind'])}</td>"
            f"<td>{spot['calls']:,}</td>"
            f"<td>{wall_ns / 1e6:,.2f}</td>"
            f"<td class='muted'>{_esc(spot['site'])}</td></tr>")
    return ("<table><thead><tr><th>experiment</th><th>component</th>"
            "<th>kind</th><th>calls</th><th>wall ms</th><th>site</th>"
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>")


def render_dashboard(history: Optional[List[Dict[str, Any]]] = None,
                     perf_doc: Optional[Dict[str, Any]] = None,
                     gate: Optional[GateResult] = None,
                     suite_doc: Optional[Dict[str, Any]] = None,
                     profiles: Optional[Dict[str, Dict[str, Any]]] = None,
                     title: str = "tca-bench dashboard") -> str:
    """One self-contained HTML page from whatever inputs are present."""
    history = history or []
    sections: List[str] = []
    tiles: List[str] = []

    names: List[str] = []
    for entry in history:
        for n in entry.get("experiments", {}):
            if n not in names:
                names.append(n)
    stats = experiment_stats(perf_doc) if perf_doc else {}
    for n in stats:
        if n not in names:
            names.append(n)
    names = ([n for n in _SLOT_ORDER if n in names]
             + sorted(n for n in names if n not in _SLOT_ORDER))[:4]

    if suite_doc is not None:
        summary = suite_doc.get("summary", {})
        npass = summary.get("anchors_pass", 0)
        nfail = summary.get("anchors_fail", 0)
        ok = nfail == 0
        tiles.append(_tile(
            f"{npass}/{npass + nfail}", "anchors passing",
            _STATUS["good"] if ok else _STATUS["critical"]))
    if gate is not None:
        tiles.append(_tile(
            "PASS" if gate.ok else "FAIL",
            f"perf gate vs {gate.baseline}",
            _STATUS["good"] if gate.ok else _STATUS["critical"]))
    if perf_doc is not None:
        totals = perf_doc.get("totals", {})
        if totals.get("events_per_s"):
            tiles.append(_tile(f"{totals['events_per_s']:,.0f}",
                               "events/s (whole harness)"))
        if totals.get("overhead_ratio"):
            tiles.append(_tile(f"x{totals['overhead_ratio']:.2f}",
                               "observability overhead"))
    if tiles:
        sections.append(f'<div class="tiles">{"".join(tiles)}</div>')

    if suite_doc is not None:
        sections.append("<h2>Anchors</h2>")
        sections.append(_anchors_section(suite_doc))

    if len(history) >= 2 and names:
        sections.append("<h2>Throughput trend</h2>")
        legend = "".join(
            f'<span><span class="swatch" style="background:'
            f'{_series_color(_slot(n, names))}"></span>{_esc(n)}</span>'
            for n in names)
        sections.append(f'<div class="legend">{legend}</div>')
        sections.append(_trend_svg(history, names))
    if history and names:
        sections.append("<h2>Recorded runs</h2>")
        sections.append(_runs_table(history, names))

    budget = gate.overhead_budget if gate else DEFAULT_OVERHEAD_BUDGET
    if stats:
        bars = _overhead_svg(stats, budget)
        if bars:
            sections.append("<h2>Observability overhead</h2>")
            sections.append(bars)
    if gate is not None:
        sections.append("<h2>Gate checks</h2>")
        rows = "".join(
            f"<tr><td>{_esc(c.experiment)}</td><td>{_esc(c.metric)}</td>"
            f"<td>{c.measured:,.2f}</td><td>{c.limit:,.2f}</td>"
            f"<td>{_status_mark(c.ok, 'ok', 'fail')}</td></tr>"
            for c in gate.checks)
        sections.append(
            "<table><thead><tr><th>experiment</th><th>metric</th>"
            "<th>measured</th><th>limit</th><th>status</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>")

    if profiles:
        sections.append("<h2>Top hotspots</h2>")
        sections.append(_hotspots_section(profiles))

    stamp = time.strftime("%Y-%m-%d %H:%M UTC", time.gmtime())
    return (
        "<!doctype html>\n<html lang=\"en\"><head>"
        "<meta charset=\"utf-8\">"
        "<meta name=\"viewport\" "
        "content=\"width=device-width, initial-scale=1\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>"
        f"<p class=\"muted\">generated {stamp}</p>"
        f"{''.join(sections)}"
        "</body></html>\n")
