"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.bench <experiment> [...]
    tca-bench --list
    tca-bench all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench import experiments
from repro.bench.series import SweepTable

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "theory": experiments.theory,
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "limits": experiments.limits,
    "latency": experiments.latency,
    "fig12": experiments.fig12,
    "comparison-host": experiments.comparison_host,
    "comparison-gpu": experiments.comparison_gpu,
    "pio-dma-crossover": experiments.pio_dma_crossover,
    "hierarchy": experiments.hierarchy,
    "collectives": experiments.collectives,
    "contention": experiments.contention,
    "validate": lambda: _validate(),
    "ablation-dmac": experiments.ablation_dmac,
    "ablation-ring": experiments.ablation_ring,
    "ablation-ntb": experiments.ablation_ntb,
}


def _validate() -> str:
    from repro.model.validate import render_validation, validate_calibration

    return render_validation(validate_calibration())


def render(result: object, chart: bool = False) -> str:
    """Uniform rendering for tables, sweeps and scalar dicts."""
    if isinstance(result, SweepTable):
        text = result.render()
        if chart:
            text += "\n\n" + result.render_chart()
        return text
    if isinstance(result, dict):
        width = max(len(str(k)) for k in result)
        return "\n".join(f"{k:<{width}} : {v}" for k, v in result.items())
    return str(result)


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="tca-bench",
        description="Regenerate the paper's tables and figures from the "
                    "TCA/PEACH2 simulation.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--chart", action="store_true",
                        help="also render sweeps as ASCII charts")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; use --list", file=sys.stderr)
            return 2
        print(f"==== {name} ====")
        print(render(runner(), chart=args.chart))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
