"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.bench <experiment> [...]
    tca-bench --list
    tca-bench all --json
    tca-bench latency --trace trace.json --metrics metrics.json

``--trace`` / ``--metrics`` run the experiments under an observability
session (see :mod:`repro.obs`): every engine the experiments build gets a
tracer and a metrics registry, and the union is exported afterwards — a
Perfetto-loadable trace-event file and a per-engine metrics document.

``--fault-plan`` additionally arms a fault-injection plan (see
:mod:`repro.faults`) on every engine: ``--fault-plan chaos:7`` runs the
experiments over marginal links with a lost IRQ and a stuck doorbell,
seeded deterministically.  Combined with ``--metrics``, the injected
fault counts and every recovery counter (replays, NAKs, drops, IRQ
timeouts) land in the metrics document.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Dict

from repro.bench import experiments
from repro.bench.series import SweepTable
from repro.errors import ReproError

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "table1": experiments.table1,
    "table2": experiments.table2,
    "theory": experiments.theory,
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "limits": experiments.limits,
    "latency": experiments.latency,
    "fig12": experiments.fig12,
    "comparison-host": experiments.comparison_host,
    "comparison-gpu": experiments.comparison_gpu,
    "pio-dma-crossover": experiments.pio_dma_crossover,
    "hierarchy": experiments.hierarchy,
    "collectives": experiments.collectives,
    "contention": experiments.contention,
    "validate": lambda: _validate(),
    "ablation-dmac": experiments.ablation_dmac,
    "ablation-ring": experiments.ablation_ring,
    "ablation-ntb": experiments.ablation_ntb,
    "perf": lambda: _perf(),
}


def _perf():
    from repro.bench.perf import run_perf

    return run_perf()


def _validate() -> str:
    from repro.model.validate import render_validation, validate_calibration

    return render_validation(validate_calibration())


def render(result: object, chart: bool = False) -> str:
    """Uniform rendering for tables, sweeps and scalar dicts."""
    if isinstance(result, SweepTable):
        text = result.render()
        if chart:
            text += "\n\n" + result.render_chart()
        return text
    if isinstance(result, dict):
        if not result:
            return "(no results)"
        width = max(len(str(k)) for k in result)
        return "\n".join(f"{k:<{width}} : {v}" for k, v in result.items())
    return str(result)


def to_payload(result: object) -> object:
    """JSON-friendly form of one experiment's result."""
    if isinstance(result, SweepTable):
        return result.to_dict()
    if isinstance(result, dict):
        return result
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return {"text": str(result)}


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="tca-bench",
        description="Regenerate the paper's tables and figures from the "
                    "TCA/PEACH2 simulation.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--chart", action="store_true",
                        help="also render sweeps as ASCII charts")
    parser.add_argument("--json", action="store_true",
                        help="emit results as a JSON document on stdout")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Perfetto trace-event JSON file")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write collected metrics (JSON; text for "
                             "paths not ending in .json)")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="arm a fault-injection plan on every engine: "
                             "a preset (none, flaky-links, lost-irq, chaos),"
                             " optionally NAME:SEED, or a JSON plan file "
                             "(see docs/robustness.md)")
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="with the 'perf' experiment: write the "
                             "wall-clock benchmark document to PATH "
                             "(see docs/performance.md)")
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        for name in unknown:
            print(f"unknown experiment {name!r}; use --list",
                  file=sys.stderr)
        return 2

    obs = None
    if args.trace or args.metrics:
        from repro.obs import Observability

        obs = Observability()

    faults = None
    if args.fault_plan:
        from repro.faults import FaultPlan, FaultSession

        try:
            faults = FaultSession(FaultPlan.parse(args.fault_plan))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    results: Dict[str, object] = {}
    with contextlib.ExitStack() as stack:
        if obs is not None:
            stack.enter_context(obs.session())
        if faults is not None:
            stack.enter_context(faults.session())
        for name in names:
            try:
                results[name] = EXPERIMENTS[name]()
            except ReproError as exc:
                print(f"error: {name}: {exc}", file=sys.stderr)
                return 1

    if faults is not None:
        print(faults.summary(), file=sys.stderr)

    if args.bench_json:
        perf_report = results.get("perf")
        if perf_report is None:
            print("error: --bench-json requires the 'perf' experiment",
                  file=sys.stderr)
            return 2
        try:
            with open(args.bench_json, "w", encoding="utf-8") as fh:
                json.dump(perf_report.to_dict(), fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write benchmark output: {exc}",
                  file=sys.stderr)
            return 1
        print(f"benchmark -> {args.bench_json}", file=sys.stderr)

    if obs is not None:
        try:
            if args.trace:
                obs.write_trace(args.trace)
                print(f"trace: {obs.total_records} events -> {args.trace}"
                      + (f" ({obs.total_dropped} dropped)"
                         if obs.total_dropped else ""),
                      file=sys.stderr)
            if args.metrics:
                if args.metrics.endswith(".json"):
                    obs.write_metrics(args.metrics)
                else:
                    with open(args.metrics, "w", encoding="utf-8") as fh:
                        fh.write(obs.render_metrics() + "\n")
                print(f"metrics -> {args.metrics}", file=sys.stderr)
        except OSError as exc:
            print(f"error: cannot write observability output: {exc}",
                  file=sys.stderr)
            return 1

    if args.json:
        payload = {name: to_payload(result)
                   for name, result in results.items()}
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    for name, result in results.items():
        print(f"==== {name} ====")
        print(render(result, chart=args.chart))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
