"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.bench <experiment> [...]
    tca-bench --list
    tca-bench all --json
    tca-bench latency --trace trace.json --metrics metrics.json

``--trace`` / ``--metrics`` run the experiments under an observability
session (see :mod:`repro.obs`): every engine the experiments build gets a
tracer and a metrics registry, and the union is exported afterwards — a
Perfetto-loadable trace-event file and a per-engine metrics document.

``--fault-plan`` additionally arms a fault-injection plan (see
:mod:`repro.faults`) on every engine: ``--fault-plan chaos:7`` runs the
experiments over marginal links with a lost IRQ and a stuck doorbell,
seeded deterministically.  Combined with ``--metrics``, the injected
fault counts and every recovery counter (replays, NAKs, drops, IRQ
timeouts) land in the metrics document.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Dict

from repro.bench import experiments
from repro.bench.experiments import REGISTRY
from repro.bench.series import SweepTable
from repro.errors import ReproError


def _registry_runner(spec) -> Callable[[], object]:
    return lambda: spec.run("full")


#: Every runnable name: the E1-E19 registry plus the utility commands.
#: ``suite`` is handled separately (it orchestrates the registry).
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    **{name: _registry_runner(spec) for name, spec in REGISTRY.items()},
    "validate": lambda: _validate(),
    "perf": lambda: _perf(),
}


def _perf():
    from repro.bench.perf import run_perf

    return run_perf()


def _validate() -> str:
    from repro.model.validate import render_validation, validate_calibration

    return render_validation(validate_calibration())


def _suite_main(args) -> int:
    """The ``tca-bench suite`` subcommand (see docs/experiments.md).

    SIGINT/SIGTERM are handled: workers are terminated, the journal and
    any requested ``--report`` are flushed with ``interrupted: true``,
    and the exit code is 128+signum — never a traceback.
    """
    import signal

    from repro.bench.cache import ResultCache
    from repro.bench.ioutil import atomic_write_json, atomic_write_text
    from repro.bench.suite import (DEFAULT_JOURNAL_DIR,
                                   render_experiments_md, run_suite)

    if args.smoke and args.tiny:
        print("error: --smoke and --tiny are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.resume and args.no_journal:
        print("error: --resume needs the journal; drop --no-journal",
              file=sys.stderr)
        return 2
    mode = "smoke" if args.smoke else "tiny" if args.tiny else "full"
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal_dir = (None if args.no_journal
                   else args.journal_dir or DEFAULT_JOURNAL_DIR)
    runlog = None
    if args.trace_out:
        from repro.obs.runlog import RunLog

        runlog = RunLog(label="suite")

    # A termination signal becomes KeyboardInterrupt, which the job
    # layer already turns into an orderly partial run.
    caught: list = []

    def _on_signal(signum, frame):
        if not caught:
            caught.append(signum)
            raise KeyboardInterrupt

    old_int = signal.signal(signal.SIGINT, _on_signal)
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        report = run_suite(shards=args.shards, mode=mode, cache=cache,
                           force=args.force, seed=args.seed,
                           log=lambda msg: print(msg, file=sys.stderr),
                           runlog=runlog,
                           journal_dir=journal_dir, resume=args.resume)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Interrupted outside the job layer (startup/teardown): there
        # is no report to flush, but still no traceback.
        signum = caught[0] if caught else signal.SIGINT
        print(f"interrupted (signal {signum}) before any result; "
              "nothing to flush", file=sys.stderr)
        return 128 + signum
    finally:
        signal.signal(signal.SIGINT, old_int)
        signal.signal(signal.SIGTERM, old_term)

    if runlog is not None:
        try:
            runlog.write_trace(args.trace_out)
        except OSError as exc:
            print(f"error: cannot write trace: {exc}", file=sys.stderr)
            return 1
        print(f"run trace -> {args.trace_out} "
              "(Perfetto; 1 wall ns = 1000 trace ps)", file=sys.stderr)

    if args.report:
        try:
            atomic_write_json(args.report, report.to_dict())
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 1
        print(f"conformance report -> {args.report}", file=sys.stderr)

    if args.render_md and not report.interrupted:
        try:
            with open(args.render_md, "r", encoding="utf-8") as fh:
                text = fh.read()
            text, updated = render_experiments_md(report.payloads, text)
            atomic_write_text(args.render_md, text)
        except OSError as exc:
            print(f"error: cannot render tables: {exc}", file=sys.stderr)
            return 1
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"regenerated {len(updated)} tables -> {args.render_md}",
              file=sys.stderr)

    if args.json:
        sys.stdout.write(report.payloads_json())
        print()
    else:
        print(report.render())
    if report.interrupted:
        return 128 + (caught[0] if caught else signal.SIGINT)
    return 0 if report.ok else 1


def _load_json(path: str, what: str):
    """Load one JSON document or print a CLI error; returns None on it."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {what} {path!r}: {exc}",
              file=sys.stderr)
        return None


def _perf_main(args) -> int:
    """``tca-bench perf`` with profiler/gate/history flags."""
    import os

    from repro.bench import history as hist
    from repro.bench.perf import PERF_EXPERIMENTS, run_perf, run_profile

    names = None
    if args.perf_experiments:
        names = [n.strip() for n in args.perf_experiments.split(",")
                 if n.strip()]
        unknown = [n for n in names if n not in PERF_EXPERIMENTS]
        if unknown:
            print(f"error: unknown perf experiments: "
                  f"{', '.join(unknown)}", file=sys.stderr)
            return 2

    threshold = (hist.DEFAULT_THRESHOLD if args.threshold is None
                 else args.threshold)
    budget = (hist.DEFAULT_OVERHEAD_BUDGET
              if args.overhead_budget is None else args.overhead_budget)

    baseline = None
    if args.check:
        baseline = _load_json(args.baseline, "baseline")
        if baseline is None:
            return 2
        problem = hist.validate_perf_doc(
            baseline, f"baseline {args.baseline!r}")
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2

    payload: Dict[str, object] = {}
    rc = 0
    report = None
    # --profile alone skips the bare/instrumented timing pass; any
    # gate/history/baseline work needs the timed report.
    if args.check or args.history or args.bench_json or not args.profile:
        report = run_perf(names)
        payload["perf"] = report.to_dict()
        if not args.json:
            print(report)

    if args.profile:
        profiles = run_profile(names)
        payload["profile"] = {name: rep.to_dict()
                              for name, rep in profiles.items()}
        if not args.json:
            for name, rep in profiles.items():
                print(f"==== profile: {name} ====")
                print(rep.render())
                print()

    if report is not None and args.bench_json:
        from repro.bench.ioutil import atomic_write_json

        try:
            atomic_write_json(args.bench_json, report.to_dict())
        except OSError as exc:
            print(f"error: cannot write benchmark output: {exc}",
                  file=sys.stderr)
            return 1
        print(f"benchmark -> {args.bench_json}", file=sys.stderr)

    if report is not None and args.history:
        try:
            hist.append_run(args.history, report.to_dict())
        except OSError as exc:
            print(f"error: cannot append history: {exc}", file=sys.stderr)
            return 1
        print(f"history -> {args.history}", file=sys.stderr)

    if report is not None and baseline is not None:
        gate = hist.check_against_baseline(
            report.to_dict(), baseline,
            baseline_name=os.path.basename(args.baseline),
            threshold=threshold, overhead_budget=budget,
            events_floor=args.events_floor)
        payload["gate"] = gate.to_dict()
        if not args.json:
            print(gate.render())
        if not gate.ok:
            rc = 1

    if args.json:
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
    return rc


def _report_main(args) -> int:
    """``tca-bench report --html``: render the perf dashboard."""
    import os

    from repro.bench import history as hist

    if not args.html:
        print("error: report requires --html PATH", file=sys.stderr)
        return 2

    history = hist.load_history(args.history) if args.history else []

    perf_doc = gate = None
    if args.perf_json:
        perf_doc = _load_json(args.perf_json, "perf document")
        if perf_doc is None:
            return 2
        problem = hist.validate_perf_doc(
            perf_doc, f"perf document {args.perf_json!r}")
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    if perf_doc is not None and os.path.exists(args.baseline):
        baseline = _load_json(args.baseline, "baseline")
        if baseline is None:
            return 2
        problem = hist.validate_perf_doc(
            baseline, f"baseline {args.baseline!r}")
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
        threshold = (hist.DEFAULT_THRESHOLD if args.threshold is None
                     else args.threshold)
        budget = (hist.DEFAULT_OVERHEAD_BUDGET
                  if args.overhead_budget is None
                  else args.overhead_budget)
        gate = hist.check_against_baseline(
            perf_doc, baseline,
            baseline_name=os.path.basename(args.baseline),
            threshold=threshold, overhead_budget=budget)

    suite_doc = None
    if args.suite_report:
        suite_doc = _load_json(args.suite_report, "suite report")
        if suite_doc is None:
            return 2

    profiles = None
    if args.profile_json:
        doc = _load_json(args.profile_json, "profile document")
        if doc is None:
            return 2
        # Accept both the bare {name: profile} map and the full
        # 'perf --profile --json' stdout document wrapping it.
        profiles = doc.get("profile", doc) if isinstance(doc, dict) \
            else None

    page = hist.render_dashboard(history=history, perf_doc=perf_doc,
                                 gate=gate, suite_doc=suite_doc,
                                 profiles=profiles)
    from repro.bench.ioutil import atomic_write_text

    try:
        atomic_write_text(args.html, page)
    except OSError as exc:
        print(f"error: cannot write dashboard: {exc}", file=sys.stderr)
        return 1
    print(f"dashboard -> {args.html}", file=sys.stderr)
    return 0


def render(result: object, chart: bool = False) -> str:
    """Uniform rendering for tables, sweeps and scalar dicts."""
    if isinstance(result, SweepTable):
        text = result.render()
        if chart:
            text += "\n\n" + result.render_chart()
        return text
    if isinstance(result, dict):
        if not result:
            return "(no results)"
        width = max(len(str(k)) for k in result)
        return "\n".join(f"{k:<{width}} : {v}" for k, v in result.items())
    return str(result)


def to_payload(result: object) -> object:
    """JSON-friendly form of one experiment's result."""
    if isinstance(result, SweepTable):
        return result.to_dict()
    if isinstance(result, dict):
        return result
    to_dict = getattr(result, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return {"text": str(result)}


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="tca-bench",
        description="Regenerate the paper's tables and figures from the "
                    "TCA/PEACH2 simulation.")
    parser.add_argument("experiment", nargs="?", default=None,
                        help="experiment name, or 'all'")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--chart", action="store_true",
                        help="also render sweeps as ASCII charts")
    parser.add_argument("--json", action="store_true",
                        help="emit results as a JSON document on stdout")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Perfetto trace-event JSON file")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write collected metrics (JSON; text for "
                             "paths not ending in .json)")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="arm a fault-injection plan on every engine: "
                             "a preset (none, flaky-links, lost-irq, chaos),"
                             " optionally NAME:SEED, or a JSON plan file "
                             "(see docs/robustness.md)")
    parser.add_argument("--engine-workers", type=int, default=None,
                        metavar="N",
                        help="run multi-engine sweeps (fig7, fig9) across "
                             "N fork workers; output stays byte-identical "
                             "to the inline run (default: "
                             "TCA_ENGINE_WORKERS or inline)")
    parser.add_argument("--bench-json", metavar="PATH", default=None,
                        help="with the 'perf' experiment: write the "
                             "wall-clock benchmark document to PATH "
                             "(see docs/performance.md)")
    group = parser.add_argument_group(
        "suite options", "only meaningful with the 'suite' experiment "
        "(see docs/experiments.md)")
    group.add_argument("--shards", type=int, default=1, metavar="N",
                       help="number of worker processes (default 1)")
    group.add_argument("--smoke", action="store_true",
                       help="reduced sweeps that keep every anchor point")
    group.add_argument("--tiny", action="store_true",
                       help="minimal sweeps (determinism testing; most "
                            "anchors are skipped)")
    group.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="result-cache directory (default "
                            "$TCA_BENCH_CACHE_DIR or .tca-bench-cache)")
    group.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    group.add_argument("--force", action="store_true",
                       help="ignore cache hits but still store results")
    group.add_argument("--seed", type=int, default=0,
                       help="suite seed, folded into every entry seed "
                            "and cache key (default 0)")
    group.add_argument("--report", metavar="PATH", default=None,
                       help="write the tca-bench-suite/1 conformance "
                            "report JSON to PATH")
    group.add_argument("--render-md", metavar="PATH", nargs="?",
                       const="EXPERIMENTS.md", default=None,
                       help="regenerate the marked tables of EXPERIMENTS.md"
                            " (or PATH) from the live results")
    group.add_argument("--trace-out", metavar="PATH", default=None,
                       help="write a wall-clock Perfetto trace of the "
                            "suite run itself (worker timelines, cache "
                            "latencies)")
    group.add_argument("--journal-dir", metavar="PATH", default=None,
                       help="crash-safe run-journal directory (default "
                            ".tca-bench-journal)")
    group.add_argument("--no-journal", action="store_true",
                       help="disable the run journal (and --resume)")
    group.add_argument("--resume", metavar="RUN_ID", default=None,
                       help="resume a journalled run: restore its "
                            "finished payloads and re-execute only the "
                            "unfinished entries")
    perf_group = parser.add_argument_group(
        "perf options", "only meaningful with the 'perf' experiment or "
        "the 'report' subcommand (see docs/performance.md)")
    perf_group.add_argument("--profile", action="store_true",
                            help="profile engine dispatch per experiment "
                                 "and print the top hotspots")
    perf_group.add_argument("--check", action="store_true",
                            help="gate this run against --baseline; "
                                 "exit nonzero on regression")
    perf_group.add_argument("--baseline", metavar="PATH",
                            default="BENCH_PR9.json",
                            help="committed tca-bench-perf/1 baseline "
                                 "for --check (default BENCH_PR9.json)")
    perf_group.add_argument("--threshold", type=float, default=None,
                            metavar="FRAC",
                            help="allowed bare events/s regression "
                                 "(default 0.15)")
    perf_group.add_argument("--events-floor", type=float, default=None,
                            metavar="N",
                            help="with --check: absolute floor on the "
                                 "run's overall bare events/s (catches "
                                 "slow erosion the relative gate "
                                 "cannot)")
    perf_group.add_argument("--overhead-budget", type=float, default=None,
                            metavar="RATIO",
                            help="maximum instrumented/bare overhead "
                                 "ratio (default 3.0)")
    perf_group.add_argument("--history", metavar="PATH", default=None,
                            help="perf-history JSONL: 'perf' appends "
                                 "this run; 'report' plots the trend")
    perf_group.add_argument("--perf-experiments", metavar="NAMES",
                            default=None,
                            help="comma-separated subset of the perf "
                                 "experiments (tiny CI budgets)")
    serve_group = parser.add_argument_group(
        "serve options", "only meaningful with the 'serve' and "
        "'serve-bench' subcommands (see docs/serving.md)")
    serve_group.add_argument("--host", default="127.0.0.1",
                             help="serve: bind address "
                                  "(default 127.0.0.1)")
    serve_group.add_argument("--port", type=int, default=8023,
                             help="serve: TCP port; 0 picks an "
                                  "ephemeral port (default 8023)")
    serve_group.add_argument("--serve-workers", type=int, default=1,
                             metavar="N",
                             help="cold jobs per fork-worker generation;"
                                  " 1 runs them inline on the executor "
                                  "thread (default 1)")
    serve_group.add_argument("--entry", default="fig9",
                             help="serve-bench: registry entry to "
                                  "compute cold (default fig9)")
    serve_group.add_argument("--serve-bench-mode", default="smoke",
                             choices=("full", "smoke", "tiny"),
                             metavar="MODE",
                             help="serve-bench: experiment mode "
                                  "(default smoke)")
    serve_group.add_argument("--requests", type=int, default=2000,
                             metavar="N",
                             help="serve-bench: warm requests per phase "
                                  "(default 2000)")
    serve_group.add_argument("--concurrency", type=int, default=32,
                             metavar="C",
                             help="serve-bench: concurrent keep-alive "
                                  "connections (default 32)")
    serve_group.add_argument("--coalesce", type=int, default=16,
                             metavar="K",
                             help="serve-bench: concurrent identical "
                                  "cold submits (default 16)")
    serve_group.add_argument("--assert-speedup", type=float,
                             default=None, metavar="X",
                             help="serve-bench: exit nonzero unless "
                                  "cold-compute / warm-p50 >= X")
    report_group = parser.add_argument_group(
        "report options", "only meaningful with the 'report' subcommand")
    report_group.add_argument("--html", metavar="PATH", default=None,
                              help="write the self-contained dashboard "
                                   "HTML to PATH")
    report_group.add_argument("--perf-json", metavar="PATH", default=None,
                              help="latest tca-bench-perf/1 document "
                                   "(overhead ratios; gated against "
                                   "--baseline when that file exists)")
    report_group.add_argument("--suite-report", metavar="PATH",
                              default=None,
                              help="tca-bench-suite/1 report JSON "
                                   "(anchor pass/fail)")
    report_group.add_argument("--profile-json", metavar="PATH",
                              default=None,
                              help="profile document from "
                                   "'perf --profile --json' (hotspots)")
    args = parser.parse_args(argv)

    if args.engine_workers is not None:
        from repro.sim.executor import set_default_workers

        try:
            set_default_workers(args.engine_workers)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.list or args.experiment is None:
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  suite")
        print("  serve")
        print("  serve-bench")
        print("  report")
        return 0

    if args.experiment == "suite":
        return _suite_main(args)

    if args.experiment == "serve":
        from repro.serve.server import serve_main

        return serve_main(args)

    if args.experiment == "serve-bench":
        from repro.serve.loadtest import loadtest_main

        return loadtest_main(args)

    if args.experiment == "report":
        return _report_main(args)

    if args.experiment == "perf" and (args.profile or args.check
                                      or args.history
                                      or args.perf_experiments):
        return _perf_main(args)

    names = list(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        for name in unknown:
            print(f"unknown experiment {name!r}; use --list",
                  file=sys.stderr)
        return 2

    obs = None
    if args.trace or args.metrics:
        from repro.obs import Observability

        obs = Observability()

    faults = None
    if args.fault_plan:
        from repro.faults import FaultPlan, FaultSession

        try:
            faults = FaultSession(FaultPlan.parse(args.fault_plan))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    results: Dict[str, object] = {}
    with contextlib.ExitStack() as stack:
        if obs is not None:
            stack.enter_context(obs.session())
        if faults is not None:
            stack.enter_context(faults.session())
        for name in names:
            try:
                results[name] = EXPERIMENTS[name]()
            except ReproError as exc:
                print(f"error: {name}: {exc}", file=sys.stderr)
                return 1

    if faults is not None:
        print(faults.summary(), file=sys.stderr)

    if args.bench_json:
        perf_report = results.get("perf")
        if perf_report is None:
            print("error: --bench-json requires the 'perf' experiment",
                  file=sys.stderr)
            return 2
        try:
            with open(args.bench_json, "w", encoding="utf-8") as fh:
                json.dump(perf_report.to_dict(), fh, indent=2)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write benchmark output: {exc}",
                  file=sys.stderr)
            return 1
        print(f"benchmark -> {args.bench_json}", file=sys.stderr)

    if obs is not None:
        try:
            if args.trace:
                obs.write_trace(args.trace)
                print(f"trace: {obs.total_records} events -> {args.trace}"
                      + (f" ({obs.total_dropped} dropped)"
                         if obs.total_dropped else ""),
                      file=sys.stderr)
            if args.metrics:
                if args.metrics.endswith(".json"):
                    obs.write_metrics(args.metrics)
                else:
                    with open(args.metrics, "w", encoding="utf-8") as fh:
                        fh.write(obs.render_metrics() + "\n")
                print(f"metrics -> {args.metrics}", file=sys.stderr)
        except OSError as exc:
            print(f"error: cannot write observability output: {exc}",
                  file=sys.stderr)
            return 1

    if args.json:
        payload = {name: to_payload(result)
                   for name, result in results.items()}
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        return 0

    for name, result in results.items():
        print(f"==== {name} ====")
        print(render(result, chart=args.chart))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
