"""Sharded experiment-suite runner with result caching and anchor checks.

``tca-bench suite`` fans the E1-E19 registry
(:data:`repro.bench.experiments.REGISTRY`) out across worker processes,
caches every result in a content-addressed store
(:mod:`repro.bench.cache`), and checks the full anchor table
(:data:`repro.model.anchors.ANCHORS`) against the live payloads.  It is
the single source of truth for "does this repo still reproduce the
paper":

* **Sharding** — entries are partitioned over ``--shards N`` worker
  processes (longest-processing-time first, by each entry's cost hint),
  each worker seeding ``random``/``numpy`` deterministically per entry.
* **Caching** — the cache key covers the entry name, its exact
  parameters, the calibration fingerprint, the hash of every ``repro``
  source file, and the suite seed; a warm run returns byte-identical
  payloads without simulating anything.
* **Conformance** — the report (schema ``tca-bench-suite/1``) carries
  per-anchor pass/fail with paper-vs-measured values, per-entry cache
  hit/miss, and per-shard wall clock; ``--render-md`` regenerates the
  tables inside EXPERIMENTS.md from the same payloads, so the spec
  document and the simulator cannot drift.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.cache import (ResultCache, cache_key, canonical_json,
                               sources_fingerprint)
from repro.bench.experiments import EXPERIMENT_IDS, REGISTRY, ExperimentSpec
from repro.errors import ConfigError
from repro.model.anchors import ANCHORS, AnchorCheck, calibration_fingerprint
from repro.units import pretty_size

#: Version tag of the conformance report document.
SCHEMA = "tca-bench-suite/1"

#: Suite modes: full fidelity, anchor-preserving reduction, determinism-
#: test reduction.
MODES = ("full", "smoke", "tiny")


def derive_seed(seed: int, entry: str) -> int:
    """Deterministic per-entry seed: stable across runs and shardings."""
    digest = hashlib.sha256(f"{seed}:{entry}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def payload_json(result: object) -> str:
    """Canonical JSON text of one experiment result."""
    from repro.bench.cli import to_payload

    return canonical_json(to_payload(result))


def run_entry(name: str, mode: str, seed: int) -> Tuple[str, float]:
    """Run one registry entry; returns (canonical payload, wall seconds)."""
    spec = REGISTRY[name]
    entry_seed = derive_seed(seed, name)
    random.seed(entry_seed)
    np.random.seed(entry_seed & 0xFFFFFFFF)
    start = time.perf_counter()
    result = spec.run(mode)
    return payload_json(result), time.perf_counter() - start


def _run_shard_entries(names: Sequence[str], mode: str, seed: int,
                       origin_ns: Optional[int] = None):
    """One shard's entries, with wall-clock offsets when telemetry is on.

    Returns ``(outcomes, shard_wall_s, shard_start_off_ns)`` where each
    outcome is ``(name, payload, wall_s, error, start_off_ns)``.
    Offsets are nanoseconds since ``origin_ns`` on the machine-wide
    monotonic clock (``None`` when telemetry is off), so the parent can
    place worker spans on its own :class:`~repro.obs.runlog.RunLog`
    timeline.
    """
    def offset() -> Optional[int]:
        if origin_ns is None:
            return None
        return time.perf_counter_ns() - origin_ns

    start = time.perf_counter()
    start_off = offset()
    out = []
    for name in names:
        entry_off = offset()
        try:
            payload, wall = run_entry(name, mode, seed)
            out.append((name, payload, wall, None, entry_off))
        except Exception as exc:  # surfaced as an entry error in the report
            out.append((name, None, 0.0, f"{type(exc).__name__}: {exc}",
                        entry_off))
    return out, time.perf_counter() - start, start_off


def _shard_main(index: int, names: Sequence[str], mode: str, seed: int,
                queue, origin_ns: Optional[int] = None) -> None:
    """Worker-process body: run one shard's entries and report back."""
    out, wall, start_off = _run_shard_entries(names, mode, seed, origin_ns)
    queue.put((index, out, wall, start_off))


def partition(names: Sequence[str], shards: int) -> List[List[str]]:
    """Deterministic longest-processing-time-first shard assignment."""
    shards = max(1, min(shards, len(names)) if names else 1)
    by_cost = sorted(names, key=lambda n: (-REGISTRY[n].cost_s, n))
    loads = [0.0] * shards
    buckets: List[List[str]] = [[] for _ in range(shards)]
    for name in by_cost:
        i = min(range(shards), key=lambda s: (loads[s], s))
        buckets[i].append(name)
        loads[i] += REGISTRY[name].cost_s
    return buckets


@dataclass
class EntryResult:
    """One registry entry's outcome inside a suite run."""

    name: str
    eid: str
    mode: str
    key: str
    cache: str                   # "hit" | "miss"
    shard: Optional[int]
    wall_s: float
    payload_json: Optional[str]
    error: Optional[str] = None

    @property
    def payload(self) -> object:
        return (json.loads(self.payload_json)
                if self.payload_json is not None else None)

    def to_dict(self, include_payload: bool = True) -> Dict[str, object]:
        spec = REGISTRY[self.name]
        doc: Dict[str, object] = {
            "name": self.name,
            "eid": self.eid,
            "title": spec.title,
            "kind": spec.kind,
            "mode": self.mode,
            "key": self.key,
            "cache": self.cache,
            "shard": self.shard,
            "wall_s": round(self.wall_s, 4),
        }
        if self.error is not None:
            doc["error"] = self.error
        elif include_payload:
            doc["payload"] = self.payload
        return doc


@dataclass
class SuiteReport:
    """Everything one ``tca-bench suite`` run produced."""

    mode: str
    shards: int
    seed: int
    calibration_fp: str
    sources_fp: str
    entries: List[EntryResult] = field(default_factory=list)
    checks: List[AnchorCheck] = field(default_factory=list)
    shard_walls: List[Dict[str, object]] = field(default_factory=list)
    wall_s: float = 0.0
    #: Wall-clock run telemetry (RunLog.summary()); only set when the
    #: suite ran with a runlog attached.  Never part of payloads_json,
    #: so payload byte-determinism is unaffected.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def payloads(self) -> Dict[str, object]:
        """Entry name -> decoded payload (errors omitted)."""
        return {e.name: e.payload for e in self.entries
                if e.payload_json is not None}

    @property
    def ok(self) -> bool:
        """No anchor failed and no entry errored."""
        return (all(c.status != "fail" for c in self.checks)
                and all(e.error is None for e in self.entries))

    def summary(self) -> Dict[str, object]:
        status = [c.status for c in self.checks]
        return {
            "entries": len(self.entries),
            "experiments": len({e.eid for e in self.entries}),
            "errors": sum(1 for e in self.entries if e.error),
            "cache_hits": sum(1 for e in self.entries if e.cache == "hit"),
            "cache_misses": sum(1 for e in self.entries
                                if e.cache == "miss"),
            "anchors_pass": status.count("pass"),
            "anchors_fail": status.count("fail"),
            "anchors_skipped": status.count("skipped"),
            "wall_s": round(self.wall_s, 4),
            "ok": self.ok,
        }

    def to_dict(self, include_payloads: bool = True) -> Dict[str, object]:
        doc = {
            "schema": SCHEMA,
            "mode": self.mode,
            "shards": self.shards,
            "seed": self.seed,
            "calibration_fingerprint": self.calibration_fp,
            "sources_fingerprint": self.sources_fp,
            "entries": [e.to_dict(include_payloads) for e in self.entries],
            "shard_walls": self.shard_walls,
            "anchors": [c.to_dict() for c in self.checks],
            "summary": self.summary(),
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        return doc

    def payloads_json(self) -> str:
        """Canonical entry-name -> payload document (byte-stable)."""
        return canonical_json({e.name: json.loads(e.payload_json)
                               for e in self.entries
                               if e.payload_json is not None})

    def render(self) -> str:
        s = self.summary()
        lines = [
            f"tca-bench suite  mode={self.mode} shards={self.shards} "
            f"seed={self.seed}",
            f"entries: {s['entries']} covering {s['experiments']} "
            f"experiments ({EXPERIMENT_IDS[0]}-{EXPERIMENT_IDS[-1]})  "
            f"cache: {s['cache_hits']} hits / {s['cache_misses']} misses  "
            f"wall: {s['wall_s']:.2f}s",
        ]
        for shard in self.shard_walls:
            names = ", ".join(shard["entries"])
            lines.append(f"  shard {shard['shard']}: "
                         f"{shard['wall_s']:.2f}s  [{names}]")
        for e in self.entries:
            if e.error:
                lines.append(f"  ERROR {e.name}: {e.error}")
        lines.append("")
        for check in self.checks:
            lines.append(str(check))
        lines.append(
            f"anchors: {s['anchors_pass']} pass, {s['anchors_fail']} fail, "
            f"{s['anchors_skipped']} skipped")
        return "\n".join(lines)


def check_anchors(payloads: Dict[str, object]) -> List[AnchorCheck]:
    """Evaluate every anchor whose experiment payload is present."""
    return [anchor.check(payloads[anchor.experiment])
            for anchor in ANCHORS if anchor.experiment in payloads]


def run_suite(names: Optional[Sequence[str]] = None, shards: int = 1,
              mode: str = "full", cache: Optional[ResultCache] = None,
              force: bool = False, seed: int = 0,
              log: Optional[Callable[[str], None]] = None,
              runlog=None) -> SuiteReport:
    """Run the registry through shards and cache; returns the report.

    ``names`` defaults to every registry entry.  ``cache=None`` disables
    the store entirely; ``force=True`` keeps the store but ignores hits
    (results are still written back).

    ``runlog`` (a :class:`repro.obs.runlog.RunLog`) turns on wall-clock
    run telemetry: per-shard worker timelines and per-entry spans land
    as trace records, cache hit/miss/store latencies as histograms, and
    the summary rides the report's ``telemetry`` key.  Payloads are
    byte-identical with or without it.
    """
    if mode not in MODES:
        raise ConfigError(f"unknown suite mode {mode!r}")
    names = list(REGISTRY) if names is None else list(names)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise ConfigError(f"unknown registry entries: {', '.join(unknown)}")

    def cache_get(key: str) -> Optional[str]:
        if cache is None or force:
            return None
        if runlog is None:
            return cache.get(key)
        t0 = runlog.now_ps()
        hit = cache.get(key)
        bucket = "hit" if hit is not None else "miss"
        runlog.metrics.histogram(f"suite.cache.{bucket}_us").observe(
            (runlog.now_ps() - t0) / 1e6)
        return hit

    def cache_put(key: str, name: str, payload: str, meta) -> None:
        if runlog is None:
            cache.put(key, name, payload, meta=meta)
            return
        t0 = runlog.now_ps()
        cache.put(key, name, payload, meta=meta)
        runlog.metrics.histogram("suite.cache.store_us").observe(
            (runlog.now_ps() - t0) / 1e6)

    calib_fp = calibration_fingerprint()
    sources_fp = sources_fingerprint()
    report = SuiteReport(mode=mode, shards=max(1, shards), seed=seed,
                         calibration_fp=calib_fp, sources_fp=sources_fp)
    start = time.perf_counter()
    if runlog is not None:
        runlog.event("suite", "start", mode=mode, entries=len(names),
                     shards=max(1, shards))

    keys = {name: cache_key(name, REGISTRY[name].params_for(mode),
                            calib_fp, sources_fp, seed)
            for name in names}
    results: Dict[str, EntryResult] = {}
    cold: List[str] = []
    for name in names:
        hit = cache_get(keys[name])
        if hit is not None:
            results[name] = EntryResult(
                name=name, eid=REGISTRY[name].eid, mode=mode,
                key=keys[name], cache="hit", shard=None, wall_s=0.0,
                payload_json=hit)
        else:
            cold.append(name)

    if log and cold:
        log(f"running {len(cold)} cold entries over "
            f"{min(max(1, shards), len(cold))} shard(s); "
            f"{len(results)} cached")

    if cold:
        origin_ns = None if runlog is None else runlog.origin_ns
        buckets = partition(cold, shards)
        if len(buckets) == 1:
            collected = [(0, *_run_shard_entries(buckets[0], mode, seed,
                                                 origin_ns))]
        else:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn")
            queue = ctx.SimpleQueue()
            if runlog is not None:
                runlog.event("suite", "fork", shards=len(buckets))
            procs = [ctx.Process(target=_shard_main,
                                 args=(i, bucket, mode, seed, queue,
                                       origin_ns),
                                 daemon=True)
                     for i, bucket in enumerate(buckets)]
            for p in procs:
                p.start()
            collected = [queue.get() for _ in procs]
            for p in procs:
                p.join()

        for index, outcomes, shard_wall, shard_off in sorted(collected):
            report.shard_walls.append({
                "shard": index,
                "entries": [name for name, _, _, _, _ in outcomes],
                "wall_s": round(shard_wall, 4),
            })
            if runlog is not None and shard_off is not None:
                # shard_off is the fork-to-first-instruction queue wait.
                runlog.add_span(f"shard{index}", "shard",
                                shard_off * 1000,
                                int(shard_wall * 1e12),
                                entries=len(outcomes),
                                queue_wait_us=round(shard_off / 1e3, 1))
            for name, payload, wall, error, entry_off in outcomes:
                results[name] = EntryResult(
                    name=name, eid=REGISTRY[name].eid, mode=mode,
                    key=keys[name], cache="miss", shard=index, wall_s=wall,
                    payload_json=payload, error=error)
                if runlog is not None and entry_off is not None:
                    detail = {"entry": name}
                    if error is not None:
                        detail["error"] = error
                    runlog.add_span(f"shard{index}", "entry",
                                    entry_off * 1000, int(wall * 1e12),
                                    **detail)
                if cache is not None and payload is not None:
                    cache_put(keys[name], name, payload, meta={
                        "mode": mode,
                        "wall_s": round(wall, 4),
                        "seed": seed,
                        "calibration": calib_fp,
                    })

    report.entries = [results[name] for name in names]
    # Tiny sweeps exist for byte-stability testing only; their reduced
    # fidelity makes anchor values meaningless, so no anchor is checked.
    if runlog is not None:
        with runlog.span("suite", "anchors"):
            report.checks = (check_anchors(report.payloads)
                             if mode != "tiny" else [])
        report.telemetry = runlog.summary()
    else:
        report.checks = (check_anchors(report.payloads)
                         if mode != "tiny" else [])
    report.wall_s = time.perf_counter() - start
    return report


# -- EXPERIMENTS.md regeneration -----------------------------------------------------------------

def _md_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---:" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def _sweep_columns(payload: Dict[str, object],
                   columns: Sequence[Tuple[str, str]],
                   x_header: str = "size", x_is_size: bool = True,
                   fmt: str = "{:.3f}") -> str:
    series = payload["series"]
    xs = sorted({x for label, _ in columns if label in series
                 for x, _ in series[label]})
    rows = []
    for x in xs:
        cell = pretty_size(int(x)) if x_is_size else f"{x:g}"
        row = [cell]
        for label, _ in columns:
            value = next((y for px, y in series.get(label, ())
                          if px == x), None)
            row.append(fmt.format(value) if value is not None else "—")
        rows.append(row)
    return _md_table([x_header] + [head for _, head in columns], rows)


def _md_fig7(p):
    return _sweep_columns(p, [("CPU (write)", "CPU write"),
                              ("CPU (read)", "CPU read"),
                              ("GPU (write)", "GPU write"),
                              ("GPU (read)", "GPU read")])


def _md_fig9(p):
    points = dict(p["series"]["CPU (write)"])
    counts = sorted(points)
    return _md_table(["requests"] + [f"{c:g}" for c in counts],
                     [["CPU write (GB/s)"]
                      + [f"{points[c]:.2f}" for c in counts]])


def _md_theory(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["Gen2 x8 post-encoding rate", "4 Gbytes/s",
          f"{p['gen2_x8_raw_gbytes']:.3f}"],
         ["payload ceiling at MPS 256 B", "3.66 Gbytes/s",
          f"{p['eq1_peak_gbytes']:.3f}"],
         ["GPU-read latency-bandwidth bound", "(implied by 830 MB/s)",
          f"{p['gpu_read_bound_gbytes']:.3f}"]])


def _md_limits(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["GPU DMA-read ceiling", "830 Mbytes/s",
          f"{p['gpu_read_gbytes']:.3f} GB/s"],
         ["GPU write, same socket", "≈ CPU write",
          f"{p['gpu_write_same_socket_gbytes']:.2f} GB/s"],
         ["GPU write across QPI", "\"several hundred Mbytes/sec\"",
          f"{p['gpu_write_over_qpi_gbytes']:.2f} GB/s"]])


def _md_latency(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["one-way store-to-commit, 2 chips + 1 cable",
          f"**{p['paper_ns']:g} ns**", f"**{p['pio_one_way_ns']:.1f} ns**"],
         ["observed by the polling driver", "—",
          f"{p['pio_polled_ns']:g} ns (poll quantization)"],
         ["vs InfiniBand FDR claim", "< 1 µs",
          f"{p['pio_one_way_ns']:g} < {p['infiniband_fdr_claim_ns']:g} ✓"]])


def _md_fig12(p):
    return _sweep_columns(p, [("remote CPU", "remote CPU"),
                              ("local CPU (write)", "local CPU"),
                              ("remote GPU", "remote GPU"),
                              ("local GPU (write)", "local GPU")])


def _md_crossover(p):
    return _sweep_columns(p, [("tca-pio", "PIO (µs)"),
                              ("tca-dma", "DMA (µs)")], fmt="{:.3g}")


def _md_hierarchy(p):
    return _sweep_columns(p, [("local (TCA)", "local put (TCA)"),
                              ("global (IB)", "global put (IB)")],
                          fmt="{:.4g} µs")


def _md_collectives(p):
    return _sweep_columns(p, [("tca", "TCA"), ("mpi-ib", "MPI over IB")],
                          x_header="block", fmt="{:.4g} µs")


def _md_contention(p):
    return _sweep_columns(p, [("4-node ring", "4-node"),
                              ("8-node ring", "8-node"),
                              ("16-node ring", "16-node")],
                          x_header="hop distance", x_is_size=False,
                          fmt="{:.2f}")


def _md_collective_allreduce(p):
    return _sweep_columns(p, [("tca", "TCA"), ("mpi-ib", "MPI over IB")],
                          x_header="vector", fmt="{:.4g} µs")


def _md_collective_dual_ring(p):
    return _sweep_columns(p, [("single-ring", "single ring"),
                              ("dual-ring", "dual ring")],
                          x_header="vector", fmt="{:.4g} µs")


#: Registry entry name -> EXPERIMENTS.md table renderer.
MD_RENDERERS: Dict[str, Callable[[Dict[str, object]], str]] = {
    "theory": _md_theory,
    "fig7": _md_fig7,
    "fig9": _md_fig9,
    "limits": _md_limits,
    "latency": _md_latency,
    "fig12": _md_fig12,
    "pio-dma-crossover": _md_crossover,
    "hierarchy": _md_hierarchy,
    "collectives": _md_collectives,
    "contention": _md_contention,
    "collective-allreduce": _md_collective_allreduce,
    "collective-dual-ring": _md_collective_dual_ring,
}


def render_experiments_md(payloads: Dict[str, object],
                          text: str) -> Tuple[str, List[str]]:
    """Replace every ``<!-- suite:NAME -->`` block with a live table.

    Returns (new text, names regenerated).  Raises
    :class:`~repro.errors.ConfigError` if a payload has a renderer but
    the document lacks its markers — the document must stay regenerable.
    """
    updated = []
    for name, renderer in MD_RENDERERS.items():
        if name not in payloads:
            continue
        begin, end = f"<!-- suite:{name} -->", f"<!-- /suite:{name} -->"
        i = text.find(begin)
        j = text.find(end)
        if i < 0 or j < 0 or j < i:
            raise ConfigError(
                f"EXPERIMENTS.md lacks the {begin} ... {end} markers")
        table = renderer(payloads[name])
        text = (text[:i + len(begin)] + "\n" + table + "\n" + text[j:])
        updated.append(name)
    return text, updated
