"""Sharded experiment-suite runner with result caching and anchor checks.

``tca-bench suite`` fans the full E1-E23 registry
(:data:`repro.bench.experiments.REGISTRY`) out across worker processes,
caches every result in a content-addressed store
(:mod:`repro.bench.cache`), and checks the full anchor table
(:data:`repro.model.anchors.ANCHORS`) against the live payloads.  It is
the single source of truth for "does this repo still reproduce the
paper":

* **Sharding** — entries are partitioned over ``--shards N`` worker
  processes (longest-processing-time first, by each entry's cost hint),
  each worker seeding ``random``/``numpy`` deterministically per entry.
* **Caching** — the cache key covers the entry name, its exact
  parameters, the calibration fingerprint, the hash of every ``repro``
  source file, and the suite seed; a warm run returns byte-identical
  payloads without simulating anything.
* **Conformance** — the report (schema ``tca-bench-suite/1``) carries
  per-anchor pass/fail with paper-vs-measured values, per-entry cache
  hit/miss, and per-shard wall clock; ``--render-md`` regenerates the
  tables inside EXPERIMENTS.md from the same payloads, so the spec
  document and the simulator cannot drift.
* **Crash tolerance** — every entry runs as a supervised
  :class:`~repro.bench.jobs.Job`: per-entry deadlines, seeded retry
  backoff, dead-worker requeue, and an append-only run journal
  (``tca-bench-journal/1``) that ``--resume RUN_ID`` replays to
  re-execute only unfinished entries, byte-identically.  Corrupted
  cache entries are quarantined and transparently re-run.  The
  ``robustness`` key of the report counts every such event, so
  degradation is observable, never silent.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.cache import (ResultCache, cache_key, canonical_json,
                               sources_fingerprint)
from repro.bench.experiments import EXPERIMENT_IDS, REGISTRY, ExperimentSpec
from repro.bench.jobs import (DEFAULT_MAX_ATTEMPTS, DONE, FAILED, Job,
                              JobScheduler, Journal, default_deadline_s,
                              lpt_shards, new_run_id, run_job_inline)
from repro.errors import ConfigError
from repro.model.anchors import ANCHORS, AnchorCheck, calibration_fingerprint
from repro.units import pretty_size

#: Version tag of the conformance report document.
SCHEMA = "tca-bench-suite/1"

#: Where run journals live unless overridden (CLI: ``--journal-dir``).
DEFAULT_JOURNAL_DIR = ".tca-bench-journal"

#: Suite modes: full fidelity, anchor-preserving reduction, determinism-
#: test reduction.
MODES = ("full", "smoke", "tiny")


def derive_seed(seed: int, entry: str) -> int:
    """Deterministic per-entry seed: stable across runs and shardings."""
    digest = hashlib.sha256(f"{seed}:{entry}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def payload_json(result: object) -> str:
    """Canonical JSON text of one experiment result."""
    from repro.bench.cli import to_payload

    return canonical_json(to_payload(result))


def run_entry(name: str, mode: str, seed: int) -> Tuple[str, float]:
    """Run one registry entry; returns (canonical payload, wall seconds)."""
    spec = REGISTRY[name]
    entry_seed = derive_seed(seed, name)
    random.seed(entry_seed)
    np.random.seed(entry_seed & 0xFFFFFFFF)
    start = time.perf_counter()
    result = spec.run(mode)
    return payload_json(result), time.perf_counter() - start


def partition(names: Sequence[str], shards: int) -> List[List[str]]:
    """Deterministic longest-processing-time-first shard assignment.

    Delegates to :func:`repro.bench.jobs.lpt_shards` with registry cost
    hints and the entry name as the equal-cost tiebreak (the historical
    ordering, kept so resumed journals shard the same way).
    """
    buckets = lpt_shards([REGISTRY[n].cost_s for n in names], shards,
                         tiebreak=names)
    return [[names[i] for i in bucket] for bucket in buckets]


@dataclass
class EntryResult:
    """One registry entry's outcome inside a suite run."""

    name: str
    eid: str
    mode: str
    key: str
    cache: str                   # "hit" | "miss" | "journal"
    shard: Optional[int]
    wall_s: float
    payload_json: Optional[str]
    error: Optional[str] = None

    @property
    def payload(self) -> object:
        return (json.loads(self.payload_json)
                if self.payload_json is not None else None)

    def to_dict(self, include_payload: bool = True) -> Dict[str, object]:
        spec = REGISTRY[self.name]
        doc: Dict[str, object] = {
            "name": self.name,
            "eid": self.eid,
            "title": spec.title,
            "kind": spec.kind,
            "mode": self.mode,
            "key": self.key,
            "cache": self.cache,
            "shard": self.shard,
            "wall_s": round(self.wall_s, 4),
        }
        if self.error is not None:
            doc["error"] = self.error
        elif include_payload:
            doc["payload"] = self.payload
        return doc


@dataclass
class SuiteReport:
    """Everything one ``tca-bench suite`` run produced."""

    mode: str
    shards: int
    seed: int
    calibration_fp: str
    sources_fp: str
    entries: List[EntryResult] = field(default_factory=list)
    checks: List[AnchorCheck] = field(default_factory=list)
    shard_walls: List[Dict[str, object]] = field(default_factory=list)
    wall_s: float = 0.0
    #: Journal identity of this run (None when journalling is off).
    run_id: Optional[str] = None
    journal_path: Optional[str] = None
    #: True when the run was cut short by SIGINT/SIGTERM; the report
    #: then covers only the entries that finished.
    interrupted: bool = False
    #: Supervision counters (retries, requeues, deadline kills, lost
    #: workers, quarantined cache entries, resumed entries) — the
    #: "degradation is observable" contract.
    robustness: Dict[str, object] = field(default_factory=dict)
    #: Wall-clock run telemetry (RunLog.summary()); only set when the
    #: suite ran with a runlog attached.  Never part of payloads_json,
    #: so payload byte-determinism is unaffected.
    telemetry: Optional[Dict[str, object]] = None

    @property
    def payloads(self) -> Dict[str, object]:
        """Entry name -> decoded payload (errors omitted)."""
        return {e.name: e.payload for e in self.entries
                if e.payload_json is not None}

    @property
    def ok(self) -> bool:
        """Complete, no anchor failed, and no entry errored."""
        return (not self.interrupted
                and all(c.status != "fail" for c in self.checks)
                and all(e.error is None for e in self.entries))

    def summary(self) -> Dict[str, object]:
        status = [c.status for c in self.checks]
        return {
            "entries": len(self.entries),
            "experiments": len({e.eid for e in self.entries}),
            "errors": sum(1 for e in self.entries if e.error),
            "cache_hits": sum(1 for e in self.entries if e.cache == "hit"),
            "cache_misses": sum(1 for e in self.entries
                                if e.cache == "miss"),
            "resumed": sum(1 for e in self.entries
                           if e.cache == "journal"),
            "anchors_pass": status.count("pass"),
            "anchors_fail": status.count("fail"),
            "anchors_skipped": status.count("skipped"),
            "wall_s": round(self.wall_s, 4),
            "interrupted": self.interrupted,
            "ok": self.ok,
        }

    def to_dict(self, include_payloads: bool = True) -> Dict[str, object]:
        doc = {
            "schema": SCHEMA,
            "mode": self.mode,
            "shards": self.shards,
            "seed": self.seed,
            "run_id": self.run_id,
            "interrupted": self.interrupted,
            "calibration_fingerprint": self.calibration_fp,
            "sources_fingerprint": self.sources_fp,
            "entries": [e.to_dict(include_payloads) for e in self.entries],
            "shard_walls": self.shard_walls,
            "anchors": [c.to_dict() for c in self.checks],
            "robustness": self.robustness,
            "summary": self.summary(),
        }
        if self.telemetry is not None:
            doc["telemetry"] = self.telemetry
        return doc

    def payloads_json(self) -> str:
        """Canonical entry-name -> payload document (byte-stable)."""
        return canonical_json({e.name: json.loads(e.payload_json)
                               for e in self.entries
                               if e.payload_json is not None})

    def render(self) -> str:
        s = self.summary()
        lines = [
            f"tca-bench suite  mode={self.mode} shards={self.shards} "
            f"seed={self.seed}"
            + (f"  run={self.run_id}" if self.run_id else ""),
            f"entries: {s['entries']} covering {s['experiments']} "
            f"experiments ({EXPERIMENT_IDS[0]}-{EXPERIMENT_IDS[-1]})  "
            f"cache: {s['cache_hits']} hits / {s['cache_misses']} misses  "
            f"wall: {s['wall_s']:.2f}s",
        ]
        if self.interrupted:
            lines.append("  INTERRUPTED: partial results only; resume "
                         f"with --resume {self.run_id}")
        for shard in self.shard_walls:
            names = ", ".join(shard["entries"])
            lines.append(f"  shard {shard['shard']}: "
                         f"{shard['wall_s']:.2f}s  [{names}]")
        for e in self.entries:
            if e.error:
                lines.append(f"  ERROR {e.name}: {e.error}")
        degraded = {k: v for k, v in self.robustness.items()
                    if isinstance(v, int) and v
                    and k not in ("workers_spawned", "heartbeats")}
        if degraded:
            lines.append("  robustness: " + ", ".join(
                f"{k}={v}" for k, v in sorted(degraded.items())))
        lines.append("")
        for check in self.checks:
            lines.append(str(check))
        lines.append(
            f"anchors: {s['anchors_pass']} pass, {s['anchors_fail']} fail, "
            f"{s['anchors_skipped']} skipped")
        return "\n".join(lines)


def check_anchors(payloads: Dict[str, object]) -> List[AnchorCheck]:
    """Evaluate every anchor whose experiment payload is present."""
    return [anchor.check(payloads[anchor.experiment])
            for anchor in ANCHORS if anchor.experiment in payloads]


def _resume_state(journal_dir: Path, run_id: str):
    """Load and sanity-check the journal of the run being resumed."""
    path = Journal.path_for(journal_dir, run_id)
    records = Journal.read(path)
    header, done = Journal.replay(records)
    if header is None:
        raise ConfigError(
            f"cannot resume run {run_id!r}: no journal header found at "
            f"{path} (was the run journalled?)")
    return header, done


def _make_jobs(cold: Sequence[str], keys: Dict[str, str], mode: str,
               seed: int, max_attempts: int,
               chaos: Optional[Dict[str, Dict[str, float]]]) -> List[Job]:
    """Cold entries as supervised jobs, LPT order preserved."""
    chaos = chaos or {}
    deadline_over = chaos.get("deadline_s", {})
    hang = chaos.get("hang_s", {})
    jobs = []
    for name in partition(cold, 1)[0]:
        spec = REGISTRY[name]
        jobs.append(Job(
            name=name, eid=spec.eid, key=keys[name], mode=mode, seed=seed,
            cost_s=spec.cost_s,
            deadline_s=deadline_over.get(name,
                                         default_deadline_s(spec.cost_s)),
            max_attempts=max_attempts,
            hang_s=hang.get(name, 0.0)))
    return jobs


def run_suite(names: Optional[Sequence[str]] = None, shards: int = 1,
              mode: str = "full", cache: Optional[ResultCache] = None,
              force: bool = False, seed: int = 0,
              log: Optional[Callable[[str], None]] = None,
              runlog=None,
              journal_dir: Optional[Path] = None,
              resume: Optional[str] = None,
              max_attempts: int = DEFAULT_MAX_ATTEMPTS,
              chaos: Optional[Dict[str, Dict[str, float]]] = None,
              on_event: Optional[Callable] = None) -> SuiteReport:
    """Run the registry through supervised jobs and the cache.

    ``names`` defaults to every registry entry.  ``cache=None`` disables
    the store entirely; ``force=True`` keeps the store but ignores hits
    (results are still written back).

    ``journal_dir`` turns on the crash-safe run journal; ``resume`` (a
    run id from a previous journalled run) re-executes only entries
    that run did not finish and restores finished payloads from the
    journal, byte-identically.  A resume refuses to mix model versions:
    the journal's source/calibration fingerprints must match the
    working tree's.

    ``shards > 1`` runs cold entries on a supervised fork-worker pool
    (:class:`~repro.bench.jobs.JobScheduler`): per-entry deadlines,
    seeded retry backoff, dead-worker requeue.  SIGINT/SIGTERM produce
    a partial report flagged ``interrupted`` instead of a traceback.

    ``chaos`` is the fault-injection side door used by
    :mod:`repro.faults.harness_chaos`:
    ``{"hang_s": {entry: s}, "deadline_s": {entry: s}}`` force an
    entry's first attempt to hang and/or tighten its deadline.
    ``on_event`` observes every supervisor event (the harness uses it
    to SIGKILL workers mid-run).

    ``runlog`` (a :class:`repro.obs.runlog.RunLog`) turns on wall-clock
    run telemetry: per-shard worker timelines and per-entry spans land
    as trace records, cache hit/miss/store latencies as histograms, and
    the summary rides the report's ``telemetry`` key.  Payloads are
    byte-identical with or without it.
    """
    if mode not in MODES:
        raise ConfigError(f"unknown suite mode {mode!r}")

    resumed_payloads: Dict[str, str] = {}
    if resume is not None:
        jdir = Path(journal_dir or DEFAULT_JOURNAL_DIR)
        header, resumed_payloads = _resume_state(jdir, resume)
        mode = header.get("mode", mode)
        seed = header.get("seed", seed)
        names = header.get("entries", names)
        journal_dir = jdir

    names = list(REGISTRY) if names is None else list(names)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        raise ConfigError(f"unknown registry entries: {', '.join(unknown)}")

    def cache_get(key: str) -> Optional[str]:
        if cache is None or force:
            return None
        if runlog is None:
            return cache.get(key)
        t0 = runlog.now_ps()
        hit = cache.get(key)
        bucket = "hit" if hit is not None else "miss"
        runlog.metrics.histogram(f"suite.cache.{bucket}_us").observe(
            (runlog.now_ps() - t0) / 1e6)
        return hit

    def cache_put(key: str, name: str, payload: str, meta) -> None:
        if runlog is None:
            cache.put(key, name, payload, meta=meta)
            return
        t0 = runlog.now_ps()
        cache.put(key, name, payload, meta=meta)
        runlog.metrics.histogram("suite.cache.store_us").observe(
            (runlog.now_ps() - t0) / 1e6)

    calib_fp = calibration_fingerprint()
    sources_fp = sources_fingerprint()
    if resume is not None:
        if (header.get("calibration_fingerprint") != calib_fp
                or header.get("sources_fingerprint") != sources_fp):
            raise ConfigError(
                f"cannot resume run {resume!r}: the repro sources or "
                "calibration changed since that run was journalled; "
                "results would not be comparable — run without --resume")

    report = SuiteReport(mode=mode, shards=max(1, shards), seed=seed,
                         calibration_fp=calib_fp, sources_fp=sources_fp)
    start = time.perf_counter()
    if runlog is not None:
        runlog.event("suite", "start", mode=mode, entries=len(names),
                     shards=max(1, shards))

    keys = {name: cache_key(name, REGISTRY[name].params_for(mode),
                            calib_fp, sources_fp, seed)
            for name in names}

    journal: Optional[Journal] = None
    if resume is not None:
        report.run_id = resume
        journal = Journal.resume(Path(journal_dir), resume)
    elif journal_dir is not None:
        report.run_id = new_run_id(mode, seed)
        journal = Journal.create(
            Path(journal_dir), report.run_id, mode=mode, seed=seed,
            shards=max(1, shards), entries=names,
            calibration_fingerprint=calib_fp,
            sources_fingerprint=sources_fp)
    if journal is not None:
        report.journal_path = str(journal.path)

    results: Dict[str, EntryResult] = {}
    cold: List[str] = []
    for name in names:
        if name in resumed_payloads:
            results[name] = EntryResult(
                name=name, eid=REGISTRY[name].eid, mode=mode,
                key=keys[name], cache="journal", shard=None, wall_s=0.0,
                payload_json=resumed_payloads[name])
            continue
        hit = cache_get(keys[name])
        if hit is not None:
            results[name] = EntryResult(
                name=name, eid=REGISTRY[name].eid, mode=mode,
                key=keys[name], cache="hit", shard=None, wall_s=0.0,
                payload_json=hit)
        else:
            cold.append(name)

    if log and cold:
        log(f"running {len(cold)} cold entries over "
            f"{min(max(1, shards), len(cold))} shard(s); "
            f"{len(results)} cached"
            + (f"; {len(resumed_payloads)} restored from journal"
               if resumed_payloads else ""))

    counters: Dict[str, int] = {}
    try:
        if cold:
            jobs = _make_jobs(cold, keys, mode, seed, max_attempts, chaos)
            if shards > 1:
                if runlog is not None:
                    runlog.event("suite", "fork",
                                 shards=min(shards, len(jobs)))
                scheduler = JobScheduler(jobs, run_entry, workers=shards,
                                         journal=journal, runlog=runlog,
                                         on_event=on_event)
                outcome = scheduler.run()
                counters = dict(outcome.counters)
                report.shard_walls = outcome.worker_walls
                report.interrupted = outcome.interrupted
            else:
                shard_start = time.perf_counter()
                shard_start_ps = (None if runlog is None
                                  else runlog.now_ps())
                ran: List[str] = []
                try:
                    for job in jobs:
                        entry_ps = (None if runlog is None
                                    else runlog.now_ps())
                        run_job_inline(job, run_entry, journal=journal,
                                       on_event=on_event)
                        job.worker = 0
                        ran.append(job.name)
                        counters["retries"] = (counters.get("retries", 0)
                                               + job.attempt)
                        if runlog is not None and entry_ps is not None:
                            runlog.add_span(
                                "shard0", "entry", entry_ps,
                                int(job.wall_s * 1e12), entry=job.name)
                except KeyboardInterrupt:
                    report.interrupted = True
                    if journal is not None:
                        journal.record(
                            "interrupt",
                            unfinished=[j.name for j in jobs
                                        if not j.finished])
                report.shard_walls.append({
                    "shard": 0, "entries": ran,
                    "wall_s": round(time.perf_counter() - shard_start, 4),
                })
                if runlog is not None and shard_start_ps is not None:
                    runlog.add_span("shard0", "shard", shard_start_ps,
                                    runlog.now_ps() - shard_start_ps,
                                    entries=len(ran))

            for job in jobs:
                if job.state == DONE:
                    results[job.name] = EntryResult(
                        name=job.name, eid=REGISTRY[job.name].eid,
                        mode=mode, key=job.key, cache="miss",
                        shard=job.worker, wall_s=job.wall_s,
                        payload_json=job.payload_json)
                    if cache is not None:
                        cache_put(job.key, job.name, job.payload_json,
                                  meta={"mode": mode,
                                        "wall_s": round(job.wall_s, 4),
                                        "seed": seed,
                                        "calibration": calib_fp})
                elif job.state == FAILED:
                    results[job.name] = EntryResult(
                        name=job.name, eid=REGISTRY[job.name].eid,
                        mode=mode, key=job.key, cache="miss",
                        shard=job.worker, wall_s=job.wall_s,
                        payload_json=None, error=job.error)
                # unfinished (interrupted) jobs stay out of the report

        report.entries = [results[name] for name in names
                          if name in results]
        # Tiny sweeps exist for byte-stability testing only; their
        # reduced fidelity makes anchor values meaningless, so no
        # anchor is checked.
        if runlog is not None:
            with runlog.span("suite", "anchors"):
                report.checks = (check_anchors(report.payloads)
                                 if mode != "tiny" else [])
        else:
            report.checks = (check_anchors(report.payloads)
                             if mode != "tiny" else [])
        report.wall_s = time.perf_counter() - start
        report.robustness = {
            **{name: counters.get(name, 0)
               for name in ("retries", "requeues", "deadline_kills",
                            "workers_lost", "workers_spawned",
                            "heartbeat_kills", "spill_recoveries")},
            "cache_corrupted": cache.corrupted if cache else 0,
            "cache_quarantined": list(cache.quarantined) if cache else [],
            "resumed_entries": len(resumed_payloads),
        }
        if runlog is not None:
            if cache is not None and cache.corrupted:
                runlog.metrics.counter(
                    "suite.cache.quarantined").inc(cache.corrupted)
            report.telemetry = runlog.summary()
        if journal is not None:
            journal.record("end", ok=report.ok,
                           interrupted=report.interrupted,
                           wall_s=round(report.wall_s, 4),
                           entries_done=len(report.entries))
    finally:
        if journal is not None:
            journal.close()
    return report


# -- EXPERIMENTS.md regeneration -----------------------------------------------------------------

def _md_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---:" for _ in header) + "|"]
    lines += ["| " + " | ".join(row) + " |" for row in rows]
    return "\n".join(lines)


def _sweep_columns(payload: Dict[str, object],
                   columns: Sequence[Tuple[str, str]],
                   x_header: str = "size", x_is_size: bool = True,
                   fmt: str = "{:.3f}") -> str:
    series = payload["series"]
    xs = sorted({x for label, _ in columns if label in series
                 for x, _ in series[label]})
    rows = []
    for x in xs:
        cell = pretty_size(int(x)) if x_is_size else f"{x:g}"
        row = [cell]
        for label, _ in columns:
            value = next((y for px, y in series.get(label, ())
                          if px == x), None)
            row.append(fmt.format(value) if value is not None else "—")
        rows.append(row)
    return _md_table([x_header] + [head for _, head in columns], rows)


def _md_fig7(p):
    return _sweep_columns(p, [("CPU (write)", "CPU write"),
                              ("CPU (read)", "CPU read"),
                              ("GPU (write)", "GPU write"),
                              ("GPU (read)", "GPU read")])


def _md_fig9(p):
    points = dict(p["series"]["CPU (write)"])
    counts = sorted(points)
    return _md_table(["requests"] + [f"{c:g}" for c in counts],
                     [["CPU write (GB/s)"]
                      + [f"{points[c]:.2f}" for c in counts]])


def _md_theory(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["Gen2 x8 post-encoding rate", "4 Gbytes/s",
          f"{p['gen2_x8_raw_gbytes']:.3f}"],
         ["payload ceiling at MPS 256 B", "3.66 Gbytes/s",
          f"{p['eq1_peak_gbytes']:.3f}"],
         ["GPU-read latency-bandwidth bound", "(implied by 830 MB/s)",
          f"{p['gpu_read_bound_gbytes']:.3f}"]])


def _md_limits(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["GPU DMA-read ceiling", "830 Mbytes/s",
          f"{p['gpu_read_gbytes']:.3f} GB/s"],
         ["GPU write, same socket", "≈ CPU write",
          f"{p['gpu_write_same_socket_gbytes']:.2f} GB/s"],
         ["GPU write across QPI", "\"several hundred Mbytes/sec\"",
          f"{p['gpu_write_over_qpi_gbytes']:.2f} GB/s"]])


def _md_latency(p):
    return _md_table(
        ["quantity", "paper", "measured"],
        [["one-way store-to-commit, 2 chips + 1 cable",
          f"**{p['paper_ns']:g} ns**", f"**{p['pio_one_way_ns']:.1f} ns**"],
         ["observed by the polling driver", "—",
          f"{p['pio_polled_ns']:g} ns (poll quantization)"],
         ["vs InfiniBand FDR claim", "< 1 µs",
          f"{p['pio_one_way_ns']:g} < {p['infiniband_fdr_claim_ns']:g} ✓"]])


def _md_fig12(p):
    return _sweep_columns(p, [("remote CPU", "remote CPU"),
                              ("local CPU (write)", "local CPU"),
                              ("remote GPU", "remote GPU"),
                              ("local GPU (write)", "local GPU")])


def _md_crossover(p):
    return _sweep_columns(p, [("tca-pio", "PIO (µs)"),
                              ("tca-dma", "DMA (µs)")], fmt="{:.3g}")


def _md_hierarchy(p):
    return _sweep_columns(p, [("local (TCA)", "local put (TCA)"),
                              ("global (IB)", "global put (IB)")],
                          fmt="{:.4g} µs")


def _md_collectives(p):
    return _sweep_columns(p, [("tca", "TCA"), ("mpi-ib", "MPI over IB")],
                          x_header="block", fmt="{:.4g} µs")


def _md_contention(p):
    return _sweep_columns(p, [("4-node ring", "4-node"),
                              ("8-node ring", "8-node"),
                              ("16-node ring", "16-node")],
                          x_header="hop distance", x_is_size=False,
                          fmt="{:.2f}")


def _md_collective_allreduce(p):
    return _sweep_columns(p, [("tca", "TCA"), ("mpi-ib", "MPI over IB")],
                          x_header="vector", fmt="{:.4g} µs")


def _md_collective_dual_ring(p):
    return _sweep_columns(p, [("single-ring", "single ring"),
                              ("dual-ring", "dual ring")],
                          x_header="vector", fmt="{:.4g} µs")


def _md_collective_torus(p):
    return _sweep_columns(p, [("ring", "ring (µs)"),
                              ("torus", "torus (µs)"),
                              ("ring steps", "ring steps"),
                              ("torus steps", "torus steps")],
                          x_header="nodes", x_is_size=False, fmt="{:.4g}")


def _md_bisection(p):
    return _sweep_columns(p, [("ring", "ring (GB/s)"),
                              ("torus", "torus (GB/s)")],
                          x_header="nodes", x_is_size=False, fmt="{:.2f}")


#: Registry entry name -> EXPERIMENTS.md table renderer.
MD_RENDERERS: Dict[str, Callable[[Dict[str, object]], str]] = {
    "theory": _md_theory,
    "fig7": _md_fig7,
    "fig9": _md_fig9,
    "limits": _md_limits,
    "latency": _md_latency,
    "fig12": _md_fig12,
    "pio-dma-crossover": _md_crossover,
    "hierarchy": _md_hierarchy,
    "collectives": _md_collectives,
    "contention": _md_contention,
    "collective-allreduce": _md_collective_allreduce,
    "collective-dual-ring": _md_collective_dual_ring,
    "collective-torus": _md_collective_torus,
    "bisection": _md_bisection,
}


def render_experiments_md(payloads: Dict[str, object],
                          text: str) -> Tuple[str, List[str]]:
    """Replace every ``<!-- suite:NAME -->`` block with a live table.

    Returns (new text, names regenerated).  Raises
    :class:`~repro.errors.ConfigError` if a payload has a renderer but
    the document lacks its markers — the document must stay regenerable.
    """
    updated = []
    for name, renderer in MD_RENDERERS.items():
        if name not in payloads:
            continue
        begin, end = f"<!-- suite:{name} -->", f"<!-- /suite:{name} -->"
        i = text.find(begin)
        j = text.find(end)
        if i < 0 or j < 0 or j < i:
            raise ConfigError(
                f"EXPERIMENTS.md lacks the {begin} ... {end} markers")
        table = renderer(payloads[name])
        text = (text[:i + len(begin)] + "\n" + table + "\n" + text[j:])
        updated.append(name)
    return text, updated
