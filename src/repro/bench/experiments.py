"""One entry point per paper table/figure (the E1-E14 index in DESIGN.md).

Each function builds fresh rigs, runs the sweep, and returns a
:class:`~repro.bench.series.SweepTable` (or a dict for scalar results)
whose ``render()`` matches the paper's rows/series.  The CLI
(``python -m repro.bench <name>``) and the pytest-benchmark wrappers in
``benchmarks/`` both call these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro.baselines.ntb import NTBPair
from repro.errors import ConfigError
from repro.baselines.paths import (ConventionalPath, GDRPath, MPIHostPath,
                                   PathResult, TCADMAPath, TCAPIOPath,
                                   VerbsPath)
from repro.bench.harness import (DEFAULT_SIZES, PAPER_BURST, SingleNodeRig,
                                 TwoNodeRig)
from repro.bench.loopback import LoopbackRig
from repro.bench.series import Series, SweepTable
from repro.hw.node import NodeParams
from repro.model.specs import render_table1, render_table2
from repro.model.theory import (latency_bandwidth_bound_gbytes,
                                pcie_effective_rate_gbytes,
                                theoretical_peak_gen2_x8)
from repro.peach2.descriptor import DMADescriptor
from repro.pcie.gen import PCIeGen
from repro.tca.subcluster import TCASubCluster
from repro.tca.topology import ring_hop_count
from repro.units import KiB, MiB, bw_gbytes_per_s

FIG7_SIZES = DEFAULT_SIZES[:7]          # 64 B .. 4 KB (the paper's peak)
FIG8_SIZES = DEFAULT_SIZES              # extends past the 8 KB knee
FIG9_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 255)


# -- E1/E2: specification tables -------------------------------------------------

def table1() -> str:
    """Table I rendered from the spec model."""
    return render_table1()


def table2() -> str:
    """Table II rendered from the spec model."""
    return render_table2()


# -- E3: Eq. (1) -----------------------------------------------------------------

def theory() -> Dict[str, float]:
    """The paper's closed-form numbers."""
    return {
        "gen2_x8_raw_gbytes": pcie_effective_rate_gbytes(PCIeGen.GEN2, 8,
                                                         mps_bytes=10**9),
        "eq1_peak_gbytes": theoretical_peak_gen2_x8(),
        "gpu_read_bound_gbytes": latency_bandwidth_bound_gbytes(
            outstanding=4, chunk_bytes=256, round_trip_ps=1232_000),
    }


# -- E4: Fig. 7 -------------------------------------------------------------------

def _measure_point(task: Tuple[str, str, int, int]) -> float:
    """One ``(op, target, size, count)`` bandwidth point on a fresh rig.

    Module level (not a closure) so fork workers report it by name and a
    spawn-based platform could still pickle it.  Every call builds its
    own :class:`SingleNodeRig` — its own engine — so points are fully
    independent: any execution order, thread or process yields the same
    picosecond results.
    """
    op, target, size, count = task
    rig = SingleNodeRig()
    _, bw = rig.measure(op, target, size, count)
    return bw


def _point_cost(task: Tuple[str, str, int, int]) -> float:
    """LPT weight for a measurement point: event count scales with the
    bytes moved (chunks per request times chained requests)."""
    _, _, size, count = task
    return float(size) * count


def _measure_points(tasks, workers):
    """Run measurement points, optionally across fork workers.

    ``workers=None`` defers to the executor's environment default
    (``TCA_ENGINE_WORKERS``); an effective count of one runs the
    historical inline loop.  Results arrive in task order either way,
    so the sweep tables are byte-identical for every worker count.
    """
    from repro.sim.executor import MultiEngineExecutor

    return MultiEngineExecutor(workers).map(_measure_point, tasks,
                                            cost=_point_cost)


def fig7(sizes: Sequence[int] = FIG7_SIZES,
         count: int = PAPER_BURST,
         workers: Optional[int] = None) -> SweepTable:
    """Data size vs bandwidth, PEACH2 <-> CPU/GPU, 255 chained DMAs."""
    table = SweepTable(f"Fig. 7: data size vs bandwidth ({count} chained DMAs)")
    tasks = [(op, target, size, count)
             for op in ("write", "read")
             for target in ("cpu", "gpu")
             for size in sizes]
    for (op, target, size, _), bw in zip(tasks,
                                         _measure_points(tasks, workers)):
        table.add(f"{target.upper()} ({op})", size, bw)
    return table


# -- E5: Fig. 8 ----------------------------------------------------------------------

def fig8(sizes: Sequence[int] = FIG8_SIZES) -> SweepTable:
    """Data size vs bandwidth for a single DMA request."""
    table = SweepTable("Fig. 8: data size vs bandwidth (single DMA)")
    for op in ("write", "read"):
        for target in ("cpu", "gpu"):
            for size in sizes:
                rig = SingleNodeRig()
                _, bw = rig.measure(op, target, size, count=1)
                table.add(f"{target.upper()} ({op})", size, bw)
    return table


# -- E6: Fig. 9 -----------------------------------------------------------------------

def fig9(counts: Sequence[int] = FIG9_COUNTS,
         size: int = 4 * KiB,
         workers: Optional[int] = None) -> SweepTable:
    """Number of DMA requests vs bandwidth at a fixed 4-KB data size."""
    table = SweepTable("Fig. 9: DMA request count vs bandwidth (4 Kbytes)",
                       x_label="requests", x_is_size=False)
    tasks = [(op, target, size, count)
             for op in ("write", "read")
             for target in ("cpu", "gpu")
             for count in counts]
    for (op, target, _, count), bw in zip(tasks,
                                          _measure_points(tasks, workers)):
        table.add(f"{target.upper()} ({op})", count, bw)
    return table


# -- E7: §IV-A2 limits ------------------------------------------------------------------

def limits(size: int = 4 * KiB, count: int = PAPER_BURST) -> Dict[str, float]:
    """GPU-read ceiling and QPI-crossing degradation."""
    rig = SingleNodeRig(node_params=NodeParams(num_gpus=4))
    _, gpu_read = rig.measure("read", "gpu", size, count)

    # DMA write to a GPU on the other socket: P2P over QPI.
    rig2 = SingleNodeRig(node_params=NodeParams(num_gpus=4))
    far_gpu = rig2.node.gpus[2]
    ptr = rig2.cuda.cu_mem_alloc(2, 4 * MiB)
    token = rig2.cuda.cu_pointer_get_attribute(
        "CU_POINTER_ATTRIBUTE_P2P_TOKENS", ptr)
    mapping = rig2.p2p.pin(far_gpu, token, ptr.offset, ptr.nbytes)
    chain = rig2.write_chain(size, count, mapping.bus_address)
    _, qpi_write = rig2.measure_chain(chain)

    rig3 = SingleNodeRig()
    _, near_write = rig3.measure("write", "gpu", size, count)
    return {
        "gpu_read_gbytes": gpu_read,
        "gpu_write_same_socket_gbytes": near_write,
        "gpu_write_over_qpi_gbytes": qpi_write,
    }


# -- E8: Fig. 10 / §IV-B1 latency ----------------------------------------------------------

def latency() -> Dict[str, float]:
    """PIO loopback latency through two PEACH2 chips and one cable."""
    rig = LoopbackRig()
    commit_ns = rig.pio_commit_latency_ns()
    rig2 = LoopbackRig()
    polled = rig2.pio_store_latency()
    return {
        "pio_one_way_ns": commit_ns,
        "pio_polled_ns": polled["polled_ns"],
        "paper_ns": 782.0,
        "infiniband_fdr_claim_ns": 1000.0,
    }


# -- E9: Fig. 12 -----------------------------------------------------------------------------

def fig12(sizes: Sequence[int] = FIG7_SIZES,
          count: int = PAPER_BURST) -> SweepTable:
    """Remote DMA write bandwidth to the adjacent node (plus local refs)."""
    table = SweepTable(
        f"Fig. 12: size vs bandwidth to adjacent-node CPU/GPU "
        f"({count} chained remote DMA writes)")
    for target in ("cpu", "gpu"):
        for size in sizes:
            rig = TwoNodeRig()
            _, bw = rig.measure_remote_write(size, target, count)
            table.add(f"remote {target.upper()}", size, bw)
    # The local curves Fig. 12 overlays for comparison.
    for target in ("cpu", "gpu"):
        for size in sizes:
            rig = SingleNodeRig()
            _, bw = rig.measure("write", target, size, count)
            table.add(f"local {target.upper()} (write)", size, bw)
    return table


# -- E10: motivation comparison -----------------------------------------------------------------

COMPARISON_SIZES = (8, 64, 512, 4 * KiB, 32 * KiB, 256 * KiB, 1 * MiB)


def comparison_host(sizes: Sequence[int] = COMPARISON_SIZES) -> SweepTable:
    """Host-to-host: TCA PIO / TCA DMA / IB verbs / MPI."""
    table = SweepTable("E10a: host-to-host transfer time",
                       y_label="microseconds")
    paths = [TCAPIOPath(), TCADMAPath(), VerbsPath(), MPIHostPath()]
    for path in paths:
        for size in sizes:
            if isinstance(path, TCAPIOPath) and size > 32 * KiB:
                continue
            result = path.transfer(size)
            table.add(path.name, size, result.latency_us)
    return table


def comparison_gpu(sizes: Sequence[int] = COMPARISON_SIZES) -> SweepTable:
    """GPU-to-GPU: TCA DMA vs conventional 3-copy vs IB+GDR."""
    table = SweepTable("E10b: GPU-to-GPU transfer time",
                       y_label="microseconds")
    paths = [TCADMAPath(gpu=True), ConventionalPath(),
             ConventionalPath(chunk_bytes=256 * KiB), GDRPath()]
    for path in paths:
        for size in sizes:
            result = path.transfer(size)
            table.add(path.name, size, result.latency_us)
    return table


# -- E11: DMAC ablation ------------------------------------------------------------------------------

def ablation_dmac(sizes: Sequence[int] = (4 * KiB, 32 * KiB, 256 * KiB,
                                          1 * MiB)) -> SweepTable:
    """Two-phase (current) vs pipelined (next-generation) remote put."""
    table = SweepTable("E11: two-phase vs pipelined DMAC (host-to-host put)")
    for pipelined in (False, True):
        path = TCADMAPath(pipelined=pipelined)
        for size in sizes:
            result = path.transfer(size)
            table.add(path.name, size, result.bandwidth_gbytes)
    return table


# -- E12: ring-size ablation ---------------------------------------------------------------------------

def ablation_ring(ring_sizes: Iterable[int] = (2, 4, 8, 16)) -> SweepTable:
    """PIO latency vs hop count: why sub-clusters stay at 8-16 nodes."""
    table = SweepTable("E12: ring size vs farthest-node PIO latency",
                       x_label="ring nodes", y_label="nanoseconds",
                       x_is_size=False)
    for n in ring_sizes:
        cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1))
        engine = cluster.engine
        dst_node = n // 2  # the antipodal node: worst case
        hops = ring_hop_count(n, 0, dst_node)
        drv = cluster.driver(dst_node)
        offset = 0x40
        target = cluster.address_map.global_address(
            dst_node, 2, drv.dma_buffer(offset))
        dram = cluster.node(dst_node).dram
        start = engine.now_ps
        cluster.node(0).cpu.store_u32(target, 0xBEEF0001)

        def observe(dram=dram, addr=drv.dma_buffer(offset)):
            while True:
                word = dram.cpu_read(addr, 4)
                if int.from_bytes(word.tobytes(), "little") == 0xBEEF0001:
                    return engine.now_ps
                yield 100

        end = engine.run_process(observe(), name="observe")
        table.add("one-way latency", n, (end - start) / 1000.0)
        table.add("hops", n, hops)
    return table


# -- E16: PIO vs DMA crossover (§III-F's transport split) -------------------------------------------------

def pio_dma_crossover(sizes: Sequence[int] = (8, 64, 256, 1 * KiB, 2 * KiB,
                                              4 * KiB, 16 * KiB)) -> SweepTable:
    """Destination-observed one-way time: PIO put vs one-shot DMA put.

    Quantifies §III-F's guidance — "PIO communication is useful for the
    short message transfer" — by locating the message size where the
    chained-DMA machinery (doorbell + descriptor fetch + interrupt)
    overtakes write-combining stores.
    """
    from repro.baselines.paths import TCADMAPath, TCAPIOPath

    table = SweepTable("E16: PIO vs DMA one-way time",
                       y_label="microseconds")
    for path in (TCAPIOPath(), TCADMAPath()):
        for size in sizes:
            table.add(path.name, size, path.transfer(size).latency_us)
    return table


# -- E17: the hierarchical network (§II-B) ------------------------------------------------------------------

def hierarchy(sizes: Sequence[int] = (64, 1 * KiB, 16 * KiB,
                                      256 * KiB)) -> SweepTable:
    """Local (TCA) vs global (InfiniBand) put time on HA-PACS/TCA.

    §II-B's design point: "TCA interconnect for local communication with
    low latency and InfiniBand for global communication with high
    bandwidth" — measured on a 2x4-node hybrid machine.
    """
    from repro.tca.hybrid import HybridCluster, HybridComm

    table = SweepTable("E17: hierarchical network — local vs global put",
                       y_label="microseconds")
    for label, src, dst in (("local (TCA)", 0, 1), ("global (IB)", 0, 4)):
        for size in sizes:
            cluster = HybridCluster(num_subclusters=2,
                                    nodes_per_subcluster=4,
                                    node_params=NodeParams(num_gpus=1))
            comm = HybridComm(cluster)
            sub, local = cluster.locate(src)
            import numpy as np
            data = np.full(size, 0x5A, dtype=np.uint8)
            cluster.subclusters[sub].driver(local).fill_dma_buffer(0, data)
            start = cluster.engine.now_ps
            cluster.engine.run_process(comm.put(src, dst, 0, 0x40000, size))
            table.add(label, size, (cluster.engine.now_ps - start) / 1e6)
    return table


# -- E18: collectives — TCA-native vs MPI over IB -----------------------------------------------------------

def collectives(block_sizes: Sequence[int] = (1 * KiB, 4 * KiB, 64 * KiB),
                num_nodes: int = 4) -> SweepTable:
    """Ring allgather on N nodes: TCA sub-cluster vs MPI over QDR.

    The §V claim made concrete: TCA applications "do not rely on the MPI
    software stack", so a collective is just puts and flag polls; the MPI
    version pays per-message stack and protocol costs every step.
    """
    import numpy as np

    from repro.apps.allgather import ring_allgather
    from repro.baselines.collectives import ring_allgather_mpi, run_all
    from repro.baselines.fabric import IBGroup

    table = SweepTable(
        f"E18: ring allgather, {num_nodes} nodes (total time)",
        x_label="block size", y_label="microseconds")
    for block in block_sizes:
        cluster = TCASubCluster(num_nodes,
                                node_params=NodeParams(num_gpus=1))
        ring_allgather(cluster, block_bytes=block)
        table.add("tca", block, cluster.engine.now_ps / 1e6)

        group = IBGroup(num_nodes, node_params=NodeParams(num_gpus=1))
        for r in range(num_nodes):
            data = np.random.default_rng(r).integers(0, 256, block,
                                                     dtype=np.uint8)
            group.nodes[r].dram.cpu_write(group.buffers[r] + r * block,
                                          data)
        start = group.engine.now_ps
        run_all(group.engine,
                ring_allgather_mpi(group.world, group.buffers, block))
        table.add("mpi-ib", block, (group.engine.now_ps - start) / 1e6)
    return table


# -- E19: ring contention (§II-B's scaling limit) -----------------------------------------------------------

def contention(ring_sizes: Sequence[int] = (4, 8, 16),
               nbytes: int = 256 * KiB) -> SweepTable:
    """All-nodes-shift traffic on the ring: per-flow bandwidth vs distance.

    §II-B: "a large number of nodes degrades the performance".  When every
    node puts to its k-hop neighbour simultaneously, each flow's packets
    occupy k consecutive ring links, so per-flow bandwidth falls as ~1/k —
    the congestion reason (besides latency, E12) sub-clusters stay small.
    """
    import numpy as np

    from repro.peach2.descriptor import DMADescriptor
    from repro.units import bw_gbytes_per_s

    table = SweepTable("E19: simultaneous k-hop shifts — per-flow bandwidth",
                       x_label="hop distance", x_is_size=False)
    for n in ring_sizes:
        max_hops = n // 2
        for hops in sorted({1, 2, max_hops}):
            cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1))
            engine = cluster.engine
            comm_map = cluster.address_map

            def flow(src: int):
                dst = (src + hops) % n
                driver = cluster.driver(src)
                chip = cluster.board(src).chip
                target = comm_map.global_address(
                    dst, 2, cluster.driver(dst).dma_buffer(0))
                chain = [DMADescriptor(chip.bar2.base + i * 4096,
                                       target + i * 4096, 4096)
                         for i in range(nbytes // 4096)]
                elapsed = yield engine.process(
                    driver.run_chain(0, chain))
                return elapsed

            procs = [engine.process(flow(src), name=f"flow{src}")
                     for src in range(n)]
            while not all(p.done for p in procs):
                if not engine.step():
                    raise ConfigError("contention run deadlocked")
            worst = max(p.result for p in procs)
            table.add(f"{n}-node ring", hops,
                      bw_gbytes_per_s(nbytes, worst))
    return table


# -- E20: allreduce — TCA-native vs MPI over IB ------------------------------------------------------------

def collective_allreduce(sizes: Sequence[int] = (1 * KiB, 4 * KiB,
                                                 16 * KiB, 64 * KiB,
                                                 256 * KiB),
                         num_nodes: int = 4) -> SweepTable:
    """Ring allreduce on N nodes: TCA puts + flags vs MPI over QDR.

    Extends E18's §V argument from allgather to the reduction collective
    that dominates real workloads.  The TCA side is
    :meth:`repro.collectives.TCACollectives.allreduce` (reduce-scatter +
    allgather as chained-DMA/PIO puts with flag-store completion); the
    MPI side is the same algorithm over the simulated IB fabric, paying
    eager/rendezvous protocol and stack costs per step.  Small vectors
    are latency-bound, where TCA's no-software-stack puts win; large
    ones are bandwidth-bound, where QDR IB out-muscles the two-phase
    DMAC — the crossover the anchor table pins.
    """
    import numpy as np

    from repro.baselines.collectives import ring_allreduce_mpi, run_all
    from repro.baselines.fabric import IBGroup
    from repro.collectives import TCACollectives

    table = SweepTable(
        f"E20: ring allreduce, {num_nodes} nodes (total time)",
        x_label="vector size", y_label="microseconds")
    for nbytes in sizes:
        rng = np.random.default_rng(nbytes)
        vectors = [rng.integers(0, 1 << 32, nbytes // 4, dtype=np.uint32)
                   for _ in range(num_nodes)]

        cluster = TCASubCluster(num_nodes,
                                node_params=NodeParams(num_gpus=1))
        start = cluster.engine.now_ps
        TCACollectives(cluster).allreduce(vectors)
        table.add("tca", nbytes, (cluster.engine.now_ps - start) / 1e6)

        group = IBGroup(num_nodes, node_params=NodeParams(num_gpus=1))
        for r in range(num_nodes):
            group.nodes[r].dram.cpu_write(group.buffers[r],
                                          vectors[r].view(np.uint8))
        start = group.engine.now_ps
        run_all(group.engine,
                ring_allreduce_mpi(group.world, group.buffers, nbytes))
        table.add("mpi-ib", nbytes, (group.engine.now_ps - start) / 1e6)
    return table


# -- E21: dual-ring vs single-ring collectives ------------------------------------------------------------

def collective_dual_ring(sizes: Sequence[int] = (1 * KiB, 4 * KiB,
                                                 16 * KiB, 64 * KiB),
                         num_nodes: int = 8) -> SweepTable:
    """Allreduce on one flat ring vs the S-coupled dual ring (§III-D).

    The dual-ring topology exists to keep hop counts down as
    sub-clusters grow; this experiment shows it pays off for whole
    collectives, not just point-to-point puts.  The hierarchical
    schedule (per-ring reduce-scatter, one S-port column exchange,
    per-ring allgather) serializes N-1 put steps against the flat
    ring's 2(N-1), so latency-bound sizes approach a 2x speedup at
    8 nodes while bandwidth-bound sizes converge (both move the same
    bytes per link).

    Each run also goes through the critical-path analyzer
    (:mod:`repro.obs.critpath`), and the measured serialized step count
    lands in the ``* steps`` series — the §III-D schedule-length claim
    as data the anchor table can pin.
    """
    import numpy as np

    from repro.collectives import TCACollectives
    from repro.obs.critpath import trace_collective
    from repro.tca.subcluster import DUAL_RING

    table = SweepTable(
        f"E21: allreduce topology, {num_nodes} nodes (total time)",
        x_label="vector size", y_label="microseconds")
    for nbytes in sizes:
        rng = np.random.default_rng(nbytes)
        vectors = [rng.integers(0, 1 << 32, nbytes // 4, dtype=np.uint32)
                   for _ in range(num_nodes)]
        for label, topology in (("single-ring", "ring"),
                                ("dual-ring", DUAL_RING)):
            cluster = TCASubCluster(num_nodes, topology=topology,
                                    node_params=NodeParams(num_gpus=1))
            coll = TCACollectives(cluster)
            start = cluster.engine.now_ps
            _, crit = trace_collective(cluster.engine,
                                       lambda: coll.allreduce(vectors))
            table.add(label, nbytes,
                      (cluster.engine.now_ps - start) / 1e6)
            table.add(f"{label} steps", nbytes, float(crit.step_count))
    return table


# -- E22: ring vs torus allreduce scaling ------------------------------------------------------------------

def collective_torus(node_counts: Sequence[int] = (16, 64),
                     nbytes: int = 4 * KiB) -> SweepTable:
    """Allreduce scaling: flat ring vs square 2D torus, 16 and 64 nodes.

    The §II-B scaling limit is about latency *and* schedule length: a
    flat N-ring allreduce serializes 2(N-1) put steps.  Folding the same
    nodes into a k x k torus (``repro.tca.fabric``) lets the collective
    run per-dimension ring schedules instead — 2*sum(n_d - 1) steps, so
    2(k-1) per phase pair — and the gap widens with N: 30 vs 12 steps at
    16 nodes, 126 vs 28 at 64.  Each run goes through the critical-path
    analyzer so the step counts land in the ``* steps`` series the
    anchor table pins, exactly like E21.
    """
    import math

    import numpy as np

    from repro.collectives import TCACollectives
    from repro.obs.critpath import trace_collective
    from repro.tca.subcluster import TORUS

    table = SweepTable(
        f"E22: allreduce scaling, ring vs torus ({nbytes} B vectors)",
        x_label="nodes", x_is_size=False, y_label="microseconds")
    for n in node_counts:
        side = math.isqrt(n)
        if side * side != n:
            raise ConfigError(
                f"collective-torus needs square node counts, got {n}")
        rng = np.random.default_rng(n)
        vectors = [rng.integers(0, 1 << 32, nbytes // 4, dtype=np.uint32)
                   for _ in range(n)]
        for label, kwargs in (
                ("ring", {}),
                ("torus", {"topology": TORUS, "extents": (side, side)})):
            cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1),
                                    **kwargs)
            coll = TCACollectives(cluster)
            start = cluster.engine.now_ps
            _, crit = trace_collective(cluster.engine,
                                       lambda: coll.allreduce(vectors))
            table.add(label, n, (cluster.engine.now_ps - start) / 1e6)
            table.add(f"{label} steps", n, float(crit.step_count))
    return table


# -- E23: bisection bandwidth ------------------------------------------------------------------------------

def bisection(node_counts: Sequence[int] = (16, 64),
              nbytes: int = 64 * KiB) -> SweepTable:
    """Antipodal shift traffic: aggregate bandwidth across the bisection.

    Every node DMA-puts to the node half way around its dimension-0
    ring, so every flow crosses the fabric's bisection.  A flat N-ring
    offers two bisection links and antipodal flows pay N/2 hops; a
    k x k torus keeps k separate dimension-0 rings (2k bisection links)
    and antipodal is only k/2 hops, so aggregate bisection bandwidth
    scales with k instead of staying flat.  The y value is the sum of
    all N flows' bytes over the slowest flow's elapsed time.
    """
    import math

    from repro.tca.subcluster import TORUS

    table = SweepTable("E23: bisection bandwidth — antipodal shifts",
                       x_label="nodes", x_is_size=False)
    for n in node_counts:
        side = math.isqrt(n)
        if side * side != n:
            raise ConfigError(
                f"bisection needs square node counts, got {n}")
        for label, kwargs in (
                ("ring", {}),
                ("torus", {"topology": TORUS, "extents": (side, side)})):
            cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1),
                                    **kwargs)
            engine = cluster.engine
            comm_map = cluster.address_map

            def partner(src: int) -> int:
                if label == "torus":
                    coords = list(cluster.geometry.coords_of(src))
                    coords[0] = (coords[0] + side // 2) % side
                    return cluster.geometry.index_of(coords)
                return (src + n // 2) % n

            def flow(src: int):
                dst = partner(src)
                driver = cluster.driver(src)
                chip = cluster.board(src).chip
                target = comm_map.global_address(
                    dst, 2, cluster.driver(dst).dma_buffer(0))
                chain = [DMADescriptor(chip.bar2.base + i * 4096,
                                       target + i * 4096, 4096)
                         for i in range(nbytes // 4096)]
                elapsed = yield engine.process(driver.run_chain(0, chain))
                return elapsed

            procs = [engine.process(flow(src), name=f"bisect{src}")
                     for src in range(n)]
            while not all(p.done for p in procs):
                if not engine.step():
                    raise ConfigError("bisection run deadlocked")
            worst = max(p.result for p in procs)
            table.add(label, n, n * bw_gbytes_per_s(nbytes, worst))
    return table


# -- E13: functional routing (§III-E, Figs. 4-5) ------------------------------------------------------------

def routing(ring_sizes: Iterable[int] = (2, 3, 4, 8)) -> Dict[str, object]:
    """All-pairs PIO delivery on rings: the Fig. 5 comparator tables live.

    The same scenario ``tests/tca/test_routing_e2e.py`` asserts, exposed
    as a registry experiment so the suite can machine-check E13: every
    (source, destination) pair stores a unique marker through the TCA
    window and the destination driver must read it back byte-exact.
    """
    from repro.tca.comm import TCAComm

    results: Dict[str, object] = {}
    all_ok = True
    for n in ring_sizes:
        cluster = TCASubCluster(n, node_params=NodeParams(num_gpus=1))
        comm = TCAComm(cluster)
        pairs = [(src, dst) for src in range(n) for dst in range(n)
                 if src != dst]
        for src, dst in pairs:
            slot = (src * n + dst) * 8
            target = comm.host_global(
                dst, cluster.driver(dst).dma_buffer(slot))
            cluster.node(src).cpu.store_u32(target,
                                            0xC0DE0000 + src * 256 + dst)
        cluster.engine.run()
        misrouted = 0
        for src, dst in pairs:
            slot = (src * n + dst) * 8
            got = cluster.driver(dst).read_dma_buffer(slot, 4)
            if int.from_bytes(got.tobytes(), "little") != \
                    0xC0DE0000 + src * 256 + dst:
                misrouted += 1
        results[f"ring{n}_pairs_delivered"] = len(pairs) - misrouted
        results[f"ring{n}_pairs_misrouted"] = misrouted
        all_ok = all_ok and misrouted == 0
    results["all_pairs_ok"] = all_ok
    return results


# -- E15: PEARL ring healing --------------------------------------------------------------------------------

def healing(num_nodes: int = 4) -> Dict[str, object]:
    """Cut a ring cable, heal, and re-verify delivery plus detour cost.

    The E15 scenario of ``tests/tca/test_healing.py`` as a registry
    experiment: after ``cut_ring_cable(0)`` and ``heal()``, every pair
    must communicate again, and the formerly adjacent 0 -> 1 pair must
    pay the long-way-around latency.
    """
    from repro.tca.comm import TCAComm

    def one_way_ns(cluster, comm) -> float:
        engine = cluster.engine
        slot = 0x800
        target = comm.host_global(1, cluster.driver(1).dma_buffer(slot))
        dram = cluster.node(1).dram
        addr = cluster.driver(1).dma_buffer(slot)
        start = engine.now_ps
        cluster.node(0).cpu.store_u32(target, 0x77)

        def observe():
            while True:
                if dram.cpu_read(addr, 1)[0] == 0x77:
                    return engine.now_ps
                yield 100

        return (engine.run_process(observe(), name="observe") - start) / 1e3

    healthy = TCASubCluster(num_nodes, node_params=NodeParams(num_gpus=1))
    before_ns = one_way_ns(healthy, TCAComm(healthy))

    cluster = TCASubCluster(num_nodes, node_params=NodeParams(num_gpus=1))
    comm = TCAComm(cluster)
    cluster.cut_ring_cable(0)
    chain = cluster.heal()
    after_ns = one_way_ns(cluster, comm)

    pairs = [(src, dst) for src in range(num_nodes)
             for dst in range(num_nodes) if src != dst]
    for src, dst in pairs:
        slot = (src * num_nodes + dst) * 8
        target = comm.host_global(dst, cluster.driver(dst).dma_buffer(slot))
        cluster.node(src).cpu.store_u32(target, 0xCE110000 + slot)
    cluster.engine.run()
    delivered = 0
    for src, dst in pairs:
        slot = (src * num_nodes + dst) * 8
        got = cluster.driver(dst).read_dma_buffer(slot, 4)
        if int.from_bytes(got.tobytes(), "little") == 0xCE110000 + slot:
            delivered += 1
    return {
        "healed_chain": list(chain),
        "pairs_delivered_after_heal": delivered,
        "all_pairs_ok_after_heal": delivered == len(pairs),
        "adjacent_one_way_ns": before_ns,
        "healed_one_way_ns": after_ns,
        "detour_factor": after_ns / before_ns,
    }


# -- E14: NTB comparison ----------------------------------------------------------------------------------

def ablation_ntb() -> Dict[str, object]:
    """NTB vs PEACH2: latency parity, but very different failure modes."""
    ntb = NTBPair()
    ntb_latency = ntb.store_latency_ns()
    ntb.cut_cable()

    rig = LoopbackRig()
    peach2_latency = rig.pio_commit_latency_ns()
    # Cut a PEACH2 ring cable: the host connection (port N) is unaffected.
    rig.board_a.chip.port_e.link.take_down()
    host_link_up = rig.board_a.chip.port_n.link.up
    return {
        "ntb_store_latency_ns": ntb_latency,
        "peach2_store_latency_ns": peach2_latency,
        "ntb_hosts_require_reboot_after_unplug": ntb.hosts_require_reboot,
        "peach2_host_link_up_after_ring_cut": host_link_up,
    }


# -- the experiment registry (E1-E23) -----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentSpec:
    """One registry entry: an E-number, a CLI name, and how to run it.

    ``params`` are the full-fidelity arguments (EXPERIMENTS.md numbers);
    ``smoke_params`` shrink the sweep while *keeping every point a paper
    anchor reads*, so ``tca-bench suite --smoke`` still checks the whole
    anchor table; ``tiny_params`` shrink further for the determinism
    tests, where only byte-stability matters.  ``cost_s`` is a rough
    full-mode wall-clock hint used to balance shards.
    """

    eid: str
    name: str
    fn: Callable[..., object]
    title: str
    kind: str                      # "exact" | "anchor" | "shape" | "extension"
    params: Mapping[str, object] = field(default_factory=dict)
    smoke_params: Optional[Mapping[str, object]] = None
    tiny_params: Optional[Mapping[str, object]] = None
    cost_s: float = 0.1

    def params_for(self, mode: str) -> Dict[str, object]:
        """The keyword arguments one suite mode runs this entry with."""
        if mode == "full":
            return dict(self.params)
        if mode == "smoke":
            return dict(self.smoke_params if self.smoke_params is not None
                        else self.params)
        if mode == "tiny":
            if self.tiny_params is not None:
                return dict(self.tiny_params)
            return self.params_for("smoke")
        raise ConfigError(f"unknown suite mode {mode!r}")

    def run(self, mode: str = "full") -> object:
        """Execute the experiment in one suite mode."""
        return self.fn(**self.params_for(mode))


def _specs() -> List[ExperimentSpec]:
    S = ExperimentSpec
    return [
        S("E1", "table1", table1, "Table I (HA-PACS base cluster)", "exact"),
        S("E2", "table2", table2, "Table II (testbed)", "exact"),
        S("E3", "theory", theory, "Eq. (1): theoretical peak", "anchor"),
        S("E4", "fig7", fig7, "Fig. 7: size vs bandwidth, 255 chained DMAs",
          "anchor",
          smoke_params={"sizes": (256, 4 * KiB)},
          tiny_params={"sizes": (256,), "count": 8}, cost_s=3.5),
        S("E5", "fig8", fig8, "Fig. 8: single DMA", "shape",
          smoke_params={"sizes": (4 * KiB, 32 * KiB)},
          tiny_params={"sizes": (1 * KiB,)}, cost_s=0.2),
        S("E6", "fig9", fig9, "Fig. 9: request count at 4 KB", "anchor",
          smoke_params={"counts": (1, 2, 4, 255)},
          tiny_params={"counts": (1, 2)}, cost_s=2.9),
        S("E7", "limits", limits, "§IV-A2 limits", "anchor",
          tiny_params={"count": 8}, cost_s=1.3),
        S("E8", "latency", latency, "Fig. 10 / §IV-B1: PIO latency",
          "anchor"),
        S("E9", "fig12", fig12, "Fig. 12: remote DMA write", "shape",
          smoke_params={"sizes": (256, 4 * KiB)},
          tiny_params={"sizes": (512,), "count": 4}, cost_s=2.7),
        S("E10", "comparison-host", comparison_host,
          "motivation: host-to-host paths", "shape",
          smoke_params={"sizes": (8, 1 * MiB)},
          tiny_params={"sizes": (64,)}, cost_s=3.4),
        S("E10", "comparison-gpu", comparison_gpu,
          "motivation: GPU-to-GPU paths", "shape",
          smoke_params={"sizes": (64, 1 * MiB)},
          tiny_params={"sizes": (64,)}, cost_s=5.7),
        S("E11", "ablation-dmac", ablation_dmac,
          "two-phase vs pipelined DMAC", "prediction",
          smoke_params={"sizes": (1 * MiB,)},
          tiny_params={"sizes": (32 * KiB,)}, cost_s=2.5),
        S("E12", "ablation-ring", ablation_ring,
          "ring size vs latency", "prediction",
          tiny_params={"ring_sizes": (2,)}, cost_s=0.2),
        S("E13", "routing", routing,
          "functional: address map + routing", "functional",
          smoke_params={"ring_sizes": (2, 4)},
          tiny_params={"ring_sizes": (2,)}),
        S("E14", "ablation-ntb", ablation_ntb, "NTB comparison", "shape"),
        S("E15", "healing", healing, "PEARL reliability (ring healing)",
          "extension"),
        S("E16", "pio-dma-crossover", pio_dma_crossover,
          "PIO vs DMA crossover", "extension",
          smoke_params={"sizes": (1 * KiB, 2 * KiB)},
          tiny_params={"sizes": (64, 8 * KiB)}, cost_s=0.1),
        S("E17", "hierarchy", hierarchy,
          "hierarchical network: local vs global put", "extension",
          tiny_params={"sizes": (64,)}, cost_s=0.5),
        S("E18", "collectives", collectives,
          "collectives without an MPI stack", "extension",
          tiny_params={"block_sizes": (1 * KiB,), "num_nodes": 2},
          cost_s=1.4),
        S("E19", "contention", contention,
          "ring contention: simultaneous k-hop shifts", "extension",
          smoke_params={"ring_sizes": (4,)},
          tiny_params={"ring_sizes": (4,), "nbytes": 16 * KiB},
          cost_s=12.9),
        S("E20", "collective-allreduce", collective_allreduce,
          "allreduce: TCA vs MPI crossover", "extension",
          smoke_params={"sizes": (1 * KiB, 256 * KiB)},
          tiny_params={"sizes": (1 * KiB,), "num_nodes": 2},
          cost_s=2.0),
        S("E21", "collective-dual-ring", collective_dual_ring,
          "allreduce: dual-ring vs single-ring", "extension",
          smoke_params={"sizes": (1 * KiB,)},
          tiny_params={"sizes": (1 * KiB,), "num_nodes": 4},
          cost_s=2.0),
        S("E22", "collective-torus", collective_torus,
          "allreduce scaling: ring vs 2D torus", "extension",
          tiny_params={"node_counts": (4,), "nbytes": 1 * KiB},
          cost_s=8.0),
        S("E23", "bisection", bisection,
          "bisection bandwidth: antipodal shifts", "extension",
          smoke_params={"node_counts": (16,)},
          tiny_params={"node_counts": (4,), "nbytes": 16 * KiB},
          cost_s=23.0),
    ]


#: Registry entry name -> spec; covers experiments E1 through E23.
REGISTRY: Dict[str, ExperimentSpec] = {s.name: s for s in _specs()}

#: The distinct experiment ids the registry covers, in paper order.
EXPERIMENT_IDS: Tuple[str, ...] = tuple(
    dict.fromkeys(s.eid for s in REGISTRY.values()))
