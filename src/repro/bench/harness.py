"""Measurement rigs shared by the figure experiments.

:class:`SingleNodeRig` is the §IV-A setup — one node, one PEACH2 board,
DMA between the chip and local CPU/GPU memory, timed from the doorbell
store to the completion-interrupt handler (the paper's TSC methodology).
:class:`TwoNodeRig` is the §IV-B2 / Fig. 11 setup — remote DMA writes from
PEACH2 on node A to memory on adjacent node B.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cuda.runtime import CudaContext
from repro.cuda.pointer import CU_POINTER_ATTRIBUTE_P2P_TOKENS
from repro.drivers.p2p_driver import P2PDriver
from repro.drivers.peach2_driver import PEACH2Driver
from repro.errors import ConfigError
from repro.hw.node import ComputeNode, NodeParams
from repro.peach2.board import PEACH2Board
from repro.peach2.chip import PEACH2Params
from repro.peach2.descriptor import DMADescriptor
from repro.sim.core import Engine
from repro.tca.address_map import BLOCK_GPU0, BLOCK_HOST
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster
from repro.units import KiB, MiB, bw_gbytes_per_s

#: The paper's burst count: "255 DMA writes and DMA reads" (§IV-A1).
PAPER_BURST = 255

#: Default Fig. 7/8 sweep (paper peaks at 4 KB; we extend to one side to
#: show the knee Fig. 8 describes at 8 KB and beyond).
DEFAULT_SIZES = (64, 128, 256, 512, 1 * KiB, 2 * KiB, 4 * KiB,
                 8 * KiB, 16 * KiB, 32 * KiB)


class SingleNodeRig:
    """One node + one PEACH2 board: the §IV-A DMA measurement bench."""

    def __init__(self, engine: Optional[Engine] = None,
                 node_params: NodeParams = NodeParams(num_gpus=2),
                 peach2_params: PEACH2Params = PEACH2Params()):
        self.engine = engine or Engine()
        self.node = ComputeNode(self.engine, "bench", node_params)
        self.board = PEACH2Board(self.engine, "peach2", peach2_params)
        self.node.install_adapter(self.board)
        self.node.enumerate()
        self.driver = PEACH2Driver(self.node, self.board)
        self.cuda = CudaContext(self.node)
        self.p2p = P2PDriver()
        self._gpu_buffers = {}

    # -- target addresses ----------------------------------------------------------

    def cpu_target(self, offset: int = 0) -> int:
        """Bus address inside the driver's DMA buffer."""
        return self.driver.dma_buffer(offset)

    def gpu_target(self, gpu_index: int = 0, nbytes: int = 12 * MiB) -> int:
        """Bus address of a pinned GPU-memory buffer (GPUDirect RDMA)."""
        key = (gpu_index, nbytes)
        if key not in self._gpu_buffers:
            ptr = self.cuda.cu_mem_alloc(gpu_index, nbytes)
            token = self.cuda.cu_pointer_get_attribute(
                CU_POINTER_ATTRIBUTE_P2P_TOKENS, ptr)
            mapping = self.p2p.pin(ptr.gpu, token, ptr.offset, nbytes)
            self._gpu_buffers[key] = mapping.bus_address
        return self._gpu_buffers[key]

    def internal_src(self, offset: int = 0) -> int:
        """Bus address inside PEACH2 internal memory (DMA-write source)."""
        return self.board.chip.bar2.base + offset

    # -- chain builders --------------------------------------------------------------

    def write_chain(self, size: int, count: int, target: int,
                    spread: bool = True) -> List[DMADescriptor]:
        """``count`` DMA writes of ``size`` bytes: internal -> target."""
        return [DMADescriptor(self.internal_src((i * size) if spread else 0),
                              target + i * size, size)
                for i in range(count)]

    def read_chain(self, size: int, count: int, target: int,
                   spread: bool = True) -> List[DMADescriptor]:
        """``count`` DMA reads of ``size`` bytes: target -> internal."""
        return [DMADescriptor(target + i * size,
                              self.internal_src((i * size) if spread else 0),
                              size)
                for i in range(count)]

    # -- measurement -------------------------------------------------------------------

    def measure_chain(self, chain: Sequence[DMADescriptor],
                      channel: int = 0) -> Tuple[int, float]:
        """Run one chain; returns (elapsed_ps, bandwidth GB/s)."""
        total = sum(d.length for d in chain)
        elapsed = self.engine.run_process(
            self.driver.run_chain(channel, list(chain)), name="measure")
        return elapsed, bw_gbytes_per_s(total, elapsed)

    def measure(self, op: str, target_kind: str, size: int,
                count: int = PAPER_BURST) -> Tuple[int, float]:
        """One (op, target, size, burst) cell of Figs. 7-9.

        ``op`` is ``write`` or ``read`` (from PEACH2's viewpoint, §IV-A);
        ``target_kind`` is ``cpu`` or ``gpu``.
        """
        if count * size > 12 * MiB:
            raise ConfigError("burst does not fit the measurement buffers")
        if target_kind == "cpu":
            target = self.cpu_target()
        elif target_kind == "gpu":
            target = self.gpu_target()
        else:
            raise ConfigError(f"unknown target {target_kind!r}")
        if op == "write":
            chain = self.write_chain(size, count, target)
        elif op == "read":
            chain = self.read_chain(size, count, target)
        else:
            raise ConfigError(f"unknown op {op!r}")
        return self.measure_chain(chain)


class TwoNodeRig:
    """Two adjacent TCA nodes: the Fig. 11 remote-DMA bench."""

    def __init__(self, engine: Optional[Engine] = None):
        self.cluster = TCASubCluster(2, engine=engine,
                                     node_params=NodeParams(num_gpus=2))
        self.engine = self.cluster.engine
        self.comm = TCAComm(self.cluster)
        # Keyed on nbytes: a cached buffer pinned for a smaller request
        # must not be handed out for a larger one.
        self._gpu_global = {}

    def remote_cpu_target(self, offset: int = 0) -> int:
        """TCA-global address of node 1's DMA buffer."""
        return self.comm.host_global(
            1, self.cluster.driver(1).dma_buffer(offset))

    def remote_gpu_target(self, nbytes: int = 12 * MiB) -> int:
        """TCA-global address of a pinned GPU buffer on node 1."""
        if nbytes not in self._gpu_global:
            ptr = self.cluster.cuda[1].cu_mem_alloc(0, nbytes)
            self._gpu_global[nbytes] = self.comm.register_gpu_memory(1, ptr)
        return self._gpu_global[nbytes]

    def internal_src(self, offset: int = 0) -> int:
        """Node 0's PEACH2 internal memory (remote DMA-write source)."""
        return self.cluster.board(0).chip.bar2.base + offset

    def measure_remote_write(self, size: int, target_kind: str,
                             count: int = PAPER_BURST) -> Tuple[int, float]:
        """255 chained remote DMA writes to node 1 (Fig. 12)."""
        if target_kind == "cpu":
            target = self.remote_cpu_target()
        elif target_kind == "gpu":
            target = self.remote_gpu_target()
        else:
            raise ConfigError(f"unknown target {target_kind!r}")
        chain = [DMADescriptor(self.internal_src(i * size),
                               target + i * size, size)
                 for i in range(count)]
        total = size * count
        elapsed = self.engine.run_process(
            self.cluster.driver(0).run_chain(0, chain), name="remote")
        return elapsed, bw_gbytes_per_s(total, elapsed)
