"""Benchmark harness: one module per paper table/figure, plus a CLI.

Every experiment can be regenerated standalone::

    python -m repro.bench fig7
    tca-bench latency

or through the pytest-benchmark wrappers in ``benchmarks/``.
"""

from repro.bench.series import Series, SweepTable
from repro.bench.loopback import LoopbackRig

__all__ = ["Series", "SweepTable", "LoopbackRig"]
