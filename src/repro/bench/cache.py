"""Content-addressed result store for the experiment suite.

Every experiment result is cached under a key derived from everything
that could change the result:

* the registry entry name and the exact parameters it ran with,
* the calibration fingerprint (every constant of
  :class:`~repro.model.calibration.Calibration`, hashed),
* the source fingerprint (every ``.py`` file of the ``repro`` package,
  hashed), and
* the suite seed.

A warm ``tca-bench suite`` therefore returns byte-identical payloads
instantly, while *any* model change — a calibration constant, a line of
simulator source — misses the cache and re-measures.  The store is a
plain directory of JSON documents (``<key[:2]>/<key>.json``), safe to
delete at any time.

The store is hardened against torn and corrupted files: every entry is
written atomically (tempfile + fsync + rename, via
:mod:`repro.bench.ioutil`) and carries a SHA-256 checksum of its
payload text.  A ``get`` that finds an unparseable document, a checksum
mismatch, or a key mismatch does **not** crash the suite: the damaged
file is moved into ``<root>/quarantine/`` for post-mortem, the
``corrupted`` counter ticks, and the lookup reports a miss so the
entry is transparently re-measured and re-stored.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.bench.ioutil import atomic_write_text, fsync_dir

#: Version tag of the on-disk cache documents; bump to invalidate.
#: v2 added the payload checksum (corruption detection + quarantine).
SCHEMA = "tca-bench-cache/2"

#: Environment override for the cache directory.
ENV_CACHE_DIR = "TCA_BENCH_CACHE_DIR"

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".tca-bench-cache"


def default_cache_dir() -> Path:
    """The configured cache root: ``$TCA_BENCH_CACHE_DIR`` or CWD-local."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def canonical_json(value: object) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def hash_files(files: Iterable[Path], root: Optional[Path] = None) -> str:
    """SHA-256 over (relative path, content) of every file, sorted."""
    digest = hashlib.sha256()
    for path in sorted(Path(f) for f in files):
        name = str(path.relative_to(root)) if root else path.name
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def sources_fingerprint(packages: Sequence[str] = ("repro",)) -> str:
    """Hash every ``.py`` source file of the given packages."""
    digest = hashlib.sha256()
    for name in packages:
        module = importlib.import_module(name)
        paths = getattr(module, "__path__", None)
        if paths is None:
            digest.update(hash_files([Path(module.__file__)]).encode())
            continue
        for base in paths:
            base = Path(base)
            digest.update(hash_files(sorted(base.rglob("*.py")),
                                     root=base).encode())
    return digest.hexdigest()


def cache_key(entry: str, params: Dict[str, object], calibration_fp: str,
              sources_fp: str, seed: int) -> str:
    """The content address of one experiment result."""
    blob = canonical_json({
        "schema": SCHEMA,
        "entry": entry,
        "params": params,
        "calibration": calibration_fp,
        "sources": sources_fp,
        "seed": seed,
    })
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_checksum(payload_json: str) -> str:
    """The checksum stored next to (and verified against) each payload."""
    return hashlib.sha256(payload_json.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of cached experiment payloads, addressed by content key.

    ``get`` and ``put`` move *canonical payload text* (the exact JSON the
    suite reports), so a cache hit is byte-identical to the cold run that
    produced it.  Damaged entries are quarantined, never served and
    never fatal (see the module docstring).
    """

    #: Subdirectory damaged entries are moved into.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.corrupted = 0
        #: (key, reason) of every entry quarantined by this object.
        self.quarantined: List[Dict[str, str]] = []

    def path_for(self, key: str) -> Path:
        """Where the document for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    def quarantine_path(self, key: str) -> Path:
        """Where a damaged document for ``key`` is parked."""
        return self.root / self.QUARANTINE_DIR / f"{key}.json"

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a damaged entry out of the lookup path; never raises."""
        self.corrupted += 1
        self.quarantined.append({"key": key, "reason": reason})
        target = self.quarantine_path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            # Even an unmovable corrupt file must not fail the lookup;
            # unlink so the re-run's put can replace it.
            try:
                os.unlink(path)
            except OSError:
                pass

    def get(self, key: str) -> Optional[str]:
        """The cached canonical payload text, or None on a miss.

        A *missing* file and a *stale-schema* document are plain misses;
        an *unreadable, torn, or checksum-failing* document is counted
        as corruption, quarantined, and then reported as a miss so the
        caller transparently re-runs the experiment.
        """
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, UnicodeDecodeError) as exc:
            self._quarantine(key, path, f"unreadable: {exc}")
            self.misses += 1
            return None
        try:
            doc = json.loads(text)
        except ValueError as exc:
            self._quarantine(key, path, f"invalid JSON: {exc}")
            self.misses += 1
            return None
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            self.misses += 1  # older/foreign schema: stale, not damaged
            return None
        payload = doc.get("payload_json")
        if doc.get("key") != key or not isinstance(payload, str):
            self._quarantine(key, path, "key/payload mismatch")
            self.misses += 1
            return None
        if doc.get("sha256") != payload_checksum(payload):
            self._quarantine(key, path, "checksum mismatch")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, entry: str, payload_json: str,
            meta: Optional[Dict[str, object]] = None) -> Path:
        """Store one payload; atomic + fsync'd, last writer wins."""
        path = self.path_for(key)
        doc = {
            "schema": SCHEMA,
            "key": key,
            "entry": entry,
            "sha256": payload_checksum(payload_json),
            "payload_json": payload_json,
            "meta": meta or {},
        }
        atomic_write_text(path, json.dumps(doc, indent=1) + "\n")
        fsync_dir(path.parent)
        return path

    def stats(self) -> Dict[str, int]:
        """Hit/miss/corruption counters for this object's lifetime."""
        return {"hits": self.hits, "misses": self.misses,
                "corrupted": self.corrupted}
