"""Content-addressed result store for the experiment suite.

Every experiment result is cached under a key derived from everything
that could change the result:

* the registry entry name and the exact parameters it ran with,
* the calibration fingerprint (every constant of
  :class:`~repro.model.calibration.Calibration`, hashed),
* the source fingerprint (every ``.py`` file of the ``repro`` package,
  hashed), and
* the suite seed.

A warm ``tca-bench suite`` therefore returns byte-identical payloads
instantly, while *any* model change — a calibration constant, a line of
simulator source — misses the cache and re-measures.  The store is a
plain directory of JSON documents (``<key[:2]>/<key>.json``), safe to
delete at any time.
"""

from __future__ import annotations

import contextlib
import hashlib
import importlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence

#: Version tag of the on-disk cache documents; bump to invalidate.
SCHEMA = "tca-bench-cache/1"

#: Environment override for the cache directory.
ENV_CACHE_DIR = "TCA_BENCH_CACHE_DIR"

#: Default cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".tca-bench-cache"


def default_cache_dir() -> Path:
    """The configured cache root: ``$TCA_BENCH_CACHE_DIR`` or CWD-local."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def canonical_json(value: object) -> str:
    """Deterministic JSON text: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def hash_files(files: Iterable[Path], root: Optional[Path] = None) -> str:
    """SHA-256 over (relative path, content) of every file, sorted."""
    digest = hashlib.sha256()
    for path in sorted(Path(f) for f in files):
        name = str(path.relative_to(root)) if root else path.name
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def sources_fingerprint(packages: Sequence[str] = ("repro",)) -> str:
    """Hash every ``.py`` source file of the given packages."""
    digest = hashlib.sha256()
    for name in packages:
        module = importlib.import_module(name)
        paths = getattr(module, "__path__", None)
        if paths is None:
            digest.update(hash_files([Path(module.__file__)]).encode())
            continue
        for base in paths:
            base = Path(base)
            digest.update(hash_files(sorted(base.rglob("*.py")),
                                     root=base).encode())
    return digest.hexdigest()


def cache_key(entry: str, params: Dict[str, object], calibration_fp: str,
              sources_fp: str, seed: int) -> str:
    """The content address of one experiment result."""
    blob = canonical_json({
        "schema": SCHEMA,
        "entry": entry,
        "params": params,
        "calibration": calibration_fp,
        "sources": sources_fp,
        "seed": seed,
    })
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of cached experiment payloads, addressed by content key.

    ``get`` and ``put`` move *canonical payload text* (the exact JSON the
    suite reports), so a cache hit is byte-identical to the cold run that
    produced it.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Where the document for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[str]:
        """The cached canonical payload text, or None on a miss."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if doc.get("schema") != SCHEMA or doc.get("key") != key:
            self.misses += 1
            return None
        payload = doc.get("payload_json")
        if not isinstance(payload, str):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, entry: str, payload_json: str,
            meta: Optional[Dict[str, object]] = None) -> Path:
        """Store one payload; atomic via rename, last writer wins."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": SCHEMA,
            "key": key,
            "entry": entry,
            "payload_json": payload_json,
            "meta": meta or {},
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        return path

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters for this cache object's lifetime."""
        return {"hits": self.hits, "misses": self.misses}
