"""Wall-clock performance harness for the simulator itself.

Every other module in :mod:`repro.bench` measures *simulated* time; this
one measures *host* time — how fast the event loop chews through a
representative slice of the paper's experiments.  It exists so that
performance work on the engine has a trajectory: run ``tca-bench perf``
before and after a change, compare events/second, and commit the JSON
document (``tca-bench perf --bench-json BENCH_PR3.json``) so the next
change has a baseline to beat.

Each experiment is timed twice — **bare** (no observability attached) and
**instrumented** (a full :class:`~repro.obs.session.Observability` session:
tracing + metrics on every engine) — because the instrumented path is the
one humans actually iterate with, and its overhead factor is itself a
regression target.  Engines are collected via the same
:func:`~repro.sim.core.register_engine_observer` hook the observability
session uses, so the harness adds zero events to any engine: wall-clock
numbers vary run to run, but every simulated-time output stays
picosecond-identical to an unharnessed run.
"""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench import experiments
from repro.sim.core import (Engine, register_engine_observer,
                            unregister_engine_observer)

#: What ``tca-bench perf`` times: a PIO sweep (fig7), a DMA chain sweep
#: (fig9), the cross-technology comparison (comparison-gpu) and the
#: many-flow congestion scenario (contention) — together they exercise
#: every hot path: stores, links, switches, DMA engines and collectives.
PERF_EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig7": experiments.fig7,
    "fig9": experiments.fig9,
    "comparison-gpu": experiments.comparison_gpu,
    "contention": experiments.contention,
}

#: Version tag of the JSON document written by ``--bench-json``.
SCHEMA = "tca-bench-perf/1"


@dataclass
class PerfSample:
    """One timed run of one experiment in one mode."""

    experiment: str
    mode: str  # "bare" | "instrumented"
    wall_s: float
    events: int
    engines: int

    @property
    def events_per_s(self) -> float:
        """Throughput; 0.0 for a degenerate zero-duration run."""
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "engines": self.engines,
            "events_per_s": round(self.events_per_s, 1),
        }


@dataclass
class PerfReport:
    """All samples of one harness run plus environment provenance."""

    samples: List[PerfSample] = field(default_factory=list)
    unix_time: float = 0.0

    def overhead(self, experiment: str) -> Optional[float]:
        """Instrumented/bare wall-clock ratio for one experiment."""
        bare = inst = None
        for s in self.samples:
            if s.experiment == experiment:
                if s.mode == "bare":
                    bare = s.wall_s
                elif s.mode == "instrumented":
                    inst = s.wall_s
        if not bare or inst is None:
            return None
        return inst / bare

    def overall_overhead(self) -> Optional[float]:
        """Aggregate instrumented/bare wall ratio across all experiments."""
        bare = sum(s.wall_s for s in self.samples if s.mode == "bare")
        inst = sum(s.wall_s for s in self.samples
                   if s.mode == "instrumented")
        if not bare or not inst:
            return None
        return inst / bare

    def to_dict(self) -> Dict[str, Any]:
        """The ``--bench-json`` document (see docs/performance.md)."""
        totals = {
            "wall_s": round(sum(s.wall_s for s in self.samples), 4),
            "events": sum(s.events for s in self.samples),
        }
        wall = totals["wall_s"]
        totals["events_per_s"] = round(totals["events"] / wall, 1) if wall else 0.0
        overall = self.overall_overhead()
        if overall is not None:
            totals["overhead_ratio"] = round(overall, 3)
        return {
            "schema": SCHEMA,
            "unix_time": round(self.unix_time, 3),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "results": [s.to_dict() for s in self.samples],
            "totals": totals,
        }

    def __str__(self) -> str:
        header = (f"{'experiment':<16} {'mode':<13} {'wall_s':>8} "
                  f"{'events':>10} {'events/s':>12} {'overhead':>9}")
        lines = [header, "-" * len(header)]
        for s in self.samples:
            ratio = (self.overhead(s.experiment)
                     if s.mode == "instrumented" else None)
            overhead = f"x{ratio:.2f}" if ratio is not None else ""
            lines.append(f"{s.experiment:<16} {s.mode:<13} {s.wall_s:>8.2f} "
                         f"{s.events:>10} {s.events_per_s:>12.0f} "
                         f"{overhead:>9}")
        ratios = []
        for name in dict.fromkeys(s.experiment for s in self.samples):
            ratio = self.overhead(name)
            if ratio is not None:
                ratios.append(f"{name} x{ratio:.2f}")
        if ratios:
            lines.append("")
            lines.append("observability overhead: " + ", ".join(ratios))
        return "\n".join(lines)


def _timed(fn: Callable[[], object], instrumented: bool) -> PerfSample:
    """Run ``fn`` once, collecting every engine it constructs.

    Engines built in this process are seen by the observer hook; engines
    built inside fork workers (``TCA_ENGINE_WORKERS`` > 1) are invisible
    here, so their ``(events, engines)`` tally is drained from the
    executor instead — the two sources are disjoint by construction.
    """
    from repro.sim import executor as engine_executor

    engines: List[Engine] = []
    collect = engines.append
    engine_executor.consume_stats()  # drop any stale pre-run tally
    register_engine_observer(collect)
    try:
        if instrumented:
            from repro.obs import Observability

            obs = Observability()
            start = time.perf_counter()
            with obs.session():
                fn()
            wall = time.perf_counter() - start
        else:
            start = time.perf_counter()
            fn()
            wall = time.perf_counter() - start
    finally:
        unregister_engine_observer(collect)
    worker_events, worker_engines = engine_executor.consume_stats()
    return PerfSample(
        experiment="", mode="instrumented" if instrumented else "bare",
        wall_s=wall,
        events=sum(e.events_processed for e in engines) + worker_events,
        engines=len(engines) + worker_engines)


def run_perf(names: Optional[Sequence[str]] = None) -> PerfReport:
    """Time each experiment bare and instrumented; returns the report.

    ``names`` defaults to every entry of :data:`PERF_EXPERIMENTS`; unknown
    names raise ``KeyError`` so typos fail loudly rather than silently
    shrinking the benchmark.
    """
    names = list(PERF_EXPERIMENTS) if names is None else list(names)
    report = PerfReport(unix_time=time.time())
    for name in names:
        fn = PERF_EXPERIMENTS[name]
        for instrumented in (False, True):
            sample = _timed(fn, instrumented)
            sample.experiment = name
            report.samples.append(sample)
    return report


def run_profile(names: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Run each experiment once under an :class:`EngineProfiler`.

    Returns ``{experiment: ProfileReport}`` — the ``perf --profile``
    payload.  Each experiment gets a fresh profiler so its hotspots are
    not diluted by the others'; the window opens tight around the run,
    so the attribution covers exactly the experiment's wall time
    (dispatch + harness gaps).
    """
    from repro.obs.profile import EngineProfiler

    names = list(PERF_EXPERIMENTS) if names is None else list(names)
    reports: Dict[str, Any] = {}
    for name in names:
        fn = PERF_EXPERIMENTS[name]
        profiler = EngineProfiler()
        with profiler.session():
            fn()
        reports[name] = profiler.report(label=name)
    return reports
