"""Result containers and paper-style table/chart rendering for experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.units import pretty_size


@dataclass
class Series:
    """One labelled curve: (x, y) points, e.g. size vs bandwidth."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.points.append((x, y))

    def y_at(self, x: float) -> float:
        """The y value at an exact x (raises if absent)."""
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"{self.label}: no point at x={x}")

    @property
    def peak(self) -> float:
        """Maximum y of the series."""
        return max(y for _, y in self.points)


class SweepTable:
    """Several series over a shared x axis, rendered like a paper figure."""

    def __init__(self, title: str, x_label: str = "size",
                 y_label: str = "Gbytes/s", x_is_size: bool = True):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.x_is_size = x_is_size
        self.series: Dict[str, Series] = {}

    def series_for(self, label: str) -> Series:
        """Get or create the series with this label."""
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def add(self, label: str, x: float, y: float) -> None:
        """Append a point to a labelled series."""
        self.series_for(label).add(x, y)

    def xs(self) -> List[float]:
        """Sorted union of all x values."""
        seen = sorted({x for s in self.series.values() for x, _ in s.points})
        return seen

    def to_dict(self) -> dict:
        """JSON-friendly form (``tca-bench --json``)."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {label: [[x, y] for x, y in s.points]
                       for label, s in self.series.items()},
        }

    def render(self) -> str:
        """Fixed-width table: one row per x, one column per series."""
        labels = list(self.series)
        header = [self.x_label] + labels
        rows: List[List[str]] = []
        for x in self.xs():
            cell = pretty_size(int(x)) if self.x_is_size else f"{x:g}"
            row = [cell]
            for label in labels:
                try:
                    row.append(f"{self.series[label].y_at(x):.3f}")
                except KeyError:
                    row.append("-")
            rows.append(row)
        widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
                  else len(header[i]) for i in range(len(header))]
        lines = [self.title,
                 f"({self.y_label} per series)",
                 "  ".join(h.rjust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths))
                  for row in rows]
        return "\n".join(lines)

    def render_chart(self, width: int = 64, height: int = 14,
                     log_x: bool = True) -> str:
        """ASCII scatter chart of all series (one marker letter each).

        The x axis is logarithmic by default (message-size sweeps span
        decades); y is linear from zero to the maximum observed value.
        """
        points = [(x, y) for s in self.series.values() for x, y in s.points]
        if not points:
            return f"{self.title}\n(no data)"
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        x_lo, x_hi = min(xs), max(xs)
        y_hi = max(ys) or 1.0

        def col_of(x: float) -> int:
            if x_hi == x_lo:
                return 0
            if log_x and x_lo > 0:
                frac = (math.log(x) - math.log(x_lo)) / (
                    math.log(x_hi) - math.log(x_lo))
            else:
                frac = (x - x_lo) / (x_hi - x_lo)
            return min(width - 1, max(0, int(round(frac * (width - 1)))))

        def row_of(y: float) -> int:
            frac = y / y_hi
            return min(height - 1, max(0, int(round(frac * (height - 1)))))

        grid = [[" "] * width for _ in range(height)]
        markers = "ABCDEFGHJK"
        legend = []
        for i, (label, series) in enumerate(self.series.items()):
            marker = markers[i % len(markers)]
            legend.append(f"  {marker} = {label}")
            for x, y in series.points:
                row = height - 1 - row_of(y)
                col = col_of(x)
                cell = grid[row][col]
                grid[row][col] = "*" if cell not in (" ", marker) else marker

        y_width = len(f"{y_hi:.3g}")
        lines = [self.title, f"y: {self.y_label}   x: {self.x_label}"
                             f"{' (log)' if log_x else ''}"]
        for r, row in enumerate(grid):
            y_value = y_hi * (height - 1 - r) / (height - 1)
            label = f"{y_value:.3g}".rjust(y_width) if r % 4 == 0 or r == height - 1 else " " * y_width
            lines.append(f"{label} |" + "".join(row))
        left = pretty_size(int(x_lo)) if self.x_is_size else f"{x_lo:g}"
        right = pretty_size(int(x_hi)) if self.x_is_size else f"{x_hi:g}"
        axis = left + " " * max(1, width - len(left) - len(right)) + right
        lines.append(" " * y_width + " +" + "-" * width)
        lines.append(" " * y_width + "  " + axis)
        lines.extend(legend)
        return "\n".join(lines)
