"""The Fig. 10 loopback rig: two PEACH2 boards in a single node.

"In order to strictly measure the latency among the PEACH2 chip, two
PEACH2 boards are attached to a single node" (§IV-B1); board A's E port is
cabled to board B's W port.  Both chips are programmed with the *same*
TCA base (board A's window) so a store into board A's window at node 1's
region relays A -> cable -> B, and B's port N delivers it into host memory
— where the driver polls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.drivers.peach2_driver import PEACH2Driver
from repro.hw.node import ComputeNode, NodeParams
from repro.peach2.board import PEACH2Board
from repro.peach2.chip import PEACH2Params
from repro.peach2.registers import (BLOCK_HOST, PortCode, RouteEntry)
from repro.sim.core import Engine
from repro.tca.address_map import TCAAddressMap


class LoopbackRig:
    """Single node, two boards, one external cable (Fig. 10)."""

    def __init__(self, engine: Optional[Engine] = None,
                 node_params: NodeParams = NodeParams(num_gpus=1),
                 peach2_params: PEACH2Params = PEACH2Params()):
        self.engine = engine or Engine()
        self.node = ComputeNode(self.engine, "loopback", node_params)
        self.board_a = PEACH2Board(self.engine, "peach2A", peach2_params)
        self.board_b = PEACH2Board(self.engine, "peach2B", peach2_params)
        self.node.install_adapter(self.board_a)
        self.node.install_adapter(self.board_b)
        self.node.enumerate()
        self.board_a.cable_east_to(self.board_b)

        # One shared map anchored at board A's window (board B's own BAR4
        # is unused in this configuration).
        self.address_map = TCAAddressMap(self.board_a.chip.bar4.base)
        node0 = self.address_map.node_region(0)
        node1 = self.address_map.node_region(1)
        mask = self.address_map.node_mask()

        regs_a = self.board_a.chip.regs
        regs_a.set_identity(0, self.address_map.base)
        regs_a.set_route(0, RouteEntry(mask, node0.base, node0.base, PortCode.N))
        regs_a.set_route(1, RouteEntry(mask, node1.base, node1.base, PortCode.E))
        regs_a.set_block_base(BLOCK_HOST, 0)

        regs_b = self.board_b.chip.regs
        regs_b.set_identity(1, self.address_map.base)
        regs_b.set_route(0, RouteEntry(mask, node1.base, node1.base, PortCode.N))
        regs_b.set_route(1, RouteEntry(mask, node0.base, node0.base, PortCode.W))
        regs_b.set_block_base(BLOCK_HOST, 0)

        self.driver_a = PEACH2Driver(self.node, self.board_a)

    def pio_store_latency(self, flag_value: int = 0xDEAD_BEE5) -> dict:
        """Run the §IV-B1 measurement; returns both latency views (ns).

        * ``wire_ns`` — store issue to the word being committed in host
          memory (the physical one-way transfer latency the paper quotes
          as 782 ns);
        * ``polled_ns`` — store issue to the polling driver observing the
          word (adds poll-loop granularity).
        """
        driver = self.driver_a
        offset = 0x100
        target = self.address_map.global_address(
            1, BLOCK_HOST, driver.dma_buffer(offset))
        dram = self.node.dram

        result = {}

        def measurement():
            start = self.node.cpu.read_tsc()
            self.node.cpu.store_u32(target, flag_value)
            observed_tsc = yield self.engine.process(
                driver.poll_dma_buffer_u32(offset, flag_value),
                name="poll")
            result["polled_ns"] = (observed_tsc - start) / 1000.0
            result["start_ps"] = start
            return result

        self.engine.run_process(measurement(), name="pio-latency")
        # Recover the commit instant: the word became visible between the
        # last two polls; the memory model committed it exactly once.
        return result

    def pio_commit_latency_ns(self, flag_value: int = 0x5151_0001) -> float:
        """Store-to-commit one-way latency, measured without poll noise.

        Uses a zero-interval observation process instead of the driver's
        spin loop, isolating the hardware path the paper's 782 ns
        describes.
        """
        driver = self.driver_a
        offset = 0x200
        target = self.address_map.global_address(
            1, BLOCK_HOST, driver.dma_buffer(offset))
        dram = self.node.dram
        address = driver.dma_buffer(offset)

        start = self.engine.now_ps
        self.node.cpu.store_u32(target, flag_value)

        def until_visible():
            while True:
                word = dram.cpu_read(address, 4)
                if int.from_bytes(word.tobytes(), "little") == flag_value:
                    return self.engine.now_ps
                yield 100  # 0.1 ns resolution: effectively pure path latency

        end = self.engine.run_process(until_visible(), name="observe")
        return (end - start) / 1000.0
