"""Supervised, crash-tolerant job execution for the experiment suite.

PR 2 made the *simulated* hardware fault-tolerant; this module does the
same for the harness that runs it.  Every suite entry becomes a
:class:`Job` moving through an explicit state machine::

    PENDING ──► RUNNING ──► DONE
       ▲           │
       └───────────┤  retry (deadline kill / crash, seeded backoff)
                   ├──► FAILED       (attempts or requeues exhausted)
                   └──► QUARANTINED  (poisoned input, e.g. corrupt cache)

and the pieces around it keep a run alive through the failures the
APEnet+ line of work treats as the norm at cluster scale:

* :class:`JobScheduler` — a worker **supervisor**: fork workers pull
  jobs one at a time over pipes and report heartbeats, job starts and
  completions on a **per-worker** result pipe — no channel is shared
  between workers, so a worker SIGKILLed mid-send can tear only its own
  pipe, never wedge the survivors (a shared ``multiprocessing.Queue``
  dies holding its write lock).  A worker that dies (SIGKILL, OOM) is
  reaped and its in-flight job is requeued on the survivors; a job that
  overruns its **deadline** gets its worker killed and is retried with
  an escalated deadline after a seeded-jitter exponential backoff.
  Payloads travel through atomically-written spill files, never through
  the pipe, so killing a worker can never tear a payload.
* :class:`Journal` — a crash-safe run journal: append-only JSONL
  (schema ``tca-bench-journal/1``), one fsync per record, with a reader
  that tolerates a torn final line.  ``tca-bench suite --resume RUN``
  replays it to re-execute only unfinished entries.
* :class:`JobService` — the in-process, fault-hardened front-end the
  serving layer sits on: submissions deduplicated by content key, hot
  keys answered from the hardened cache, cold ones queued for
  supervised execution.

Determinism is preserved by construction: a job's payload depends only
on ``(entry, mode, seed)`` — per-entry seeds are derived, never shared —
so *where* and *how many times* a job runs cannot change its bytes.
The process-level chaos harness (:mod:`repro.faults.harness_chaos`)
proves it by SIGKILLing workers, forcing deadline overruns and
corrupting cache files mid-run, then asserting byte-identical output.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import shutil
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from repro.bench.ioutil import atomic_write_text, fsync_file
from repro.errors import ConfigError

#: Version tag of each journal record (first field of every line).
JOURNAL_SCHEMA = "tca-bench-journal/1"

# -- the job state machine ------------------------------------------------------------

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

JOB_STATES = (PENDING, RUNNING, DONE, FAILED, QUARANTINED)

#: Legal state transitions; anything else is a supervisor bug.
#: PENDING -> DONE covers cache hits and journal restores, where the
#: result exists before any worker runs.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    PENDING: (RUNNING, DONE, FAILED, QUARANTINED),
    RUNNING: (DONE, FAILED, PENDING, QUARANTINED),  # PENDING = requeue
    DONE: (),
    FAILED: (),
    QUARANTINED: (),
}

#: Retry/backoff defaults.  The backoff exists to spread retries of a
#: systemically-failing job, not to pace healthy runs, so it is short.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0
DEFAULT_MAX_ATTEMPTS = 3
#: Worker deaths are not the job's fault, so they consume requeues (a
#: separate, larger budget) rather than attempts.
DEFAULT_MAX_REQUEUES = 5

#: Deadline defaults: generous multiples of the registry cost hint —
#: deadlines exist to catch *hangs*, not slow machines.
DEADLINE_FLOOR_S = 60.0
DEADLINE_FACTOR = 40.0

#: Supervisor timing.
HEARTBEAT_INTERVAL_S = 0.2
POLL_INTERVAL_S = 0.05


def backoff_delay(seed: int, entry: str, attempt: int,
                  base_s: float = BACKOFF_BASE_S,
                  cap_s: float = BACKOFF_CAP_S) -> float:
    """Seeded-jitter exponential backoff before retry ``attempt``.

    Deterministic in ``(seed, entry, attempt)`` — a resumed or replayed
    run waits exactly as long as the original — and bounded:
    ``0 < delay <= cap_s``.  The jitter keeps simultaneous retries of
    different entries from synchronizing (half the exponential term is
    fixed, half is scaled by a hash-derived uniform draw).
    """
    if attempt < 0:
        raise ConfigError(f"attempt must be >= 0, got {attempt}")
    digest = hashlib.sha256(
        f"backoff:{seed}:{entry}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return min(cap_s, base_s * (2.0 ** attempt)) * (0.5 + 0.5 * jitter)


def backoff_schedule(seed: int, entry: str, attempts: int,
                     base_s: float = BACKOFF_BASE_S,
                     cap_s: float = BACKOFF_CAP_S) -> List[float]:
    """The full deterministic retry schedule for one entry."""
    return [backoff_delay(seed, entry, i, base_s, cap_s)
            for i in range(attempts)]


def default_deadline_s(cost_s: float) -> float:
    """Deadline for an entry with the given registry cost hint."""
    return max(DEADLINE_FLOOR_S, cost_s * DEADLINE_FACTOR)


def lpt_shards(costs: Sequence[float], shards: int,
               tiebreak: Optional[Sequence[Any]] = None) -> List[List[int]]:
    """Deterministic longest-processing-time-first shard assignment.

    Items (identified by index into ``costs``) are assigned to the
    least-loaded shard in decreasing-cost order — the classic LPT
    heuristic, within 4/3 of the optimal makespan.  ``tiebreak`` (any
    per-item sortable key, defaulting to the index itself) makes the
    assignment a pure function of its inputs, so replayed and resumed
    runs shard identically.  Used both by the suite's entry partitioner
    (:func:`repro.bench.suite.partition`) and the multi-engine executor
    (:class:`repro.sim.executor.MultiEngineExecutor`).

    Returns ``shards`` index buckets (clamped to ``len(costs)`` so no
    bucket is empty unless there are no items at all).
    """
    count = len(costs)
    shards = max(1, min(shards, count) if count else 1)
    keys = tiebreak if tiebreak is not None else range(count)
    order = sorted(range(count), key=lambda i: (-costs[i], keys[i]))
    loads = [0.0] * shards
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for i in order:
        target = min(range(shards), key=lambda s: (loads[s], s))
        buckets[target].append(i)
        loads[target] += costs[i]
    return buckets


@dataclass
class Job:
    """One suite entry moving through the supervised state machine."""

    name: str
    eid: str
    key: str
    mode: str
    seed: int
    cost_s: float = 0.1
    deadline_s: float = DEADLINE_FLOOR_S
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    max_requeues: int = DEFAULT_MAX_REQUEUES
    #: Chaos injection: sleep this long before attempt 0 runs (the
    #: harness's "hung experiment").
    hang_s: float = 0.0

    state: str = PENDING
    attempt: int = 0
    requeues: int = 0
    worker: Optional[int] = None
    not_before: float = 0.0        # monotonic instant gating reassignment
    assigned_at: Optional[float] = None
    payload_json: Optional[str] = None
    wall_s: float = 0.0
    start_off_ns: Optional[int] = None
    error: Optional[str] = None

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``; illegal moves are supervisor bugs."""
        if new_state not in TRANSITIONS[self.state]:
            raise ConfigError(
                f"job {self.name}: illegal transition "
                f"{self.state} -> {new_state}")
        self.state = new_state

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, QUARANTINED)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "eid": self.eid,
            "key": self.key,
            "state": self.state,
            "attempt": self.attempt,
            "requeues": self.requeues,
            "worker": self.worker,
            "wall_s": round(self.wall_s, 4),
            "error": self.error,
        }


# -- the crash-safe run journal -------------------------------------------------------

class Journal:
    """Append-only JSONL journal of one suite run, fsync'd per record.

    Line format: one JSON object per line, always carrying ``schema``
    and ``t`` (the record type).  The first record of a run is
    ``t="run"`` with the run header (run id, mode, seed, entry names
    and content keys, fingerprints); job transitions follow as
    ``t="job"``; a completed run ends with ``t="end"``.  ``t="done"``
    records carry the entry's full canonical payload text, so a resume
    can restore finished entries byte-identically even if the result
    cache has been lost or corrupted in the meantime.

    Appends are flushed and fsync'd one line at a time; a crash can
    therefore tear at most the final line, and :meth:`read` skips any
    line that does not parse.

    :meth:`record` is thread-safe: the serving layer appends submit
    records from its event-loop thread while the executor thread
    journals job transitions, and interleaving two half-written lines
    would tear *both* records, not just the crash-prone final one.
    """

    def __init__(self, path: Path, fh=None):
        self.path = Path(path)
        self._fh = fh or open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    # -- writing ---------------------------------------------------------

    @classmethod
    def create(cls, directory: Path, run_id: str,
               **header: Any) -> "Journal":
        """Start a fresh journal for ``run_id`` and write its header."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        journal = cls(cls.path_for(directory, run_id))
        journal.record("run", run_id=run_id, **header)
        return journal

    @classmethod
    def resume(cls, directory: Path, run_id: str) -> "Journal":
        """Reopen an existing journal for appending a resumed run."""
        path = cls.path_for(directory, run_id)
        if not path.exists():
            raise ConfigError(
                f"no journal for run {run_id!r} under {directory} "
                f"(expected {path})")
        journal = cls(path)
        journal.record("resume", run_id=run_id)
        return journal

    @staticmethod
    def path_for(directory: Path, run_id: str) -> Path:
        return Path(directory) / f"{run_id}.jsonl"

    def record(self, t: str, **fields: Any) -> None:
        """Append one fsync'd record; torn tails are the reader's job."""
        doc = {"schema": JOURNAL_SCHEMA, "t": t,
               "ts": round(time.time(), 3), **fields}
        line = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            self._fh.write(line)
            fsync_file(self._fh)

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # -- reading ---------------------------------------------------------

    @staticmethod
    def read(path: Path) -> List[Dict[str, Any]]:
        """Every parseable record, in order; torn/garbage lines skipped."""
        records: List[Dict[str, Any]] = []
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.read().splitlines()
        except FileNotFoundError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue  # torn append (crash mid-write)
            if isinstance(doc, dict) and doc.get("schema") == JOURNAL_SCHEMA:
                records.append(doc)
        return records

    @staticmethod
    def replay(records: Sequence[Dict[str, Any]]
               ) -> Tuple[Optional[Dict[str, Any]], Dict[str, str]]:
        """Fold a journal into (run header, finished name->payload_json).

        Only ``done`` records with an embedded payload count as
        finished — a job journalled as running when the process died is
        unfinished by definition and will be re-executed on resume.
        """
        header: Optional[Dict[str, Any]] = None
        done: Dict[str, str] = {}
        for rec in records:
            t = rec.get("t")
            if t == "run" and header is None:
                header = rec
            elif t == "job" and rec.get("state") == DONE:
                payload = rec.get("payload_json")
                if isinstance(payload, str):
                    done[rec["name"]] = payload
        return header, done


def new_run_id(mode: str, seed: int) -> str:
    """A human-sortable, collision-resistant run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    entropy = hashlib.sha256(os.urandom(16)).hexdigest()[:6]
    return f"{stamp}-{mode}-s{seed}-{os.getpid():x}{entropy}"


# -- the worker supervisor ------------------------------------------------------------

def _worker_main(wid: int, conn, results, runner, spill_dir: str,
                 origin_ns: Optional[int],
                 heartbeat_s: float) -> None:  # pragma: no cover - child
    """Worker body: pull jobs off the pipe, spill payloads, report back.

    Runs in a forked child.  The parent owns interrupt handling, so
    SIGINT is ignored here (SIGTERM keeps its default: die promptly
    when the supervisor shuts the pool down).  ``results`` is this
    worker's **private** pipe to the supervisor: all messages on it are
    small fixed tuples — payloads go through atomically written spill
    files — and nothing is shared with sibling workers, so dying
    mid-send can tear at most this one channel.  The send lock only
    arbitrates between this process's main and heartbeat threads.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    stop = threading.Event()
    send_lock = threading.Lock()

    def send(msg: Tuple) -> None:
        with send_lock:
            results.send(msg)

    def heartbeat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                send(("hb", wid))
            except Exception:
                return

    threading.Thread(target=heartbeat, daemon=True).start()

    def offset() -> Optional[int]:
        if origin_ns is None:
            return None
        return time.perf_counter_ns() - origin_ns

    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            name, mode, seed, attempt, hang_s = task
            send(("start", wid, name, attempt, os.getpid(), offset()))
            if hang_s > 0:
                time.sleep(hang_s)  # chaos: a hung experiment
            try:
                payload, wall = runner(name, mode, seed)
            except Exception as exc:
                send(("error", wid, name, attempt,
                      f"{type(exc).__name__}: {exc}"))
                continue
            spill = Path(spill_dir) / f"{name}.{attempt}.json"
            atomic_write_text(spill, payload)
            send(("done", wid, name, attempt, wall, offset()))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # supervisor gone or shutting down: exit quietly
    finally:
        stop.set()


@dataclass
class _WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    index: int
    process: Any
    conn: Any
    results: Any = None
    #: Set when a recv on ``results`` failed (EOF or torn message);
    #: the supervisor stops waiting on the channel but keeps the handle
    #: pooled so the liveness check can do worker-lost accounting.
    results_dead: bool = False
    job: Optional[Job] = None
    last_seen: float = field(default_factory=time.monotonic)
    entries: List[str] = field(default_factory=list)
    first_busy: Optional[float] = None
    last_done: Optional[float] = None
    # Runlog-relative offsets (ns since the parent's origin), when on.
    first_start_off_ns: Optional[int] = None
    last_done_off_ns: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def wall_s(self) -> float:
        if self.first_busy is None:
            return 0.0
        end = self.last_done if self.last_done is not None \
            else time.monotonic()
        return max(0.0, end - self.first_busy)


@dataclass
class SchedulerOutcome:
    """Everything one supervised pool run produced."""

    jobs: List[Job]
    worker_walls: List[Dict[str, Any]] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return (not self.interrupted
                and all(j.state == DONE for j in self.jobs))


#: Counter names the scheduler maintains (all always present, zeroed).
COUNTER_NAMES = ("retries", "requeues", "deadline_kills", "workers_lost",
                 "workers_spawned", "heartbeat_kills", "spill_recoveries",
                 "stale_messages", "heartbeats")

#: Supervisor events that also land in the journal (job state records
#: go through their own ``t="job"`` lines).
_JOURNALED_EVENTS = frozenset({"worker-spawn", "worker-kill",
                               "worker-lost", "deadline-kill",
                               "heartbeat-kill", "interrupt"})


class JobScheduler:
    """Supervise a pool of fork workers over a set of :class:`Job`\\ s.

    Pull scheduling subsumes static sharding: eligible pending jobs are
    kept in LPT order (largest cost hint first) and handed to whichever
    worker is idle, so when a worker dies the remainder is re-shared
    across the survivors automatically — the LPT re-shard of what is
    left.  A fresh worker is spawned only when the pool would otherwise
    be empty.
    """

    def __init__(self, jobs: Sequence[Job],
                 runner: Callable[[str, str, int], Tuple[str, float]],
                 workers: int = 2,
                 journal: Optional[Journal] = None,
                 runlog=None,
                 on_event: Optional[Callable[[str, Dict[str, Any]],
                                             None]] = None,
                 heartbeat_s: float = HEARTBEAT_INTERVAL_S,
                 poll_s: float = POLL_INTERVAL_S):
        self.jobs = list(jobs)
        self.runner = runner
        self.workers = max(1, workers)
        self.journal = journal
        self.runlog = runlog
        self.on_event = on_event
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.counters: Dict[str, int] = {n: 0 for n in COUNTER_NAMES}
        self._by_name = {job.name: job for job in self.jobs}
        self._pool: Dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        self._spill_dir: Optional[Path] = None
        self._retired: List[_WorkerHandle] = []

    # -- event plumbing --------------------------------------------------

    def _emit(self, kind: str, **info: Any) -> None:
        if self.journal is not None and kind in _JOURNALED_EVENTS:
            self.journal.record(kind, **info)
        if self.on_event is not None:
            self.on_event(kind, info)

    def _journal_job(self, job: Job, **extra: Any) -> None:
        if self.journal is None:
            return
        info = {"name": job.name, "state": job.state,
                "attempt": job.attempt, "requeues": job.requeues,
                "worker": job.worker, **extra}
        if job.state == DONE:
            info["payload_json"] = job.payload_json
            info["wall_s"] = round(job.wall_s, 4)
        if job.error:
            info["error"] = job.error
        self.journal.record("job", **info)

    def _log_instant(self, kind: str, **detail: Any) -> None:
        if self.runlog is not None:
            self.runlog.event("jobs", kind, **detail)

    # -- pool management -------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        wid = self._next_wid
        self._next_wid += 1
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        res_recv, res_send = self._ctx.Pipe(duplex=False)
        origin_ns = None if self.runlog is None else self.runlog.origin_ns
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, recv_conn, res_send, self.runner,
                  str(self._spill_dir), origin_ns, self.heartbeat_s),
            daemon=True)
        proc.start()
        recv_conn.close()  # child's ends; parent keeps send (tasks)
        res_send.close()   # and recv (results) — so death means EOF
        handle = _WorkerHandle(index=wid, process=proc, conn=send_conn,
                               results=res_recv)
        self._pool[wid] = handle
        self.counters["workers_spawned"] += 1
        self._emit("worker-spawn", worker=wid, pid=proc.pid)
        self._log_instant("worker-spawn", worker=wid)
        return handle

    def _retire(self, handle: _WorkerHandle) -> None:
        self._pool.pop(handle.index, None)
        self._retired.append(handle)
        for conn in (handle.conn, handle.results):
            try:
                conn.close()
            except OSError:
                pass

    def _kill_worker(self, handle: _WorkerHandle, reason: str) -> None:
        self._emit("worker-kill", worker=handle.index, reason=reason)
        try:
            if handle.process.pid is not None:
                os.kill(handle.process.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        handle.process.join(timeout=5.0)
        self._retire(handle)

    def _shutdown(self, kill: bool = False) -> None:
        for handle in list(self._pool.values()):
            if kill:
                self._kill_worker(handle, "shutdown")
                continue
            try:
                handle.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for handle in list(self._pool.values()):
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                self._kill_worker(handle, "shutdown-timeout")
            else:
                self._retire(handle)

    # -- job lifecycle ---------------------------------------------------

    def _eligible(self, now: float) -> List[Job]:
        ready = [j for j in self.jobs
                 if j.state == PENDING and j.not_before <= now]
        return sorted(ready, key=lambda j: (-j.cost_s, j.name))

    def _assign(self, now: float) -> None:
        idle = [h for h in self._pool.values()
                if h.job is None and h.alive]
        for handle in idle:
            ready = self._eligible(now)
            if not ready:
                return
            job = ready[0]
            hang = job.hang_s if job.attempt == 0 else 0.0
            try:
                handle.conn.send((job.name, job.mode, job.seed,
                                  job.attempt, hang))
            except (OSError, BrokenPipeError):
                continue  # liveness check will reap it
            job.transition(RUNNING)
            job.worker = handle.index
            job.assigned_at = now
            handle.job = job
            if handle.first_busy is None:
                handle.first_busy = now

    def _requeue(self, job: Job, why: str, burn_attempt: bool) -> None:
        """Put a running job back in the queue (or fail it for good)."""
        now = time.monotonic()
        if burn_attempt:
            job.attempt += 1
            exhausted = job.attempt >= job.max_attempts
            budget = f"{job.max_attempts} attempts"
            self.counters["retries"] += 1
        else:
            job.requeues += 1
            exhausted = job.requeues > job.max_requeues
            budget = f"{job.max_requeues} requeues"
            self.counters["requeues"] += 1
        job.worker = None
        job.assigned_at = None
        if exhausted:
            job.error = f"{why}; budget exhausted ({budget})"
            job.transition(FAILED)
            self._journal_job(job, reason=why)
            self._log_instant("job-failed", entry=job.name, reason=why)
            self._emit("job-failed", name=job.name, reason=why)
            return
        delay = backoff_delay(job.seed, job.name,
                              job.attempt if burn_attempt else job.requeues)
        job.not_before = now + delay
        if burn_attempt:
            job.deadline_s *= 2.0  # escalate: a slow entry gets room
        job.transition(PENDING)
        self._journal_job(job, reason=why, backoff_s=round(delay, 4))
        self._log_instant("job-requeue", entry=job.name, reason=why,
                          backoff_ms=round(delay * 1000, 1))

    def _recover_from_spill(self, job: Job) -> bool:
        """A dead worker may have finished the job before dying: the
        spill file is written atomically *before* the done message, so
        if it exists and holds valid JSON the result is usable."""
        spill = self._spill_dir / f"{job.name}.{job.attempt}.json"
        try:
            payload = spill.read_text(encoding="utf-8")
            json.loads(payload)
        except (OSError, ValueError):
            return False
        self._finish(job, payload, wall_s=0.0, start_off_ns=None)
        self.counters["spill_recoveries"] += 1
        return True

    def _finish(self, job: Job, payload: str, wall_s: float,
                start_off_ns: Optional[int]) -> None:
        job.payload_json = payload
        job.wall_s = wall_s
        job.start_off_ns = start_off_ns
        job.transition(DONE)
        self._journal_job(job)
        if (self.runlog is not None and start_off_ns is not None):
            self.runlog.add_span(f"shard{job.worker}", "entry",
                                 start_off_ns * 1000,
                                 int(wall_s * 1e12), entry=job.name,
                                 attempt=job.attempt)
        self._emit("job-done", name=job.name, worker=job.worker,
                   attempt=job.attempt)

    # -- supervisor loop -------------------------------------------------

    def _handle_message(self, msg: Tuple) -> None:
        kind, wid = msg[0], msg[1]
        handle = self._pool.get(wid)
        if handle is not None:
            handle.last_seen = time.monotonic()
        if kind == "hb":
            self.counters["heartbeats"] += 1
            return
        name, attempt = msg[2], msg[3]
        job = self._by_name.get(name)
        stale = (job is None or handle is None or job.worker != wid
                 or job.attempt != attempt or job.state != RUNNING)
        if stale:
            self.counters["stale_messages"] += 1
            return
        if kind == "start":
            pid, off_ns = msg[4], msg[5]
            job.start_off_ns = off_ns
            if off_ns is not None and handle.first_start_off_ns is None:
                handle.first_start_off_ns = off_ns
            self._journal_job(job, pid=pid)
            self._log_instant("job-start", entry=job.name, worker=wid,
                              attempt=attempt)
            self._emit("job-start", name=name, worker=wid, pid=pid,
                       attempt=attempt)
        elif kind == "done":
            wall, done_off_ns = msg[4], msg[5]
            if done_off_ns is not None:
                handle.last_done_off_ns = done_off_ns
            spill = self._spill_dir / f"{name}.{attempt}.json"
            try:
                payload = spill.read_text(encoding="utf-8")
            except OSError:
                # Spill vanished (should not happen): treat as a crash.
                self._requeue(job, "spill file missing", burn_attempt=True)
                handle.job = None
                return
            self._finish(job, payload, wall, job.start_off_ns)
            handle.entries.append(name)
            handle.last_done = time.monotonic()
            handle.job = None
        elif kind == "error":
            error = msg[4]
            job.error = error
            self._requeue(job, f"attempt raised: {error}",
                          burn_attempt=True)
            self._log_instant("job-error", entry=name, error=error)
            self._emit("job-error", name=name, error=error)
            handle.job = None

    def _check_deadlines(self, now: float) -> None:
        for handle in list(self._pool.values()):
            job = handle.job
            if job is None or job.assigned_at is None:
                continue
            if now - job.assigned_at <= job.deadline_s:
                continue
            self.counters["deadline_kills"] += 1
            self._log_instant("deadline-kill", entry=job.name,
                              worker=handle.index,
                              deadline_s=job.deadline_s)
            self._emit("deadline-kill", name=job.name,
                       worker=handle.index, deadline_s=job.deadline_s)
            handle.job = None
            self._kill_worker(handle, f"deadline: {job.name}")
            self._requeue(job, f"deadline {job.deadline_s:g}s exceeded",
                          burn_attempt=True)

    def _check_liveness(self, now: float) -> None:
        hb_timeout = max(2.0, 20 * self.heartbeat_s)
        for handle in list(self._pool.values()):
            if handle.alive:
                # Heartbeats gone silent on an *assigned* worker long
                # before its job's deadline means the worker wedged
                # without ever starting (e.g. stuck in the pipe).  The
                # deadline check owns jobs that started and hung.
                if (handle.job is not None
                        and now - handle.last_seen > hb_timeout):
                    job = handle.job
                    handle.job = None
                    self.counters["heartbeat_kills"] += 1
                    self._emit("heartbeat-kill", worker=handle.index,
                               name=job.name)
                    self._log_instant("heartbeat-kill",
                                      worker=handle.index, entry=job.name)
                    self._kill_worker(handle,
                                      f"heartbeat lost: {job.name}")
                    self._requeue(job, "worker heartbeat lost",
                                  burn_attempt=False)
                continue
            # Process died under us (SIGKILL, OOM, crash).
            job = handle.job
            handle.job = None
            self._retire(handle)
            self.counters["workers_lost"] += 1
            self._log_instant("worker-lost", worker=handle.index,
                              exitcode=handle.process.exitcode)
            self._emit("worker-lost", worker=handle.index,
                       exitcode=handle.process.exitcode,
                       name=job.name if job else None)
            if job is not None and not self._recover_from_spill(job):
                self._requeue(job, f"worker {handle.index} died "
                              f"(exit {handle.process.exitcode})",
                              burn_attempt=False)

    def _drain_results(self) -> None:
        """Wait up to ``poll_s`` on the per-worker result pipes and
        handle everything that arrived.  A recv that fails — EOF after
        a death, or a message torn by a SIGKILL landing mid-send —
        poisons only that worker's own channel: mark it dead, make sure
        the process is too, and leave the handle pooled so the liveness
        check does the worker-lost accounting and requeue.  (A shared
        result queue would instead die holding its write lock and wedge
        every survivor.)"""
        conns = {h.results: h for h in self._pool.values()
                 if not h.results_dead}
        if not conns:
            time.sleep(self.poll_s)
            return
        ready = multiprocessing.connection.wait(list(conns),
                                                timeout=self.poll_s)
        for rconn in ready:
            handle = conns[rconn]
            msgs: List[Tuple] = []
            try:
                while rconn.poll():
                    msgs.append(rconn.recv())
            except Exception:
                handle.results_dead = True
                try:
                    if handle.process.pid is not None:
                        os.kill(handle.process.pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
            for msg in msgs:
                self._handle_message(msg)

    def _unfinished(self) -> List[Job]:
        return [j for j in self.jobs if not j.finished]

    def run(self) -> SchedulerOutcome:
        """Drive the pool until every job is DONE/FAILED (or interrupt)."""
        outcome = SchedulerOutcome(jobs=self.jobs, counters=self.counters)
        if not self.jobs:
            return outcome
        self._spill_dir = Path(tempfile.mkdtemp(prefix="tca-bench-jobs-"))
        target = min(self.workers, len(self.jobs))
        try:
            for _ in range(target):
                self._spawn_worker()
            while self._unfinished():
                now = time.monotonic()
                if not self._pool:
                    # Pool drained (deaths/kills): LPT re-shard of the
                    # remainder needs at least one survivor.
                    self._spawn_worker()
                self._assign(now)
                self._drain_results()
                now = time.monotonic()
                self._check_deadlines(now)
                self._check_liveness(now)
            self._shutdown()
        except KeyboardInterrupt:
            outcome.interrupted = True
            self._emit("interrupt",
                       unfinished=[j.name for j in self._unfinished()])
            self._shutdown(kill=True)
        finally:
            for handle in list(self._pool.values()):
                self._retire(handle)
            if self._spill_dir is not None:
                shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._flush_runlog_counters()
        workers = sorted(self._retired, key=lambda h: h.index)
        outcome.worker_walls = [
            {"shard": h.index, "entries": h.entries,
             "wall_s": round(h.wall_s, 4)}
            for h in workers if h.entries or h.first_busy is not None]
        if self.runlog is not None:
            for h in workers:
                if (h.first_start_off_ns is None
                        or h.last_done_off_ns is None):
                    continue
                self.runlog.add_span(
                    f"shard{h.index}", "shard",
                    h.first_start_off_ns * 1000,
                    (h.last_done_off_ns - h.first_start_off_ns) * 1000,
                    entries=len(h.entries))
        return outcome

    def _flush_runlog_counters(self) -> None:
        if self.runlog is None:
            return
        for name, value in self.counters.items():
            if value:
                self.runlog.metrics.counter(f"suite.jobs.{name}").inc(value)


def run_job_inline(job: Job,
                   runner: Callable[[str, str, int], Tuple[str, float]],
                   journal: Optional[Journal] = None,
                   on_event: Optional[Callable] = None,
                   sleep: Callable[[float], None] = time.sleep) -> Job:
    """Single-process execution of one job with the same retry contract.

    Used by the one-shard suite path and the :class:`JobService` when no
    worker pool is wanted.  Deadlines cannot be enforced without a
    supervisor process, so only the exception-retry half of the state
    machine applies here.
    """
    def emit(t: str, **info: Any) -> None:
        if journal is not None:
            journal.record(t, **info)
        if on_event is not None:
            on_event(t, info)

    while not job.finished:
        job.transition(RUNNING)
        emit("job", name=job.name, state=RUNNING, attempt=job.attempt,
             requeues=job.requeues, worker=None)
        try:
            payload, wall = runner(job.name, job.mode, job.seed)
        except KeyboardInterrupt:
            job.transition(PENDING)
            raise
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.attempt += 1
            if job.attempt >= job.max_attempts:
                job.transition(FAILED)
                emit("job", name=job.name, state=FAILED,
                     attempt=job.attempt, requeues=job.requeues,
                     worker=None, error=job.error)
                return job
            delay = backoff_delay(job.seed, job.name, job.attempt)
            job.transition(PENDING)
            emit("job", name=job.name, state=PENDING,
                 attempt=job.attempt, requeues=job.requeues, worker=None,
                 reason=job.error, backoff_s=round(delay, 4))
            sleep(delay)
            continue
        job.payload_json = payload
        job.wall_s = wall
        job.error = None
        job.transition(DONE)
        emit("job", name=job.name, state=DONE, attempt=job.attempt,
             requeues=job.requeues, worker=None, payload_json=payload,
             wall_s=round(wall, 4))
    return job


# -- the in-process job service front-end ---------------------------------------------

class JobService:
    """Fault-hardened, deduplicating front-end over the suite machinery.

    The substrate the serving layer (ROADMAP item 3) sits on: callers
    :meth:`submit` experiment jobs and get back a **content key** — the
    same key the result cache uses — so identical submissions collapse
    onto one job and a key whose result is already cached is DONE
    immediately, served from the hardened store in microseconds.  Cold
    keys queue until :meth:`run_pending` drives them through the
    supervised scheduler (or the inline runner for ``workers=1``).

    Every failure mode below the service — worker death, deadline
    overrun, corrupt cache entry — is absorbed by the layers this
    module provides; a submitted job can end only DONE or FAILED, never
    take the service down.

    **Thread safety.**  The bookkeeping methods — :meth:`submit`,
    :meth:`status`, :meth:`result`, :meth:`result_text`, :meth:`jobs`,
    :meth:`counts` — are safe to call from any thread: an internal lock
    serializes mutations of the job table, so the HTTP serving layer
    (:mod:`repro.serve`) can submit from its event-loop thread while an
    executor thread drives :meth:`run_pending` (or runs individual jobs
    via :func:`run_job_inline`).  A job's *state* may still advance
    between a ``status`` call and the next — snapshots are consistent,
    not frozen.  :meth:`run_pending` itself holds the lock only while
    selecting pending jobs and writing back results, never while an
    experiment runs.
    """

    def __init__(self, cache=None, workers: int = 1, seed: int = 0,
                 journal: Optional[Journal] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        from repro.bench.cache import sources_fingerprint
        from repro.model.anchors import calibration_fingerprint

        self.cache = cache
        self.workers = max(1, workers)
        self.seed = seed
        self.journal = journal
        self.max_attempts = max_attempts
        self._calib_fp = calibration_fingerprint()
        self._sources_fp = sources_fingerprint()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.RLock()

    # -- submission ------------------------------------------------------

    def submit(self, entry: str, mode: str = "full",
               seed: Optional[int] = None) -> str:
        """Queue one experiment; returns its job id (the content key).

        Safe to call from any thread; identical submissions from racing
        threads collapse onto one job.
        """
        from repro.bench.cache import cache_key
        from repro.bench.experiments import REGISTRY

        if entry not in REGISTRY:
            raise ConfigError(f"unknown registry entry {entry!r}")
        spec = REGISTRY[entry]
        seed = self.seed if seed is None else seed
        key = cache_key(entry, spec.params_for(mode), self._calib_fp,
                        self._sources_fp, seed)
        with self._lock:
            if key in self._jobs:
                return key  # deduplicated: same submission, same job
            job = Job(name=entry, eid=spec.eid, key=key, mode=mode,
                      seed=seed, cost_s=spec.cost_s,
                      deadline_s=default_deadline_s(spec.cost_s),
                      max_attempts=self.max_attempts)
            if self.cache is not None:
                hit = self.cache.get(key)
                if hit is not None:
                    job.payload_json = hit
                    job.transition(DONE)
            self._jobs[key] = job
            self._order.append(key)
        if self.journal is not None:
            self.journal.record("submit", name=entry, key=key, mode=mode,
                                seed=seed, state=job.state)
        return key

    # -- lookup ----------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigError(f"unknown job id {job_id!r}")
        return job

    def get_job(self, job_id: str) -> Job:
        """The live :class:`Job` for one id (the serving layer's view)."""
        return self._job(job_id)

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._jobs

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's current state-machine snapshot."""
        return self._job(job_id).to_dict()

    def result(self, job_id: str) -> Any:
        """The decoded payload of a DONE job; errors otherwise."""
        return json.loads(self.result_text(job_id))

    def result_text(self, job_id: str) -> str:
        """The *canonical payload text* of a DONE job, verbatim.

        This is the byte-identity contract the serving layer depends
        on: the text returned here is exactly what the suite/cache
        stored, so two clients asking for the same fingerprint receive
        byte-identical documents.
        """
        job = self._job(job_id)
        if job.state != DONE:
            raise ConfigError(
                f"job {job_id[:12]} is {job.state}, not done"
                + (f" ({job.error})" if job.error else ""))
        return job.payload_json

    def jobs(self) -> List[Dict[str, Any]]:
        """Every known job, in submission order."""
        with self._lock:
            return [self._jobs[k].to_dict() for k in self._order]

    def counts(self) -> Dict[str, int]:
        """How many known jobs sit in each state right now."""
        counts: Dict[str, int] = {state: 0 for state in JOB_STATES}
        with self._lock:
            for key in self._order:
                counts[self._jobs[key].state] += 1
        return counts

    # -- execution -------------------------------------------------------

    def store_result(self, job: Job) -> None:
        """Write one DONE job's payload back to the result cache."""
        if self.cache is not None and job.state == DONE:
            with self._lock:
                self.cache.put(job.key, job.name, job.payload_json,
                               meta={"mode": job.mode, "seed": job.seed})

    def run_pending(self, on_event: Optional[Callable] = None
                    ) -> Dict[str, int]:
        """Execute every queued job; returns state counts when done."""
        with self._lock:
            pending = [self._jobs[k] for k in self._order
                       if self._jobs[k].state == PENDING]
        if pending:
            runner = _registry_runner
            if self.workers > 1:
                scheduler = JobScheduler(pending, runner,
                                         workers=self.workers,
                                         journal=self.journal,
                                         on_event=on_event)
                scheduler.run()
            else:
                for job in pending:
                    run_job_inline(job, runner, journal=self.journal,
                                   on_event=on_event)
            for job in pending:
                self.store_result(job)
        return self.counts()


def _registry_runner(name: str, mode: str, seed: int) -> Tuple[str, float]:
    """Module-level (hence spawn-picklable) bridge to the suite runner."""
    from repro.bench.suite import run_entry

    return run_entry(name, mode, seed)
