"""Crash-safe file I/O shared by the cache, the journal, and the CLI.

Every artifact the bench layer writes — cache entries, conformance
reports, regenerated EXPERIMENTS.md tables, benchmark documents, the
dashboard — goes through :func:`atomic_write_text`: the bytes land in a
same-directory temporary file, are flushed and ``fsync``'d, and only
then renamed over the destination.  A reader (or a resumed run) can
therefore never observe a torn file: it sees either the complete old
content or the complete new content, even if the writer is SIGKILLed
mid-write (``tests/bench/test_suite_robustness.py`` kills a writer to
pin this).

Append-only files (the run journal, perf history) cannot use
rename-replace; they get :func:`fsync_file` per record plus a reader
that tolerates a torn final line.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]


def fsync_file(fh) -> None:
    """Flush python buffers and force the file's bytes to disk."""
    fh.flush()
    os.fsync(fh.fileno())


def fsync_dir(path: PathLike) -> None:
    """Force a directory entry (a rename) to disk; no-op where unsupported."""
    with contextlib.suppress(OSError):
        fd = os.open(str(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temporary file lives in the destination directory (same
    filesystem, so ``os.replace`` is an atomic rename) and is fsync'd
    before the rename; the directory is fsync'd after, so the rename
    itself survives a crash.  On any failure the temporary is removed
    and the destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent,
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as fh:
            fh.write(text)
            fsync_file(fh)
        os.replace(tmp, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_json(path: PathLike, doc: object,
                      indent: Optional[int] = 2) -> Path:
    """Atomically write one JSON document (trailing newline included)."""
    return atomic_write_text(path, json.dumps(doc, indent=indent) + "\n")
