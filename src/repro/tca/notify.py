"""Flag-based completion notification over TCA puts.

PEACH2 has no remote-completion message: a receiver learns that a put
arrived because PCIe posted writes on one path stay ordered, so a small
*flag* store issued after the payload cannot pass it (§III-F's PIO model;
the paper's own latency experiment polls exactly this way).

:class:`FlagPool` manages a region of flag words in a node's DMA buffer:
senders get the flag's TCA-global address, receivers wait on monotonic
sequence numbers.  This is the synchronization idiom all the mini-apps
use, factored out.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster

#: Bytes reserved per flag word (cache-line spaced to avoid false sharing).
FLAG_STRIDE = 64


class FlagPool:
    """Per-node flag words carved from the top of each DMA buffer."""

    def __init__(self, cluster: TCASubCluster, comm: TCAComm,
                 num_flags: int = 64):
        if num_flags < 1:
            raise ConfigError("need at least one flag")
        self.cluster = cluster
        self.comm = comm
        self.num_flags = num_flags
        self.region_bytes = num_flags * FLAG_STRIDE
        # Offsets inside each node's DMA buffer, just below the usable top.
        self._base: Dict[int, int] = {}
        for node_id in range(cluster.num_nodes):
            driver = cluster.driver(node_id)
            base = driver.usable_dma_bytes - self.region_bytes
            if base < 0:
                raise ConfigError("DMA buffer too small for the flag pool")
            self._base[node_id] = base
        self._sequence: Dict[Tuple[int, int], int] = {}

    def _offset(self, node_id: int, flag: int) -> int:
        if not 0 <= flag < self.num_flags:
            raise ConfigError(f"flag {flag} out of range")
        return self._base[node_id] + flag * FLAG_STRIDE

    def global_address(self, node_id: int, flag: int) -> int:
        """TCA-global address a *sender* stores the sequence number to."""
        driver = self.cluster.driver(node_id)
        return self.comm.host_global(
            node_id, driver.dma_buffer(self._offset(node_id, flag)))

    def next_sequence(self, node_id: int, flag: int) -> int:
        """Sender side: the value to store for this notification."""
        key = (node_id, flag)
        self._sequence[key] = self._sequence.get(key, 0) + 1
        return self._sequence[key]

    def signal(self, src_node: int, dst_node: int, flag: int) -> int:
        """Store the next sequence number into the destination's flag.

        Issue this *after* the payload put on the same path; PCIe ordering
        makes the flag arrive last.  Returns the sequence stored.
        """
        sequence = self.next_sequence(dst_node, flag)
        self.cluster.node(src_node).cpu.store_u32(
            self.global_address(dst_node, flag), sequence)
        return sequence

    def wait(self, node_id: int, flag: int, sequence: int):
        """Process: poll the local flag until it reaches ``sequence``."""
        driver = self.cluster.driver(node_id)
        offset = self._offset(node_id, flag)
        poll = self.cluster.node(node_id).params.calib.driver_poll_interval_ps
        while True:
            word = driver.read_dma_buffer(offset, 4)
            if int.from_bytes(word.tobytes(), "little") >= sequence:
                return self.cluster.node(node_id).cpu.read_tsc()
            yield poll
