"""The TCA layer: address map, topologies, sub-cluster assembly, comm API.

This is the paper's contribution proper: a sub-cluster of 8-16 nodes whose
PEACH2 boards extend the PCIe address domain across nodes (§II-B, §III-E),
plus the CUDA-like communication interface of §III-H.
"""

from repro.tca.address_map import TCAAddressMap, BLOCK_GPU0, BLOCK_GPU1, \
    BLOCK_HOST, BLOCK_INTERNAL
from repro.tca.topology import ring_route_entries, dual_ring_route_entries, \
    ring_hop_count
from repro.tca.subcluster import TCASubCluster
from repro.tca.comm import TCAComm
from repro.tca.hybrid import HybridCluster, HybridComm

__all__ = [
    "TCAAddressMap",
    "BLOCK_GPU0",
    "BLOCK_GPU1",
    "BLOCK_HOST",
    "BLOCK_INTERNAL",
    "ring_route_entries",
    "dual_ring_route_entries",
    "ring_hop_count",
    "TCASubCluster",
    "TCAComm",
    "HybridCluster",
    "HybridComm",
]
