"""User-level TCA communication (§III-H).

The paper's programming interface is "based on the CUDA parallel
programming environment": the user names a *target node ID* plus a device
(GPU ID / host), and the library does a direct put over the extended PCIe
address domain.  Three transports are provided:

* **PIO put** — plain stores into the mmapped TCA window; best latency
  for short messages (§III-F1);
* **DMA put** — the current two-phase DMAC: a fenced chain that first
  DMA-reads the local source into PEACH2's internal memory, then DMA-writes
  it to the remote destination (§IV-B2);
* **pipelined DMA put** — the next-generation DMAC that does both phases
  simultaneously (the paper's announced follow-up work).

Block-stride transfers (§III-H) map naturally onto chained descriptors.

These are the point-to-point primitives.  Collective operations built on
top of them — allgather, reduce-scatter, allreduce, broadcast, barrier,
with multi-channel DMA overlap — live in :mod:`repro.collectives`
(entry points ``TCACollectives`` and the ``ring_*`` one-shot helpers);
see ``docs/collectives.md``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cuda.pointer import (CU_POINTER_ATTRIBUTE_P2P_TOKENS, DevicePtr)
from repro.errors import ConfigError, DMAError
from repro.peach2.descriptor import DescriptorFlags, DMADescriptor
from repro.tca.address_map import (BLOCK_GPU0, BLOCK_GPU1, BLOCK_HOST,
                                   BLOCK_INTERNAL, TCAAddressMap)
from repro.tca.subcluster import TCASubCluster
from repro.units import MiB

#: Offset inside PEACH2 internal memory used as the DMA staging area.
STAGING_OFFSET = 1 * MiB
STAGING_BYTES = 8 * MiB

GPU_BLOCKS = (BLOCK_GPU0, BLOCK_GPU1)


class TCAComm:
    """Communication endpoints over one sub-cluster."""

    def __init__(self, cluster: TCASubCluster):
        self.cluster = cluster
        self.engine = cluster.engine
        self.address_map: TCAAddressMap = cluster.address_map

    # -- addressing -------------------------------------------------------------

    def host_global(self, node_id: int, offset: int) -> int:
        """TCA-global address of a host-memory byte on ``node_id``."""
        return self.address_map.global_address(node_id, BLOCK_HOST, offset)

    def gpu_global(self, node_id: int, gpu_index: int, offset: int) -> int:
        """TCA-global address of GPU memory on ``node_id`` (GPU 0 or 1)."""
        if gpu_index not in (0, 1):
            raise ConfigError("TCA reaches only GPU0/GPU1 (QPI P2P is "
                              "prohibited, §III-C)")
        return self.address_map.global_address(node_id, GPU_BLOCKS[gpu_index],
                                               offset)

    def internal_global(self, node_id: int, offset: int) -> int:
        """TCA-global address of PEACH2 internal memory on ``node_id``."""
        return self.address_map.global_address(node_id, BLOCK_INTERNAL,
                                               offset)

    def register_gpu_memory(self, node_id: int, ptr: DevicePtr) -> int:
        """Pin a CUDA allocation for RDMA; returns its TCA-global address.

        Performs §IV-A2's steps 2-3: fetch the P2P token, hand it to the
        P2P driver, pin the pages into the BAR.
        """
        cuda = self.cluster.cuda[node_id]
        node = self.cluster.node(node_id)
        gpu_index = node.gpus.index(ptr.gpu)
        token = cuda.cu_pointer_get_attribute(
            CU_POINTER_ATTRIBUTE_P2P_TOKENS, ptr)
        self.cluster.p2p.pin(ptr.gpu, token, ptr.offset, ptr.nbytes)
        return self.gpu_global(node_id, gpu_index, ptr.offset)

    # -- PIO put ------------------------------------------------------------------

    def put_pio(self, src_node: int, dst_global: int,
                data: np.ndarray) -> None:
        """RDMA-put by CPU stores through the mmapped window (§III-F1).

        Issues one posted store per 8 bytes (a CPU cannot burst-write an
        uncached mapping); returns once the stores are posted — remote
        completion is observed by polling or a flag (see put_pio_flagged).
        """
        cpu = self.cluster.node(src_node).cpu
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if self.engine.tracer is not None:
            self.engine.trace("tca.comm", "tca-put", transport="pio",
                              src_node=src_node, bytes=len(data))
        for start in range(0, len(data), 8):
            cpu.store(dst_global + start, data[start:start + 8])

    def put_pio_timed(self, src_node: int, dst_global: int,
                      data: np.ndarray):
        """Process: PIO put paced by the CPU's write-combining cadence.

        This is the honest streaming model for multi-cache-line PIO
        (64-byte coalesced posted writes every WC drain interval); use it
        for bandwidth measurements.  Returns the issue-side elapsed ps.
        """
        cpu = self.cluster.node(src_node).cpu
        calib = self.cluster.node(src_node).params.calib
        start = self.engine.now_ps
        yield self.engine.process(cpu.store_stream(
            dst_global, data, calib.pio_wc_buffer_bytes,
            calib.pio_wc_drain_gap_ps), name="pio-stream")
        return self.engine.now_ps - start

    def put_pio_flagged(self, src_node: int, dst_global: int,
                        data: np.ndarray, flag_global: int,
                        flag_value: int) -> None:
        """PIO put followed by a 4-byte flag store.

        PCIe posted writes stay ordered on a path, so the flag cannot pass
        the payload — the receiver polls the flag, then reads the data.
        """
        self.put_pio(src_node, dst_global, data)
        self.cluster.node(src_node).cpu.store_u32(flag_global, flag_value)

    # -- DMA put --------------------------------------------------------------------

    def _staging_bus(self, node_id: int) -> int:
        chip = self.cluster.board(node_id).chip
        return chip.bar2.base + STAGING_OFFSET

    def put_dma_descriptors(self, src_node: int, src_local: int,
                            dst_global: int, nbytes: int
                            ) -> List[DMADescriptor]:
        """Two-phase descriptor chain for one remote put (§IV-B2).

        Phase 1 DMA-reads the local source into internal memory; phase 2
        (FENCEd so it sees complete data) DMA-writes it to the remote
        destination.  Transfers bigger than the staging area become
        multiple fenced pairs in one chain.
        """
        if nbytes <= 0:
            raise DMAError("transfer length must be positive")
        staging = self._staging_bus(src_node)
        chain: List[DMADescriptor] = []
        moved = 0
        while moved < nbytes:
            take = min(nbytes - moved, STAGING_BYTES)
            chain.append(DMADescriptor(src_local + moved, staging, take))
            chain.append(DMADescriptor(staging, dst_global + moved, take,
                                       DescriptorFlags.FENCE))
            moved += take
        return chain

    def put_dma(self, src_node: int, src_local: int, dst_global: int,
                nbytes: int, channel: int = 0):
        """Process: two-phase DMA put; returns elapsed ps (doorbell->IRQ)."""
        chain = self.put_dma_descriptors(src_node, src_local, dst_global,
                                         nbytes)
        driver = self.cluster.driver(src_node)
        elapsed = yield self.engine.process(
            driver.run_chain(channel, chain), name="tca.put_dma")
        if self.engine.tracer is not None:
            self.engine.trace("tca.comm", "tca-put", transport="dma",
                              src_node=src_node, bytes=nbytes,
                              dur_ps=elapsed)
        return elapsed

    def put_dma_pipelined(self, src_node: int, src_local: int,
                          dst_global: int, nbytes: int, channel: int = 0):
        """Process: one-descriptor put on the next-generation DMAC.

        Requires the pipelined DMAC (enable with
        ``cluster.board(i).chip.dma.pipelined = True``).
        """
        chip = self.cluster.board(src_node).chip
        if not chip.dma.pipelined:
            raise DMAError("enable the pipelined DMAC first (§IV-B2 "
                           "future work)")
        driver = self.cluster.driver(src_node)
        chain = [DMADescriptor(src_local, dst_global, nbytes)]
        elapsed = yield self.engine.process(
            driver.run_chain(channel, chain), name="tca.put_dma_pipelined")
        if self.engine.tracer is not None:
            self.engine.trace("tca.comm", "tca-put",
                              transport="dma-pipelined", src_node=src_node,
                              bytes=nbytes, dur_ps=elapsed)
        return elapsed

    # -- block-stride transfers (§III-H) ------------------------------------------------

    def block_stride_descriptors(self, src_node: int, src_local: int,
                                 dst_global: int, block_bytes: int,
                                 src_stride: int, dst_stride: int,
                                 count: int) -> List[DMADescriptor]:
        """Chained descriptors for a strided transfer (2-D halo etc.).

        Each block is a fenced two-phase pair, like the real driver builds
        for the current DMAC.  "a series of bulk transfers, such as block
        transfer and block-stride transfer, are effective by using the
        chaining DMA mechanism" (§III-H).
        """
        if block_bytes <= 0 or count <= 0:
            raise DMAError("block size and count must be positive")
        if block_bytes > STAGING_BYTES:
            raise DMAError("block exceeds the staging area")
        staging = self._staging_bus(src_node)
        chain: List[DMADescriptor] = []
        for i in range(count):
            chain.append(DMADescriptor(src_local + i * src_stride,
                                       staging, block_bytes))
            chain.append(DMADescriptor(staging,
                                       dst_global + i * dst_stride,
                                       block_bytes, DescriptorFlags.FENCE))
        return chain

    def put_block_stride(self, src_node: int, src_local: int,
                         dst_global: int, block_bytes: int, src_stride: int,
                         dst_stride: int, count: int, channel: int = 0):
        """Process: run a block-stride chain; returns elapsed ps."""
        chain = self.block_stride_descriptors(
            src_node, src_local, dst_global, block_bytes, src_stride,
            dst_stride, count)
        driver = self.cluster.driver(src_node)
        elapsed = yield self.engine.process(
            driver.run_chain(channel, chain), name="tca.block_stride")
        return elapsed

    # -- the cudaMemcpyPeer-like call of §III-H ------------------------------------------

    def tca_memcpy_peer(self, dst_node: int, dst_ptr: DevicePtr,
                        src_node: int, src_ptr: DevicePtr, nbytes: int,
                        channel: int = 0):
        """Process: GPU-to-GPU copy across nodes, CUDA-style (§III-H).

        "a function similar to cudaMemcpyPeer should be available for the
        target node ID in addition to the GPU IDs" — this is it.  Both
        allocations are pinned for RDMA on the fly.
        """
        src_ptr.check_span(nbytes)
        dst_ptr.check_span(nbytes)
        src_gpu_index = self.cluster.node(src_node).gpus.index(src_ptr.gpu)
        self.register_gpu_memory(src_node, src_ptr)
        dst_global = self.register_gpu_memory(dst_node, dst_ptr)
        src_local = src_ptr.gpu.offset_to_bar(src_ptr.offset)
        elapsed = yield self.engine.process(
            self.put_dma(src_node, src_local, dst_global, nbytes, channel),
            name="tca.memcpy_peer")
        return elapsed
