"""Route-register generation for ring and coupled-ring topologies (Fig. 5).

Given the shared address map and a node's position, these functions emit
the §III-E comparator entries (mask / lower / upper / port) that steer
every other node's region out of the right port.  Shortest-path routing on
the ring; ties (the antipodal node of an even ring) break toward E.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigError
from repro.peach2.registers import PortCode, RouteEntry
from repro.tca.address_map import TCAAddressMap
from repro.tca.fabric import (FabricCut, TorusGeometry, _runs as _fabric_runs,
                              entries_for, fabric_route_entries)


def ring_hop_count(num_nodes: int, src_pos: int, dst_pos: int) -> int:
    """Shortest-path hop count between two ring positions.

    At the antipodal position of an even ring both directions take
    exactly ``num_nodes // 2`` hops; the count is direction-independent,
    but see :func:`ring_direction` for which way that traffic goes.
    """
    east = (dst_pos - src_pos) % num_nodes
    west = (src_pos - dst_pos) % num_nodes
    return min(east, west)


def ring_direction(num_nodes: int, src_pos: int, dst_pos: int) -> PortCode:
    """Shortest ring direction from one position to another.

    Ties (the antipodal node of an even ring, where east == west ==
    N/2) break toward E *by explicit choice*, not by comparison-order
    accident: the comparator tables :func:`ring_route_entries` programs
    make the same choice, so a put and its trailing flag store always
    take the same cables, which is what makes flag-store completion
    sound (§III-H posted-write ordering holds per path, not globally).
    The same plus-direction-wins rule applies per dimension in
    :func:`repro.tca.fabric.ring_arc`.
    """
    east = (dst_pos - src_pos) % num_nodes
    west = (src_pos - dst_pos) % num_nodes
    if east == west:
        return PortCode.E       # documented N/2-hop tie-break: E wins
    return PortCode.E if east < west else PortCode.W


def ring_neighbor(ring_ids: Sequence[int], node_id: int,
                  direction: PortCode) -> int:
    """The node one cable away in ``direction`` on a ring.

    ``ring_ids`` lists node ids in cable order (position p's East cable
    reaches position p+1), exactly as :meth:`TCASubCluster.rings`
    returns them.
    """
    if node_id not in ring_ids:
        raise ConfigError(f"node {node_id} is not on this ring")
    if direction not in (PortCode.E, PortCode.W):
        raise ConfigError("ring neighbours exist only toward E or W")
    position = list(ring_ids).index(node_id)
    step = 1 if direction == PortCode.E else -1
    return ring_ids[(position + step) % len(ring_ids)]


#: Backwards-compatible private alias (pre-collectives callers).
_direction = ring_direction


#: Shared with the fabric builder; kept under the old names for callers
#: that imported them from here.
_entries_for = entries_for


def _runs(sorted_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse sorted node ids into inclusive (first, last) runs."""
    return _fabric_runs(sorted_ids)


def ring_route_entries(address_map: TCAAddressMap, node_id: int,
                       ring_ids: Sequence[int]) -> List[RouteEntry]:
    """Route entries for one node of a single E/W ring.

    ``ring_ids`` lists node ids in ring order: position p's East cable
    reaches position p+1.  Entries are checked in order, so the node's own
    region (-> port N) comes first, exactly like Fig. 5's per-node tables.

    A ring is the 1D torus:  this delegates to
    :func:`repro.tca.fabric.fabric_route_entries`.
    """
    if node_id not in ring_ids:
        raise ConfigError(f"node {node_id} is not on this ring")
    if len(set(ring_ids)) != len(ring_ids):
        raise ConfigError("duplicate node ids on the ring")
    geometry = TorusGeometry((len(ring_ids),))
    return fabric_route_entries(address_map, node_id, geometry, ring_ids)


def chain_route_entries(address_map: TCAAddressMap, node_id: int,
                        chain_ids: Sequence[int]) -> List[RouteEntry]:
    """Route entries for a *chain* — a ring with one cable missing.

    PEARL's reliability story (§III-A): when a ring cable fails, the
    management plane reprograms the comparators so all traffic takes the
    surviving direction.  ``chain_ids`` lists the nodes from the West end
    to the East end of the surviving path.

    A chain is the 1D torus with one :class:`FabricCut` — the cable out
    of the East end's plus port — so this delegates to the fabric
    builder's detour machinery.
    """
    if node_id not in chain_ids:
        raise ConfigError(f"node {node_id} is not on this chain")
    if len(set(chain_ids)) != len(chain_ids):
        raise ConfigError("duplicate node ids on the chain")
    geometry = TorusGeometry((len(chain_ids),))
    cut = FabricCut(dim=0, plus_of=chain_ids[-1])
    return fabric_route_entries(address_map, node_id, geometry, chain_ids,
                                cuts=(cut,))


def dual_ring_route_entries(address_map: TCAAddressMap, node_id: int,
                            ring_a: Sequence[int],
                            ring_b: Sequence[int]) -> List[RouteEntry]:
    """Route entries for two rings coupled by the S ports (§III-D).

    Every node's S port is cabled to its same-position partner on the
    other ring.  Traffic for the other ring crosses at the source column
    (one S hop), then rides that ring — simple, deadlock-free, and at most
    one hop longer than optimal.

    The comparators match whole address ranges, so the two rings must be
    disjoint node-id sets: a node on both rings would get overlapping
    ranges steered out of two ports at once.  Invalid sets raise
    :class:`ConfigError` instead of silently programming such tables.
    """
    if len(ring_a) != len(ring_b):
        raise ConfigError("coupled rings must have equal length")
    if len(set(ring_a)) != len(ring_a) or len(set(ring_b)) != len(ring_b):
        raise ConfigError("duplicate node ids on a coupled ring")
    overlap = set(ring_a) & set(ring_b)
    if overlap:
        raise ConfigError(f"coupled rings share node ids {sorted(overlap)}: "
                          f"their address ranges would overlap")
    if node_id in ring_a:
        mine, other = ring_a, ring_b
    elif node_id in ring_b:
        mine, other = ring_b, ring_a
    else:
        raise ConfigError(f"node {node_id} is on neither ring")
    entries = ring_route_entries(address_map, node_id, mine)
    entries.extend(entries_for(address_map, list(other), PortCode.S))
    return entries
