"""Route-register generation for ring and coupled-ring topologies (Fig. 5).

Given the shared address map and a node's position, these functions emit
the §III-E comparator entries (mask / lower / upper / port) that steer
every other node's region out of the right port.  Shortest-path routing on
the ring; ties (the antipodal node of an even ring) break toward E.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigError
from repro.peach2.registers import PortCode, RouteEntry
from repro.tca.address_map import TCAAddressMap


def ring_hop_count(num_nodes: int, src_pos: int, dst_pos: int) -> int:
    """Shortest-path hop count between two ring positions."""
    east = (dst_pos - src_pos) % num_nodes
    west = (src_pos - dst_pos) % num_nodes
    return min(east, west)


def ring_direction(num_nodes: int, src_pos: int, dst_pos: int) -> PortCode:
    """Shortest ring direction from one position to another.

    Ties (the antipodal node of an even ring) break toward E, matching
    the comparator tables :func:`ring_route_entries` programs — so a put
    and its trailing flag store always take the same cables, which is
    what makes flag-store completion sound (§III-H posted-write
    ordering holds per path, not globally).
    """
    east = (dst_pos - src_pos) % num_nodes
    west = (src_pos - dst_pos) % num_nodes
    return PortCode.E if east <= west else PortCode.W


def ring_neighbor(ring_ids: Sequence[int], node_id: int,
                  direction: PortCode) -> int:
    """The node one cable away in ``direction`` on a ring.

    ``ring_ids`` lists node ids in cable order (position p's East cable
    reaches position p+1), exactly as :meth:`TCASubCluster.rings`
    returns them.
    """
    if node_id not in ring_ids:
        raise ConfigError(f"node {node_id} is not on this ring")
    if direction not in (PortCode.E, PortCode.W):
        raise ConfigError("ring neighbours exist only toward E or W")
    position = list(ring_ids).index(node_id)
    step = 1 if direction == PortCode.E else -1
    return ring_ids[(position + step) % len(ring_ids)]


#: Backwards-compatible private alias (pre-collectives callers).
_direction = ring_direction


def _runs(sorted_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse sorted node ids into inclusive (first, last) runs."""
    runs: List[Tuple[int, int]] = []
    for node_id in sorted_ids:
        if runs and node_id == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], node_id)
        else:
            runs.append((node_id, node_id))
    return runs


def _entries_for(address_map: TCAAddressMap, ids: Sequence[int],
                 port: PortCode) -> List[RouteEntry]:
    mask = address_map.node_mask()
    entries = []
    for first, last in _runs(sorted(ids)):
        entries.append(RouteEntry(
            mask=mask,
            lower=address_map.node_region(first).base,
            upper=address_map.node_region(last).base,
            port=port))
    return entries


def ring_route_entries(address_map: TCAAddressMap, node_id: int,
                       ring_ids: Sequence[int]) -> List[RouteEntry]:
    """Route entries for one node of a single E/W ring.

    ``ring_ids`` lists node ids in ring order: position p's East cable
    reaches position p+1.  Entries are checked in order, so the node's own
    region (-> port N) comes first, exactly like Fig. 5's per-node tables.
    """
    if node_id not in ring_ids:
        raise ConfigError(f"node {node_id} is not on this ring")
    if len(set(ring_ids)) != len(ring_ids):
        raise ConfigError("duplicate node ids on the ring")
    position = list(ring_ids).index(node_id)
    num = len(ring_ids)
    by_port: Dict[PortCode, List[int]] = {PortCode.E: [], PortCode.W: []}
    for other_pos, other_id in enumerate(ring_ids):
        if other_id == node_id:
            continue
        by_port[_direction(num, position, other_pos)].append(other_id)

    entries = _entries_for(address_map, [node_id], PortCode.N)
    for port in (PortCode.E, PortCode.W):
        entries.extend(_entries_for(address_map, by_port[port], port))
    return entries


def chain_route_entries(address_map: TCAAddressMap, node_id: int,
                        chain_ids: Sequence[int]) -> List[RouteEntry]:
    """Route entries for a *chain* — a ring with one cable missing.

    PEARL's reliability story (§III-A): when a ring cable fails, the
    management plane reprograms the comparators so all traffic takes the
    surviving direction.  ``chain_ids`` lists the nodes from the West end
    to the East end of the surviving path.
    """
    if node_id not in chain_ids:
        raise ConfigError(f"node {node_id} is not on this chain")
    if len(set(chain_ids)) != len(chain_ids):
        raise ConfigError("duplicate node ids on the chain")
    position = list(chain_ids).index(node_id)
    east_ids = [other for p, other in enumerate(chain_ids) if p > position]
    west_ids = [other for p, other in enumerate(chain_ids) if p < position]
    entries = _entries_for(address_map, [node_id], PortCode.N)
    entries.extend(_entries_for(address_map, east_ids, PortCode.E))
    entries.extend(_entries_for(address_map, west_ids, PortCode.W))
    return entries


def dual_ring_route_entries(address_map: TCAAddressMap, node_id: int,
                            ring_a: Sequence[int],
                            ring_b: Sequence[int]) -> List[RouteEntry]:
    """Route entries for two rings coupled by the S ports (§III-D).

    Every node's S port is cabled to its same-position partner on the
    other ring.  Traffic for the other ring crosses at the source column
    (one S hop), then rides that ring — simple, deadlock-free, and at most
    one hop longer than optimal.
    """
    if node_id in ring_a:
        mine, other = ring_a, ring_b
    elif node_id in ring_b:
        mine, other = ring_b, ring_a
    else:
        raise ConfigError(f"node {node_id} is on neither ring")
    if len(ring_a) != len(ring_b):
        raise ConfigError("coupled rings must have equal length")
    entries = ring_route_entries(address_map, node_id, mine)
    entries.extend(_entries_for(address_map, list(other), PortCode.S))
    return entries
