"""Sub-cluster assembly: nodes, boards, cables, and register programming.

Builds an 8-16-node (or smaller, for tests) TCA sub-cluster:

1. one :class:`~repro.hw.node.ComputeNode` per member, each with a
   :class:`~repro.peach2.board.PEACH2Board` in a socket-0 slot;
2. E->W cables closing the ring (and S cables pairing two rings when a
   coupled topology is requested), matching §III-D's fixed port roles;
3. identical BIOS enumeration everywhere, so the TCA window lands at the
   same bus address on every node and "the address offset information for
   each node can be commonly shared" (§III-E);
4. per-node register programming: identity, block translation bases, and
   the Fig. 5 comparator tables.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cuda.runtime import CudaContext, CudaParams
from repro.drivers.p2p_driver import P2PDriver
from repro.drivers.peach2_driver import PEACH2Driver
from repro.errors import ConfigError
from repro.hw.node import ComputeNode, NodeParams
from repro.peach2.board import PEACH2Board
from repro.peach2.chip import PEACH2Params
from repro.peach2.registers import (BLOCK_GPU0, BLOCK_GPU1, BLOCK_HOST,
                                    BLOCK_INTERNAL, MAX_ROUTE_ENTRIES,
                                    PortCode)
from repro.pcie.port import PortRole
from repro.sim.core import Engine
from repro.tca.address_map import TCAAddressMap
from repro.tca.fabric import (FabricCut, TorusGeometry, fabric_route_entries)
from repro.tca.topology import dual_ring_route_entries, ring_route_entries

RING = "ring"
DUAL_RING = "dual-ring"
TORUS = "torus"

#: Largest fabric one 512-GB window supports with power-of-two node
#: regions the comparators can mask (8-GiB slots at 64 nodes).
MAX_TORUS_NODES = 64


def _node_slots(num_nodes: int) -> int:
    """Window slot count: the Fig. 4 default of 16, doubled as needed."""
    slots = 16
    while slots < num_nodes:
        slots *= 2
    return slots


class TCASubCluster:
    """A running TCA sub-cluster on one simulation engine."""

    def __init__(self, num_nodes: int, topology: str = RING,
                 engine: Optional[Engine] = None,
                 node_params: NodeParams = NodeParams(),
                 peach2_params: PEACH2Params = PEACH2Params(),
                 cuda_params: CudaParams = CudaParams(),
                 extents: Optional[Sequence[int]] = None):
        if num_nodes < 2:
            raise ConfigError("a sub-cluster needs at least two nodes")
        if topology not in (RING, DUAL_RING, TORUS):
            raise ConfigError(f"unknown topology {topology!r}")
        if topology == DUAL_RING and num_nodes % 2:
            raise ConfigError("a dual ring needs an even node count")
        self.geometry: Optional[TorusGeometry] = None
        if topology == TORUS:
            if extents is None:
                raise ConfigError(
                    "a torus needs explicit extents, e.g. extents=(4, 4)")
            self.geometry = TorusGeometry(tuple(extents))
            if any(extent < 2 for extent in self.geometry.extents):
                raise ConfigError(
                    "every cabled torus dimension needs extent >= 2 "
                    f"(got {self.geometry.extents})")
            if self.geometry.num_nodes != num_nodes:
                raise ConfigError(
                    f"extents {self.geometry.extents} hold "
                    f"{self.geometry.num_nodes} nodes, not {num_nodes}")
            if num_nodes > MAX_TORUS_NODES:
                raise ConfigError(
                    f"torus fabrics top out at {MAX_TORUS_NODES} nodes "
                    "(8-GiB node regions in the 512-GB window)")
            # Torus chips need the per-dimension ports (>= 2D) and the
            # deepened comparator table (3D: up to 1 + 3*3 entries).
            if self.geometry.ndims >= 2 and not peach2_params.torus_ports:
                peach2_params = replace(peach2_params, torus_ports=True)
            if (self.geometry.ndims == 3
                    and peach2_params.num_route_entries < MAX_ROUTE_ENTRIES):
                peach2_params = replace(peach2_params,
                                        num_route_entries=MAX_ROUTE_ENTRIES)
        elif extents is not None:
            raise ConfigError("extents only apply to the torus topology")
        if topology == DUAL_RING and num_nodes > 16:
            raise ConfigError(
                "the paper's coupled rings top out at 16 nodes (§II-B); "
                "larger fabrics need the torus topology")
        if topology == RING and num_nodes > MAX_TORUS_NODES:
            raise ConfigError(
                f"ring sub-clusters top out at {MAX_TORUS_NODES} nodes "
                "(8-GiB node regions in the 512-GB window); the paper "
                "sizes them at 8-16 (§II-B)")

        self.engine = engine or Engine()
        self.topology = topology
        self.nodes: List[ComputeNode] = []
        self.boards: List[PEACH2Board] = []
        self.drivers: List[PEACH2Driver] = []
        self.cuda: List[CudaContext] = []
        self.p2p = P2PDriver()

        for i in range(num_nodes):
            node = ComputeNode(self.engine, f"node{i}", node_params)
            board = PEACH2Board(self.engine, f"node{i}.peach2", peach2_params)
            node.install_adapter(board, lanes=8)
            node.enumerate()
            self.nodes.append(node)
            self.boards.append(board)
            self.cuda.append(CudaContext(node, cuda_params))

        bases = {board.chip.bar4.base for board in self.boards}
        if len(bases) != 1:
            raise ConfigError("BIOS gave nodes different TCA windows; the "
                              "shared map needs identical enumeration")
        window = self.boards[0].chip.bar4.size
        # Fig. 4's default 16 x 32-GiB split, halved (power-of-two node
        # regions, so comparators still match upper bits only) until the
        # fabric fits; sub-16-node clusters keep the paper's geometry.
        stride = window // _node_slots(num_nodes)
        self.address_map = TCAAddressMap(bases.pop(), window_bytes=window,
                                         node_stride=stride,
                                         block_size=stride // 4)

        self._cable(topology)
        self._program_registers(topology)
        self.drivers = [PEACH2Driver(node, board)
                        for node, board in zip(self.nodes, self.boards)]
        # Baseline NIOS link scan, so later failures log as transitions.
        for board in self.boards:
            board.chip.firmware.scan_links()
        # Healing/recovery accounting.
        self.heals_completed = 0
        self.last_heal_chain: Optional[List[int]] = None
        self.last_time_to_heal_ps: Optional[int] = None
        self._healed_links: set = set()
        # A fault injector armed before construction sees our ring links.
        if self.engine.faults is not None:
            self.engine.faults.attach_cluster(self)

    # -- construction helpers ---------------------------------------------------

    def _cable(self, topology: str) -> None:
        n = len(self.boards)
        self._ring_cables = []  # (east_node, west_node, link)
        self._fabric_cables = []  # (dim, plus_node, minus_node, link)
        if topology == RING:
            self._rings = [list(range(n))]
            for i in range(n):
                j = (i + 1) % n
                link = self.boards[i].cable_east_to(self.boards[j])
                self._ring_cables.append((i, j, link))
                self._fabric_cables.append((0, i, j, link))
            return
        if topology == TORUS:
            # Dimension-0 rings are the fabric's E/W rings; higher
            # dimensions cable S->T and U->D the same plus->minus way.
            self._rings = [list(ring) for ring in self.geometry.rings(0)]
            for dim in range(self.geometry.ndims):
                for ring in self.geometry.rings(dim):
                    size = len(ring)
                    for pos in range(size):
                        i, j = ring[pos], ring[(pos + 1) % size]
                        link = self.boards[i].cable_dim_to(
                            dim, self.boards[j])
                        self._ring_cables.append((i, j, link))
                        self._fabric_cables.append((dim, i, j, link))
            return
        half = n // 2
        self._rings = [list(range(half)), list(range(half, n))]
        for ring in self._rings:
            size = len(ring)
            for pos in range(size):
                self.boards[ring[pos]].cable_east_to(
                    self.boards[ring[(pos + 1) % size]])
        # Complementary S-port configuration images: ring A keeps the
        # factory EP image, ring B is reloaded as RC, then columns pair up.
        for a, b in zip(self._rings[0], self._rings[1]):
            self.boards[b].chip.reconfigure_port_s(PortRole.RC)
            self.boards[a].cable_south_to(self.boards[b])

    def _program_registers(self, topology: str) -> None:
        for node_id, (node, board) in enumerate(zip(self.nodes, self.boards)):
            regs = board.chip.regs
            regs.set_identity(node_id, self.address_map.base,
                              self.address_map.node_stride,
                              self.address_map.block_size)
            # Port-N translation bases (Fig. 4 blocks -> local addresses).
            if len(node.gpus) > 0:
                regs.set_block_base(BLOCK_GPU0, node.gpus[0].bar1.base)
            if len(node.gpus) > 1:
                regs.set_block_base(BLOCK_GPU1, node.gpus[1].bar1.base)
            regs.set_block_base(BLOCK_HOST, 0)  # DRAM starts at bus 0
            regs.set_block_base(BLOCK_INTERNAL, board.chip.bar2.base)

            if topology == RING:
                entries = ring_route_entries(self.address_map, node_id,
                                             self._rings[0])
            elif topology == TORUS:
                entries = fabric_route_entries(
                    self.address_map, node_id, self.geometry,
                    list(range(self.num_nodes)))
            else:
                entries = dual_ring_route_entries(self.address_map, node_id,
                                                  self._rings[0],
                                                  self._rings[1])
            self._write_routes(regs, node_id, entries)

    def _write_routes(self, regs, node_id: int, entries) -> None:
        if len(entries) > regs.num_route_entries:
            raise ConfigError(
                f"node {node_id} needs {len(entries)} comparators but "
                f"the chip has {regs.num_route_entries}")
        for index in range(regs.num_route_entries):
            regs.set_route(index,
                           entries[index] if index < len(entries) else None)

    # -- accessors -----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Sub-cluster size."""
        return len(self.nodes)

    def node(self, node_id: int) -> ComputeNode:
        """Member node by id."""
        return self.nodes[node_id]

    def board(self, node_id: int) -> PEACH2Board:
        """PEACH2 board of a node."""
        return self.boards[node_id]

    def driver(self, node_id: int) -> PEACH2Driver:
        """PEACH2 driver instance of a node."""
        return self.drivers[node_id]

    def rings(self) -> List[List[int]]:
        """Node ids of each ring, in cable order.

        For a torus these are the dimension-0 (E/W) rings.
        """
        return [list(ring) for ring in self._rings]

    def fabric_cables(self) -> List[Tuple[int, int, int]]:
        """(dim, plus_node, minus_node) of every fabric cable."""
        return [(dim, a, b) for dim, a, b, _ in self._fabric_cables]

    # -- PEARL reliability: survive a ring-cable failure ----------------------

    def cut_ring_cable(self, east_node: int, force: bool = False) -> None:
        """Unplug the cable from ``east_node``'s E port (fault injection).

        A second cut while another ring cable is still down is rejected
        with :class:`ConfigError` — PEARL heals exactly one failure, so
        a second concurrent one silently partitions the sub-cluster.
        Pass ``force=True`` to model that partition deliberately.
        """
        for a, b, link in self._ring_cables:
            if a == east_node:
                if not link.up:
                    raise ConfigError(
                        f"the ring cable off node {east_node}'s E port is "
                        "already down")
                if not force:
                    down = [(x, y) for x, y, other in self._ring_cables
                            if not other.up]
                    if down:
                        raise ConfigError(
                            f"ring cable node{down[0][0]}.E->node{down[0][1]}"
                            ".W is already down; cutting another would "
                            "partition the sub-cluster (PEARL survives one "
                            "cable failure, §III-A) — pass force=True to "
                            "model the partition deliberately")
                link.take_down()
                return
        raise ConfigError(f"no ring cable leaves node {east_node}'s E port")

    def heal(self) -> List[int]:
        """Reroute around a single failed ring cable (§III-A's PEARL
        reliability): the ring degrades to a chain, every node's
        comparators are reprogrammed for the surviving direction.

        Uses the NIOS firmware's link scan to find the failure.  Returns
        the surviving chain order.  Raises if more than one cable is down
        (the ring is partitioned) or if the topology is not a single ring.
        """
        from repro.tca.topology import chain_route_entries

        if self.topology == TORUS:
            return self._heal_torus()
        if self.topology != RING:
            raise ConfigError(
                "healing is implemented for single rings and torus fabrics")
        for board in self.boards:
            board.chip.firmware.scan_links()
        down = [(a, b) for a, b, link in self._ring_cables if not link.up]
        if not down:
            raise ConfigError("no failed cable found")
        if len(down) > 1:
            raise ConfigError(
                f"{len(down)} cables down: the sub-cluster is partitioned")
        east_node, west_node = down[0]
        dead_link = next(link for a, b, link in self._ring_cables
                         if not link.up)
        # Surviving chain runs W->E starting at the node whose W cable died.
        n = self.num_nodes
        chain = [(west_node + k) % n for k in range(n)]
        for node_id in chain:
            entries = chain_route_entries(self.address_map, node_id, chain)
            self._write_routes(self.boards[node_id].chip.regs, node_id,
                               entries)
        self.heals_completed += 1
        self.last_heal_chain = chain
        if dead_link.down_since_ps is not None:
            self.last_time_to_heal_ps = (self.engine.now_ps
                                         - dead_link.down_since_ps)
        if self.engine.tracer is not None:
            self.engine.trace("tca", "heal", link=dead_link.name,
                              chain=",".join(str(i) for i in chain))
        if self.engine.metrics is not None:
            metrics = self.engine.metrics
            metrics.counter("tca.reroutes").inc()
            if self.last_time_to_heal_ps is not None:
                metrics.histogram("tca.time_to_heal_ns").observe(
                    self.last_time_to_heal_ps / 1000.0)
        return chain

    def cut_fabric_cable(self, dim: int, plus_node: int,
                         force: bool = False) -> None:
        """Unplug the plus-direction cable of one torus dimension.

        Mirrors :meth:`cut_ring_cable` (which is the ``dim == 0`` case):
        a second cut on the *same ring* would partition that ring, so it
        is rejected unless ``force=True``.  Cuts on different rings can
        each be healed independently.
        """
        for cable_dim, a, b, link in self._fabric_cables:
            if cable_dim != dim or a != plus_node:
                continue
            if not link.up:
                raise ConfigError(
                    f"the dimension-{dim} cable off node {plus_node} is "
                    "already down")
            link.take_down()
            return
        raise ConfigError(
            f"no dimension-{dim} cable leaves node {plus_node}'s plus port")

    def _heal_torus(self) -> List[FabricCut]:
        """Reroute around every down fabric cable (generalized PEARL).

        Each ring containing a broken cable degrades to a chain in its
        dimension; the builder raises if two cuts land on one ring (that
        ring would partition).  Returns the applied cuts.
        """
        for board in self.boards:
            board.chip.firmware.scan_links()
        down = [(dim, a, b, link)
                for dim, a, b, link in self._fabric_cables if not link.up]
        if not down:
            raise ConfigError("no failed cable found")
        cuts = tuple(FabricCut(dim=dim, plus_of=a)
                     for dim, a, b, link in down)
        nodes = list(range(self.num_nodes))
        for node_id in nodes:
            entries = fabric_route_entries(self.address_map, node_id,
                                           self.geometry, nodes, cuts=cuts)
            self._write_routes(self.boards[node_id].chip.regs, node_id,
                               entries)
        self.heals_completed += 1
        self.last_heal_chain = None
        dead_link = down[0][3]
        if dead_link.down_since_ps is not None:
            self.last_time_to_heal_ps = (self.engine.now_ps
                                         - dead_link.down_since_ps)
        if self.engine.tracer is not None:
            self.engine.trace(
                "tca", "heal",
                link=",".join(link.name for _, _, _, link in down),
                cuts=",".join(f"d{cut.dim}+{cut.plus_of}" for cut in cuts))
        if self.engine.metrics is not None:
            metrics = self.engine.metrics
            metrics.counter("tca.reroutes").inc()
            if self.last_time_to_heal_ps is not None:
                metrics.histogram("tca.time_to_heal_ns").observe(
                    self.last_time_to_heal_ps / 1000.0)
        return list(cuts)

    # -- firmware-driven auto-heal --------------------------------------------

    def enable_auto_heal(self, interval_ps: Optional[int] = None) -> None:
        """Start every board's NIOS watchdog, wired to :meth:`heal`.

        When any firmware instance detects a dead ring cable, the
        sub-cluster reroutes automatically.  Both endpoint chips see the
        same failure; the first report wins and the second is ignored.
        """
        for board in self.boards:
            board.chip.firmware.start_watchdog(
                interval_ps, on_ring_down=self._on_ring_down)

    def disable_auto_heal(self) -> None:
        """Stop the watchdogs (required before draining the engine)."""
        for board in self.boards:
            board.chip.firmware.stop_watchdog()

    def _on_ring_down(self, chip, link) -> None:
        if link.name in self._healed_links:
            return
        self._healed_links.add(link.name)
        self.heal()
