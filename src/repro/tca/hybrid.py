"""The hierarchical HA-PACS/TCA network: TCA locally, InfiniBand globally.

§II-B: "HA-PACS/TCA can use a hierarchical network that incorporates TCA
interconnect for local communication with low latency and InfiniBand for
global communication with high bandwidth", and §VI describes the planned
production system: several dozen nodes, each with four GPUs, an
InfiniBand host adaptor *and* a PEACH2 board.

:class:`HybridCluster` builds that machine — several TCA sub-clusters
whose nodes also carry IB HCAs on a shared switched fabric — and
:class:`HybridComm` gives it one address-based API: a put between nodes
of the same sub-cluster rides the PCIe ring; a put across sub-clusters
rides MPI over InfiniBand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.baselines.fabric import SwitchedFabric, SwitchedHca
from repro.baselines.ib import IBParams, QDR_PARAMS
from repro.baselines.mpi import MPIParams, MPIWorld
from repro.errors import ConfigError
from repro.hw.node import ComputeNode, NodeParams
from repro.peach2.board import PEACH2Board
from repro.peach2.chip import PEACH2Params
from repro.sim.core import Engine, Signal
from repro.tca.comm import TCAComm
from repro.tca.subcluster import TCASubCluster


class HybridCluster:
    """Several TCA sub-clusters joined by a switched InfiniBand fabric."""

    def __init__(self, num_subclusters: int = 2, nodes_per_subcluster: int = 4,
                 node_params: NodeParams = NodeParams(num_gpus=2),
                 peach2_params: PEACH2Params = PEACH2Params(),
                 ib_params: IBParams = QDR_PARAMS,
                 mpi_params: MPIParams = MPIParams()):
        if num_subclusters < 1:
            raise ConfigError("need at least one sub-cluster")
        self.engine = Engine()
        self.hub = SwitchedFabric(self.engine, ib_params)
        self.subclusters: List[TCASubCluster] = []
        self.hcas: List[SwitchedHca] = []
        self.world = MPIWorld(mpi_params)
        self.ranks = []

        for s in range(num_subclusters):
            # Build each sub-cluster's nodes by hand so the IB HCA can be
            # installed in the same slot-scan as the PEACH2 board.
            sub = _SubClusterWithHcas(self.engine, nodes_per_subcluster,
                                      node_params, peach2_params, ib_params,
                                      self.hub, prefix=f"sc{s}")
            self.subclusters.append(sub.cluster)
            for node, hca in zip(sub.cluster.nodes, sub.hcas):
                self.hcas.append(hca)
                self.ranks.append(self.world.add_endpoint(node, hca))

        self.nodes_per_subcluster = nodes_per_subcluster

    # -- addressing -----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count across sub-clusters."""
        return len(self.ranks)

    def locate(self, global_rank: int) -> Tuple[int, int]:
        """(sub-cluster index, local node id) of a global rank."""
        if not 0 <= global_rank < self.num_nodes:
            raise ConfigError(f"rank {global_rank} out of range")
        return divmod(global_rank, self.nodes_per_subcluster)

    def node(self, global_rank: int) -> ComputeNode:
        """Node by global rank."""
        sub, local = self.locate(global_rank)
        return self.subclusters[sub].node(local)


class _SubClusterWithHcas:
    """Helper: a TCASubCluster whose nodes also carry switched HCAs."""

    def __init__(self, engine, n, node_params, peach2_params, ib_params,
                 hub, prefix):
        # TCASubCluster builds nodes itself; we need HCAs installed before
        # enumeration, so replicate its build with an extra adapter.
        from repro.cuda.runtime import CudaContext
        from repro.drivers.peach2_driver import PEACH2Driver

        self.hcas: List[SwitchedHca] = []
        cluster = TCASubCluster.__new__(TCASubCluster)
        cluster.engine = engine
        cluster.topology = "ring"
        cluster.nodes = []
        cluster.boards = []
        cluster.cuda = []
        from repro.drivers.p2p_driver import P2PDriver
        cluster.p2p = P2PDriver()
        for i in range(n):
            node = ComputeNode(engine, f"{prefix}.node{i}", node_params)
            board = PEACH2Board(engine, f"{prefix}.node{i}.peach2",
                                peach2_params)
            node.install_adapter(board, lanes=8)
            hca = SwitchedHca(engine, f"{prefix}.node{i}.hca", ib_params,
                              hub)
            from repro.pcie.gen import PCIeGen
            node.install_adapter(hca, lanes=8, gen=PCIeGen.GEN3)
            node.enumerate()
            cluster.nodes.append(node)
            cluster.boards.append(board)
            cluster.cuda.append(CudaContext(node))
            self.hcas.append(hca)

        from repro.errors import ConfigError as _CE
        from repro.tca.address_map import TCAAddressMap

        bases = {b.chip.bar4.base for b in cluster.boards}
        if len(bases) != 1:
            raise _CE("sub-cluster nodes enumerated differently")
        cluster.address_map = TCAAddressMap(bases.pop())
        cluster._cable("ring")
        cluster._program_registers("ring")
        cluster.drivers = [PEACH2Driver(node, board)
                           for node, board in zip(cluster.nodes,
                                                  cluster.boards)]
        for board in cluster.boards:
            board.chip.firmware.scan_links()
        self.cluster = cluster


class HybridComm:
    """One put API over the hierarchical network.

    ``put(src_rank, dst_rank, ...)`` picks the transport: same sub-cluster
    means a TCA DMA put over the ring; different sub-clusters means MPI
    over the InfiniBand fabric (host staging buffers on both sides).
    """

    #: Local messages at or below this ride PIO (see E16's crossover).
    PIO_THRESHOLD = 2048

    def __init__(self, cluster: HybridCluster):
        self.cluster = cluster
        self.engine = cluster.engine
        self.tca = [TCAComm(sub) for sub in cluster.subclusters]
        self.puts_via_tca = 0
        self.puts_via_ib = 0
        # Completion-flag words in each node's DRAM (outside the DMA
        # buffers) for the PIO fast path.
        self._flag_addr = [node.dram_alloc(4096)
                           for node in (cluster.node(r)
                                        for r in range(cluster.num_nodes))]
        self._flag_seq = 0

    def transport_for(self, src_rank: int, dst_rank: int) -> str:
        """Which network a pair communicates over."""
        src_sub, _ = self.cluster.locate(src_rank)
        dst_sub, _ = self.cluster.locate(dst_rank)
        return "tca" if src_sub == dst_sub else "ib"

    def put(self, src_rank: int, dst_rank: int, src_offset: int,
            dst_offset: int, nbytes: int, tag: int = 0):
        """Process: move DMA-buffer bytes between two global ranks.

        Returns the transport used ("tca" or "ib").
        """
        src_sub, src_local = self.cluster.locate(src_rank)
        dst_sub, dst_local = self.cluster.locate(dst_rank)
        src_cluster = self.cluster.subclusters[src_sub]
        dst_cluster = self.cluster.subclusters[dst_sub]
        src_bus = src_cluster.driver(src_local).dma_buffer(src_offset)
        dst_bus = dst_cluster.driver(dst_local).dma_buffer(dst_offset)

        if src_sub == dst_sub:
            self.puts_via_tca += 1
            comm = self.tca[src_sub]
            dst_global = comm.host_global(dst_local, dst_bus)
            if nbytes <= self.PIO_THRESHOLD:
                # PIO fast path: stream the payload, store a flag behind
                # it (PCIe ordering), complete when the flag lands.
                self._flag_seq += 1
                flag_value = self._flag_seq
                flag_bus = self._flag_addr[dst_rank]
                flag_global = comm.host_global(dst_local, flag_bus)
                data = src_cluster.node(src_local).dram.cpu_read(
                    src_bus, nbytes)
                yield self.engine.process(
                    comm.put_pio_timed(src_local, dst_global, data))
                src_cluster.node(src_local).cpu.store_u32(
                    flag_global, flag_value)
                dst_dram = dst_cluster.node(dst_local).dram
                while True:
                    word = dst_dram.cpu_read(flag_bus, 4)
                    if int.from_bytes(word.tobytes(),
                                      "little") == flag_value:
                        break
                    yield 20_000  # driver poll cadence
                return "tca"
            yield self.engine.process(
                comm.put_dma(src_local, src_bus, dst_global, nbytes))
            return "tca"

        self.puts_via_ib += 1
        recv = self.cluster.ranks[dst_rank].irecv(
            src_rank, dst_bus, nbytes, tag)
        self.cluster.ranks[src_rank].isend(dst_rank, src_bus, nbytes, tag)
        yield recv
        return "ib"
