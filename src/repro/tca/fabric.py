"""Composable route-table fabrics: rings generalized to 2D/3D torus.

The paper's PEACH2 ring (§III-D, Fig. 5) is the 1D case of a torus: each
dimension is a ring served by one (plus, minus) port pair, and a route
table is just the union of per-dimension comparator entries plus the
node's own port-N entry.  This module builds those tables composably —

    node set  ->  coordinate map  ->  per-dimension route entries

— with dimension-order routing (highest/slowest-varying dimension
corrected first) and an adaptive *detour* hook that reuses the healing
machinery: a broken cable becomes a :class:`FabricCut`, and every ring
that contains it routes around the gap exactly the way PEARL's
ring-to-chain comparator reprogramming does (§III-A).

The 1D special cases reproduce :mod:`repro.tca.topology`'s
``ring_route_entries`` / ``chain_route_entries`` /
``dual_ring_route_entries`` byte-for-byte, so those functions now
delegate here.

Port assignment per dimension (``DIM_PORTS``): dimension 0 uses E/W like
the paper's ring, dimension 1 uses S/T, dimension 2 uses U/D.  Entry
counts stay within the register file: a D-dimensional node needs at most
1 + 3·D comparators on the default path (each dimension's complement arc
splits into at most three contiguous node-id runs), so 2D fits the
paper's 8-entry table and 3D needs the deepened 16-entry table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.errors import ConfigError
from repro.peach2.registers import PortCode, RouteEntry
from repro.tca.address_map import TCAAddressMap

#: (plus, minus) output-port pair serving each torus dimension.
DIM_PORTS: Tuple[Tuple[PortCode, PortCode], ...] = (
    (PortCode.E, PortCode.W),
    (PortCode.S, PortCode.T),
    (PortCode.U, PortCode.D),
)

#: Fabric dimensionality the port encoding supports.
MAX_DIMS = len(DIM_PORTS)

PLUS = 1
MINUS = -1

#: Detour hook signature: (dim, extent, src_coord, dst_coord, cut_coord)
#: -> PLUS or MINUS.  ``cut_coord`` is the coordinate whose plus-direction
#: cable on this ring is down, or None when the ring is whole.
DetourFn = Callable[[int, int, int, int, Optional[int]], int]


@dataclass(frozen=True)
class TorusGeometry:
    """A 1D/2D/3D torus shape with row-major coordinate arithmetic.

    Node index ``i`` maps to coordinates ``(x0, x1, x2)`` with dimension
    0 fastest-varying: ``i = x0 + n0*(x1 + n1*x2)`` — so the nodes of any
    dimension-d ring whose lower coordinates span their full ranges form
    contiguous index runs, which is what lets plain address-range
    comparators express torus routing.
    """

    extents: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "extents", tuple(int(n)
                                                  for n in self.extents))
        if not 1 <= len(self.extents) <= MAX_DIMS:
            raise ConfigError(
                f"torus needs 1..{MAX_DIMS} dimensions, got "
                f"{len(self.extents)}")
        # Extent 1 is degenerate (a dimension with no cables) but legal:
        # a 1-node "ring" arises when a coupled ring pairs two nodes.
        # Cabled fabrics (TCASubCluster) require every extent >= 2.
        if any(n < 1 for n in self.extents):
            raise ConfigError(
                f"every torus extent must be >= 1, got {self.extents}")

    @property
    def ndims(self) -> int:
        """Number of dimensions."""
        return len(self.extents)

    @property
    def num_nodes(self) -> int:
        """Total node count (product of extents)."""
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    def coords_of(self, index: int) -> Tuple[int, ...]:
        """Row-major coordinates of node ``index``."""
        if not 0 <= index < self.num_nodes:
            raise ConfigError(f"node index {index} outside torus "
                              f"{self.extents}")
        coords = []
        for extent in self.extents:
            index, coord = divmod(index, extent)
            coords.append(coord)
        return tuple(coords)

    def index_of(self, coords: Sequence[int]) -> int:
        """Node index at ``coords`` (inverse of :meth:`coords_of`)."""
        if len(coords) != self.ndims:
            raise ConfigError(f"expected {self.ndims} coordinates, got "
                              f"{len(coords)}")
        index = 0
        for dim in reversed(range(self.ndims)):
            coord = coords[dim]
            if not 0 <= coord < self.extents[dim]:
                raise ConfigError(f"coordinate {coord} outside dimension "
                                  f"{dim} extent {self.extents[dim]}")
            index = index * self.extents[dim] + coord
        return index

    def ring_hops(self, dim: int, src_coord: int, dst_coord: int) -> int:
        """Shortest-path hops between two coordinates on a dim-d ring."""
        extent = self.extents[dim]
        plus = (dst_coord - src_coord) % extent
        minus = (src_coord - dst_coord) % extent
        return min(plus, minus)

    def path_hops(self, src_index: int, dst_index: int) -> int:
        """Dimension-order path length: sum of per-dimension ring hops."""
        src, dst = self.coords_of(src_index), self.coords_of(dst_index)
        return sum(self.ring_hops(dim, src[dim], dst[dim])
                   for dim in range(self.ndims))

    def neighbor(self, index: int, dim: int, step: int) -> int:
        """Index one cable away along ``dim`` (step +1 plus / -1 minus)."""
        if step not in (PLUS, MINUS):
            raise ConfigError("neighbor step must be +1 or -1")
        coords = list(self.coords_of(index))
        coords[dim] = (coords[dim] + step) % self.extents[dim]
        return self.index_of(coords)

    def rings(self, dim: int) -> List[Tuple[int, ...]]:
        """Every dim-d ring as a tuple of node indices in cable order.

        Position p's plus-direction cable reaches position p+1 (mod
        extent), mirroring :func:`ring_neighbor`'s convention.
        """
        if not 0 <= dim < self.ndims:
            raise ConfigError(f"dimension {dim} outside torus "
                              f"{self.extents}")
        rings = []
        for start in range(self.num_nodes):
            if self.coords_of(start)[dim] != 0:
                continue
            ring = [start]
            for _ in range(self.extents[dim] - 1):
                ring.append(self.neighbor(ring[-1], dim, PLUS))
            rings.append(tuple(ring))
        return rings


@dataclass(frozen=True)
class FabricCut:
    """One broken cable: ``plus_of``'s plus-direction link on ``dim``.

    The healing machinery maps a failed cable to the node on its minus
    side; every ring containing that link then routes around the gap
    (ring-to-chain reprogramming, generalized per dimension).
    """

    dim: int
    plus_of: int


def coordinate_map(geometry: TorusGeometry,
                   nodes: Sequence[int]) -> Dict[int, Tuple[int, ...]]:
    """Assign torus coordinates to a node set, in the order given.

    ``nodes[i]`` sits at ``geometry.coords_of(i)`` — for 1D this is
    exactly the ring-order convention of :func:`ring_route_entries`.
    """
    if len(nodes) != geometry.num_nodes:
        raise ConfigError(
            f"torus {geometry.extents} needs {geometry.num_nodes} nodes, "
            f"got {len(nodes)}")
    if len(set(nodes)) != len(nodes):
        raise ConfigError("duplicate node ids in the fabric")
    return {node_id: geometry.coords_of(position)
            for position, node_id in enumerate(nodes)}


def ring_arc(dim: int, extent: int, src_coord: int, dst_coord: int,
             cut_coord: Optional[int] = None) -> int:
    """Travel direction on one dimension's ring: ``PLUS`` or ``MINUS``.

    Without a cut this is shortest-path with the documented tie-break:
    at exactly extent/2 hops the plus direction wins (E before W, S
    before T, U before D), matching :func:`ring_direction`.  With a cut
    the direction that would cross the broken cable is forbidden, which
    reproduces chain routing on the surviving arc.
    """
    if dst_coord == src_coord:
        raise ConfigError("ring arc needs distinct coordinates")
    plus = (dst_coord - src_coord) % extent
    minus = (src_coord - dst_coord) % extent
    if cut_coord is not None:
        if (cut_coord - src_coord) % extent < plus:
            return MINUS        # plus walk would cross the broken cable
        if (src_coord - cut_coord - 1) % extent < minus:
            return PLUS         # minus walk would cross it
    return PLUS if plus <= minus else MINUS


def _runs(sorted_ids: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse sorted node ids into inclusive (first, last) runs."""
    runs: List[Tuple[int, int]] = []
    for node_id in sorted_ids:
        if runs and node_id == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], node_id)
        else:
            runs.append((node_id, node_id))
    return runs


def entries_for(address_map: TCAAddressMap, ids: Sequence[int],
                port: PortCode) -> List[RouteEntry]:
    """One §III-E comparator per contiguous node-id run, all -> ``port``."""
    mask = address_map.node_mask()
    entries = []
    for first, last in _runs(sorted(ids)):
        entries.append(RouteEntry(
            mask=mask,
            lower=address_map.node_region(first).base,
            upper=address_map.node_region(last).base,
            port=port))
    return entries


def fabric_route_entries(address_map: TCAAddressMap, node_id: int,
                         geometry: TorusGeometry, nodes: Sequence[int],
                         cuts: Iterable[FabricCut] = (),
                         detour: Optional[DetourFn] = None,
                         ) -> List[RouteEntry]:
    """Dimension-order route table for one node of a torus fabric.

    The node's own region (-> port N) comes first, then each dimension's
    plus- and minus-direction entries in dimension order.  A packet is
    claimed by the highest dimension whose coordinate still differs from
    the local node's, so every hop strictly corrects one dimension and
    the path length equals the sum of per-dimension ring hops.

    ``cuts`` lists broken cables; rings containing one detour around it
    via ``detour`` (default :func:`ring_arc`), the same chain routing the
    1D healing path programs.
    """
    coords = coordinate_map(geometry, nodes)
    if node_id not in coords:
        raise ConfigError(f"node {node_id} is not in the fabric")
    mine = coords[node_id]
    pick = detour or ring_arc

    # A cut matters to this node's table only when the broken cable lies
    # on one of its own rings (all coordinates equal except the cut dim).
    my_cuts: Dict[int, int] = {}
    for cut in cuts:
        if not 0 <= cut.dim < geometry.ndims:
            raise ConfigError(f"cut dimension {cut.dim} outside torus "
                              f"{geometry.extents}")
        if cut.plus_of not in coords:
            raise ConfigError(f"cut names node {cut.plus_of}, which is "
                              f"not in the fabric")
        there = coords[cut.plus_of]
        if all(there[d] == mine[d] for d in range(geometry.ndims)
               if d != cut.dim):
            if cut.dim in my_cuts and my_cuts[cut.dim] != there[cut.dim]:
                raise ConfigError(
                    f"two cuts on one dimension-{cut.dim} ring would "
                    f"partition the fabric")
            my_cuts[cut.dim] = there[cut.dim]

    entries = entries_for(address_map, [node_id], PortCode.N)
    for dim in range(geometry.ndims):
        plus_ids: List[int] = []
        minus_ids: List[int] = []
        for other_id, there in coords.items():
            if other_id == node_id:
                continue
            if any(there[d] != mine[d]
                   for d in range(dim + 1, geometry.ndims)):
                continue        # a higher dimension claims this packet
            if there[dim] == mine[dim]:
                continue        # a lower dimension claims it
            arc = pick(dim, geometry.extents[dim], mine[dim], there[dim],
                       my_cuts.get(dim))
            (plus_ids if arc == PLUS else minus_ids).append(other_id)
        plus_port, minus_port = DIM_PORTS[dim]
        entries.extend(entries_for(address_map, plus_ids, plus_port))
        entries.extend(entries_for(address_map, minus_ids, minus_port))
    return entries
