"""The Fig. 4 address map: one 512-GB window shared by the sub-cluster.

"The address region is split equally as the aligned address to every node
contained in the TCA sub-cluster. Furthermore, each split region is again
divided into the aligned address block among two GPUs, the host, and the
internal region of PEACH2" (§III-E).  Because everything is power-of-two
aligned, a receiving PEACH2 decides the destination "only by comparing the
upper bits of the destination address".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import AddressError, ConfigError
from repro.pcie.address import Region
from repro.peach2.registers import (BLOCK_GPU0, BLOCK_GPU1, BLOCK_HOST,
                                    BLOCK_INTERNAL, DEFAULT_BLOCK_SIZE,
                                    DEFAULT_NODE_STRIDE, NUM_BLOCKS)
from repro.units import GiB

BLOCK_NAMES = {BLOCK_GPU0: "gpu0", BLOCK_GPU1: "gpu1",
               BLOCK_HOST: "host", BLOCK_INTERNAL: "peach2"}


@dataclass(frozen=True)
class TCAAddressMap:
    """The shared global map: window base + per-node stride + block size."""

    base: int
    window_bytes: int = 512 * GiB
    node_stride: int = DEFAULT_NODE_STRIDE
    block_size: int = DEFAULT_BLOCK_SIZE

    def __post_init__(self) -> None:
        if self.node_stride <= 0 or self.window_bytes % self.node_stride:
            raise ConfigError("window must split evenly into node regions")
        if self.base % self.node_stride:
            raise ConfigError(
                "the window base must be node-stride aligned so routing can "
                "compare upper bits only (§III-E)")
        if self.block_size * NUM_BLOCKS != self.node_stride:
            raise ConfigError(
                f"node region of {self.node_stride:#x} must hold exactly "
                f"{NUM_BLOCKS} blocks of {self.block_size:#x}")

    @property
    def max_nodes(self) -> int:
        """How many node slots the window holds (16 by default)."""
        return self.window_bytes // self.node_stride

    def node_region(self, node_id: int) -> Region:
        """The [Fig. 4] split belonging to one node."""
        self._check_node(node_id)
        return Region(self.base + node_id * self.node_stride,
                      self.node_stride, f"tca.node{node_id}")

    def block_region(self, node_id: int, block: int) -> Region:
        """One device block (GPU0/GPU1/host/PEACH2-internal) of a node."""
        self._check_node(node_id)
        self._check_block(block)
        base = (self.base + node_id * self.node_stride
                + block * self.block_size)
        return Region(base, self.block_size,
                      f"tca.node{node_id}.{BLOCK_NAMES[block]}")

    def global_address(self, node_id: int, block: int, offset: int) -> int:
        """Compose a TCA-global bus address."""
        if offset < 0 or offset >= self.block_size:
            raise AddressError(f"offset {offset:#x} exceeds the block size")
        return self.block_region(node_id, block).base + offset

    def decompose(self, address: int) -> Tuple[int, int, int]:
        """(node_id, block, offset) of a TCA-global address."""
        if not self.contains(address):
            raise AddressError(f"0x{address:x} is outside the TCA window")
        offset = address - self.base
        node_id, rest = divmod(offset, self.node_stride)
        block, block_offset = divmod(rest, self.block_size)
        return int(node_id), int(block), int(block_offset)

    def contains(self, address: int) -> bool:
        """True if the address falls inside the TCA window."""
        return self.base <= address < self.base + self.window_bytes

    def node_mask(self) -> int:
        """Upper-bits mask isolating the node region (for route entries)."""
        return ~(self.node_stride - 1) & 0xFFFF_FFFF_FFFF_FFFF

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.max_nodes:
            raise ConfigError(
                f"node id {node_id} out of range (window holds "
                f"{self.max_nodes} nodes)")

    @staticmethod
    def _check_block(block: int) -> None:
        if not 0 <= block < NUM_BLOCKS:
            raise ConfigError(f"block {block} out of range")


__all__ = ["TCAAddressMap", "BLOCK_GPU0", "BLOCK_GPU1", "BLOCK_HOST",
           "BLOCK_INTERNAL", "BLOCK_NAMES"]
