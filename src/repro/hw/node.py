"""Compute-node assembly: sockets, switches, QPI, memory, GPUs, adapters.

Builds the Figure-2 block diagram: two Xeon sockets, each with an embedded
PCIe switch; GPU0/GPU1 under socket 0 and GPU2/GPU3 under socket 1; host
memory and the CPU complex on socket 0; adapter cards (PEACH2 board, IB
HCA) plug into socket-0 slots.  Peer-to-peer traffic that must cross QPI
goes through the :class:`~repro.pcie.qpi.QPIBridge` and suffers its P2P
penalty — which is why PEACH2 only serves GPU0/GPU1 (§III-C).

Several nodes share one :class:`~repro.sim.Engine`; a TCA sub-cluster or
an IB fabric is just a set of nodes whose adapters are cabled together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.hw.bios import BARRequest, BIOS, MOTHERBOARDS, Motherboard
from repro.hw.cpu import CPU, MSI_REGION
from repro.hw.gpu import GPU, GPUParams
from repro.hw.memory import HostMemory, MemoryParams
from repro.model.calibration import CALIB, Calibration
from repro.pcie.address import AddressSpace, Region
from repro.pcie.gen import PCIeGen
from repro.pcie.link import LinkParams, PCIeLink
from repro.pcie.port import PortRole
from repro.pcie.qpi import QPIBridge, QPIParams
from repro.pcie.switch import PCIeSwitch, SwitchParams
from repro.sim.core import Engine
from repro.units import GiB, MiB, ns


@dataclass(frozen=True)
class NodeParams:
    """Static configuration of one compute node."""

    num_gpus: int = 4
    dram_bytes: int = 128 * GiB
    gpu: GPUParams = GPUParams()
    motherboard: str = "SuperMicro X9DRG-QF"
    calib: Calibration = CALIB

    def board(self) -> Motherboard:
        """Resolve the configured motherboard model."""
        try:
            return MOTHERBOARDS[self.motherboard]
        except KeyError:
            raise ConfigError(f"unknown motherboard {self.motherboard!r}")


def internal_link(latency_ps: int) -> LinkParams:
    """On-die attach: wide/fast enough to never be the bottleneck."""
    return LinkParams(gen=PCIeGen.GEN3, lanes=32, latency_ps=latency_ps,
                      rx_credits=64)


def slot_link(calib: Calibration, lanes: int = 8,
              gen: PCIeGen = PCIeGen.GEN2) -> LinkParams:
    """A physical PCIe slot link (adapter cards, GPUs).

    The Sandy Bridge-EP sockets provide Gen3 lanes (§II-A); most devices
    of the era train at Gen2, but the IB NIC uses Gen3 x8 (Table I).
    """
    return LinkParams(gen=gen, lanes=lanes,
                      latency_ps=calib.local_link_latency_ps)


class ComputeNode:
    """One HA-PACS/TCA compute node on a shared simulation engine."""

    def __init__(self, engine: Engine, name: str,
                 params: NodeParams = NodeParams()):
        if params.num_gpus < 1 or params.num_gpus > 4:
            raise ConfigError("a node carries 1..4 GPUs")
        self.engine = engine
        self.name = name
        self.params = params
        calib = params.calib
        self.bios = BIOS(params.board())
        self.address_space = AddressSpace(name=f"{name}.addr")

        sw_params = SwitchParams(
            forward_latency_ps=calib.switch_forward_ps,
            issue_interval_ps=calib.switch_issue_interval_ps)
        self.sw0 = PCIeSwitch(engine, f"{name}.sw0", sw_params)
        self.sw1 = PCIeSwitch(engine, f"{name}.sw1", sw_params)

        qpi_params = QPIParams(latency_ps=calib.qpi_latency_ps,
                               cpu_gap_ps=calib.qpi_cpu_gap_ps,
                               p2p_gap_ps=calib.qpi_p2p_gap_ps)
        self.qpi = QPIBridge(engine, f"{name}.qpi", qpi_params)
        self._qpi_port0 = self.sw0.new_port("qpi", PortRole.INTERNAL)
        self._qpi_port1 = self.sw1.new_port("qpi", PortRole.INTERNAL)
        PCIeLink(engine, self._qpi_port0, self.qpi.port_a,
                 internal_link(ns(1)), name=f"{name}.qpi0")
        PCIeLink(engine, self._qpi_port1, self.qpi.port_b,
                 internal_link(ns(1)), name=f"{name}.qpi1")

        self.cpu = CPU(engine, f"{name}.cpu")
        self._cpu_port = self.sw0.new_port("cpu", PortRole.INTERNAL,
                                           rx_credits=64)
        PCIeLink(engine, self._cpu_port, self.cpu.port,
                 internal_link(calib.cpu_store_issue_ps), name=f"{name}.cpul")

        mem_params = MemoryParams(
            read_latency_ps=calib.host_mem_read_latency_ps,
            write_commit_ps=calib.host_mem_write_commit_ps,
            max_outstanding_reads=calib.host_mem_max_reads,
            completion_chunk=calib.mps_bytes)
        self.dram = HostMemory(engine, f"{name}.dram", params.dram_bytes,
                               mem_params)
        self.dram.region = Region(0, params.dram_bytes, f"{name}.dram")
        self._dram_port = self.sw0.new_port("dram", PortRole.INTERNAL,
                                            rx_credits=64)
        PCIeLink(engine, self._dram_port, self.dram.port,
                 internal_link(ns(1)), name=f"{name}.draml")

        self.gpus: List[GPU] = []
        self._gpu_ports = []
        for i in range(params.num_gpus):
            gpu = GPU(engine, f"{name}.gpu{i}", params.gpu)
            switch = self.sw0 if i < 2 else self.sw1
            port = switch.new_port(f"gpu{i}", PortRole.RC, rx_credits=64)
            PCIeLink(engine, port, gpu.port, slot_link(calib, lanes=16),
                     name=f"{name}.gpul{i}")
            # GPU-originated traffic crossing QPI is P2P-penalized.
            self.qpi.mark_p2p_requester(gpu.device_id)
            self.gpus.append(gpu)
            self._gpu_ports.append(port)

        self.adapters: List[object] = []
        self._adapter_ports: Dict[int, object] = {}
        self._dram_cursor = 16 * MiB  # bump allocator for driver buffers
        self._enumerated = False

    # -- adapters ---------------------------------------------------------------

    def install_adapter(self, adapter: object, lanes: int = 8,
                        gen: PCIeGen = PCIeGen.GEN2) -> None:
        """Plug an adapter card (PEACH2 board, IB HCA) into a socket-0 slot.

        The adapter must expose ``host_port`` (an EP-facing Port), a
        ``config_space`` (:class:`~repro.pcie.config_space.ConfigSpace`
        whose BARs the BIOS will size and place), and
        ``on_enumerated(node, bars: Dict[int, Region])``.
        """
        if self._enumerated:
            raise ConfigError(f"{self.name}: install adapters before enumerate()")
        slot = self.sw0.new_port(f"slot{len(self.adapters)}", PortRole.RC,
                                 rx_credits=64)
        PCIeLink(self.engine, slot, adapter.host_port,
                 slot_link(self.params.calib, lanes=lanes, gen=gen),
                 name=f"{self.name}.slot{len(self.adapters)}")
        self.qpi.mark_p2p_requester(adapter.device_id)
        self.adapters.append(adapter)
        self._adapter_ports[id(adapter)] = slot

    # -- enumeration --------------------------------------------------------------

    def enumerate(self) -> None:
        """Run the BIOS scan and build both switches' routing tables."""
        if self._enumerated:
            raise ConfigError(f"{self.name}: already enumerated")
        self._enumerated = True

        # Fixed regions: DRAM and the MSI doorbell.
        self.address_space.add(self.dram.region, self.dram)
        self.address_space.add(MSI_REGION, self.cpu)
        self.sw0.map_region(self.dram.region, self._dram_port)
        self.sw0.map_region(MSI_REGION, self._cpu_port)
        self.sw1.map_region(self.dram.region, self._qpi_port1)
        self.sw1.map_region(MSI_REGION, self._qpi_port1)

        # GPU BAR1 windows (8 GiB, the next power of two above 5 Gbytes),
        # sized and placed via the real config-space handshake.
        for i, gpu in enumerate(self.gpus):
            bar1 = self.bios.scan_function(gpu.config_space)[1]
            gpu.assign_bar1(bar1)
            self.address_space.add(bar1, gpu)
            local_sw, local_port = ((self.sw0, self._gpu_ports[i]) if i < 2
                                    else (self.sw1, self._gpu_ports[i]))
            remote_sw = self.sw1 if i < 2 else self.sw0
            qpi_port = self._qpi_port1 if i < 2 else self._qpi_port0
            local_sw.map_region(bar1, local_port)
            local_sw.map_device(gpu.device_id, local_port)
            remote_sw.map_region(bar1, qpi_port)
            remote_sw.map_device(gpu.device_id, qpi_port)

        # Adapter BARs: size, place and enable via each card's config space.
        for adapter in self.adapters:
            slot = self._adapter_ports[id(adapter)]
            bars = self.bios.scan_function(adapter.config_space)
            for region in bars.values():
                self.address_space.add(region, adapter)
                self.sw0.map_region(region, slot)
                self.sw1.map_region(region, self._qpi_port1)
            self.sw0.map_device(adapter.device_id, slot)
            self.sw1.map_device(adapter.device_id, self._qpi_port1)
            adapter.on_enumerated(self, bars)

        # CPU-bound completions.
        self.sw0.map_device(self.cpu.device_id, self._cpu_port)
        self.sw1.map_device(self.cpu.device_id, self._qpi_port1)

    def adapter_slot(self, adapter: object):
        """The switch port an installed adapter is cabled to."""
        try:
            return self._adapter_ports[id(adapter)]
        except KeyError:
            raise ConfigError(f"{self.name}: adapter not installed here")

    # -- software-visible bus access (zero simulated time) -------------------------

    def bus_read(self, address: int, nbytes: int):
        """Read bytes at a bus address (DRAM or a GPU BAR1 window).

        This is the "software already has the data mapped" view used by
        libraries (MPI copy-out, test verification); it consumes no
        simulated time — charge copy costs separately.
        """
        _, target = self.address_space.lookup_region(address, max(1, nbytes))
        if target is self.dram:
            return self.dram.cpu_read(address, nbytes)
        if isinstance(target, GPU):
            return target.memory.read(target.bar_to_offset(address), nbytes)
        raise ConfigError(f"{self.name}: bus_read of non-memory target "
                          f"at 0x{address:x}")

    def bus_write(self, address: int, data) -> None:
        """Write bytes at a bus address (DRAM or a GPU BAR1 window)."""
        _, target = self.address_space.lookup_region(address,
                                                     max(1, len(data)))
        if target is self.dram:
            self.dram.cpu_write(address, data)
            return
        if isinstance(target, GPU):
            target.memory.write(target.bar_to_offset(address), data)
            return
        raise ConfigError(f"{self.name}: bus_write of non-memory target "
                          f"at 0x{address:x}")

    # -- driver memory ------------------------------------------------------------

    def dram_alloc(self, nbytes: int, align: int = 4096) -> int:
        """Carve a physically contiguous DRAM buffer (driver allocations)."""
        base = -(-self._dram_cursor // align) * align
        if base + nbytes > self.params.dram_bytes:
            raise ConfigError(f"{self.name}: DRAM exhausted")
        self._dram_cursor = base + nbytes
        return base

    def gpu_on_peach2_socket(self, index: int) -> GPU:
        """GPUs reachable by PEACH2 without crossing QPI (GPU0/GPU1)."""
        if index not in (0, 1):
            raise ConfigError(
                "PEACH2 only accesses GPU0 and GPU1 (QPI P2P is prohibited, "
                "§III-C)")
        return self.gpus[index]
