"""BIOS enumeration: BAR assignment under motherboard constraints.

The paper's footnote 2 is a real deployment constraint: PEACH2 requests a
512-Gbyte BAR for the TCA window, and "currently, only a few motherboards
can support the PEACH2 board".  The simulated BIOS reproduces that —
motherboards advertise the largest 64-bit BAR they can place, and
enumeration fails on boards that cannot host the card.

Assignment is deterministic: BARs are naturally aligned (as PCIe requires)
and allocated in request order from a fixed 64-bit window base, so every
node of a sub-cluster ends up with identical addresses — which is what
lets the TCA address map be "commonly shared by every node" (§III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import BIOSError
from repro.pcie.address import Region, align_up
from repro.units import GiB, MiB


@dataclass(frozen=True)
class Motherboard:
    """A motherboard model and the largest single BAR its BIOS can map."""

    name: str
    max_bar_bytes: int


#: Boards from Table II (both can host PEACH2) plus a generic board that
#: cannot, to demonstrate the footnote-2 failure mode.
MOTHERBOARDS: Dict[str, Motherboard] = {
    "SuperMicro X9DRG-QF": Motherboard("SuperMicro X9DRG-QF", 1024 * GiB),
    "Intel S2600IP": Motherboard("Intel S2600IP", 1024 * GiB),
    "generic-consumer": Motherboard("generic-consumer", 256 * MiB),
}

#: Base of the 64-bit prefetchable window the BIOS allocates BARs from.
BAR_WINDOW_BASE = 0x40_0000_0000  # 256 GiB


@dataclass(frozen=True)
class BARRequest:
    """One BAR a device asks the BIOS to place."""

    device: str
    index: int
    size: int


class BIOS:
    """Deterministic first-fit BAR allocator and config-space scanner."""

    def __init__(self, motherboard: Motherboard):
        self.motherboard = motherboard
        self._cursor = BAR_WINDOW_BASE
        self.assigned: List[Tuple[BARRequest, Region]] = []
        self.scanned_functions: List[object] = []

    def scan_function(self, config_space) -> dict:
        """Enumerate one PCIe function via its configuration space.

        Runs the standard sizing handshake on every implemented BAR
        (probe with all-ones, read the size, program the base), then sets
        Memory Space + Bus Master Enable.  Returns ``{bar_index: Region}``.
        """
        regions = {}
        for index in sorted(config_space.bars):
            size = config_space.probe_bar_size(index)
            region = self.assign(BARRequest(config_space.name, index, size))
            config_space.program_bar(index, region.base)
            regions[index] = region
        config_space.enable()
        self.scanned_functions.append(config_space)
        return regions

    def lspci(self) -> str:
        """Summary of every function seen during the scan."""
        return "\n".join(cs.describe() for cs in self.scanned_functions)

    def assign(self, request: BARRequest) -> Region:
        """Place one BAR; naturally aligned; raises on oversize BARs."""
        if request.size <= 0 or request.size & (request.size - 1):
            raise BIOSError(
                f"BAR size {request.size:#x} is not a power of two "
                f"({request.device} BAR{request.index})")
        if request.size > self.motherboard.max_bar_bytes:
            raise BIOSError(
                f"motherboard {self.motherboard.name!r} cannot assign a "
                f"{request.size // GiB}-GiB BAR for {request.device} "
                f"BAR{request.index} (max "
                f"{self.motherboard.max_bar_bytes // GiB} GiB) — see the "
                "paper's footnote 2")
        base = align_up(self._cursor, request.size)
        region = Region(base, request.size,
                        f"{request.device}.bar{request.index}")
        self._cursor = base + request.size
        self.assigned.append((request, region))
        return region
