"""Node hardware models: CPU, memories, GPUs, BIOS, node assembly."""

from repro.hw.memory import BackingStore, HostMemory, MemoryParams
from repro.hw.cpu import CPU
from repro.hw.gpu import GPU, GPUParams
from repro.hw.bios import BIOS, Motherboard, MOTHERBOARDS
from repro.hw.node import ComputeNode, NodeParams

__all__ = [
    "BackingStore",
    "HostMemory",
    "MemoryParams",
    "CPU",
    "GPU",
    "GPUParams",
    "BIOS",
    "Motherboard",
    "MOTHERBOARDS",
    "ComputeNode",
    "NodeParams",
]
