"""Byte-addressable backing stores and the host memory controller.

Memories are sparse: 4-KiB numpy pages materialize on first write, so a
"128-Gbyte" DRAM costs only what the workload actually touches, while
every simulated transfer still moves real bytes that tests can verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import AddressError
from repro.model.calibration import CALIB
from repro.pcie.address import Region
from repro.pcie.device import Device
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind, make_completion
from repro.sim.core import Engine
from repro.sim.queues import Resource

PAGE_SIZE = 4096


class BackingStore:
    """Sparse byte store of a fixed size (zero-filled until written)."""

    def __init__(self, size: int, name: str = ""):
        if size <= 0:
            raise AddressError(f"backing store {name!r} size must be positive")
        self.size = size
        self.name = name
        self._pages: Dict[int, np.ndarray] = {}

    @property
    def resident_bytes(self) -> int:
        """Bytes of actually-materialized pages."""
        return len(self._pages) * PAGE_SIZE

    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or offset + nbytes > self.size:
            raise AddressError(
                f"{self.name}: access [{offset:#x}, {offset + nbytes:#x}) "
                f"outside store of {self.size:#x} bytes")

    def write(self, offset: int, data: np.ndarray) -> None:
        """Write ``data`` (uint8) at ``offset``."""
        data = np.ascontiguousarray(data, dtype=np.uint8)
        self._check(offset, len(data))
        pos = 0
        while pos < len(data):
            page_no, page_off = divmod(offset + pos, PAGE_SIZE)
            take = min(len(data) - pos, PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is None:
                page = np.zeros(PAGE_SIZE, dtype=np.uint8)
                self._pages[page_no] = page
            page[page_off:page_off + take] = data[pos:pos + take]
            pos += take

    def read(self, offset: int, nbytes: int) -> np.ndarray:
        """Read ``nbytes`` at ``offset`` as a fresh uint8 array."""
        self._check(offset, nbytes)
        out = np.zeros(nbytes, dtype=np.uint8)
        pos = 0
        while pos < nbytes:
            page_no, page_off = divmod(offset + pos, PAGE_SIZE)
            take = min(nbytes - pos, PAGE_SIZE - page_off)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos:pos + take] = page[page_off:page_off + take]
            pos += take
        return out


@dataclass(frozen=True)
class MemoryParams:
    """Timing of a memory completer on the PCIe fabric."""

    read_latency_ps: int = CALIB.host_mem_read_latency_ps
    write_commit_ps: int = CALIB.host_mem_write_commit_ps
    max_outstanding_reads: int = CALIB.host_mem_max_reads
    completion_chunk: int = CALIB.mps_bytes


class HostMemory(Device):
    """DDR3 host memory behind the root complex.

    Writes sink at line rate and become poll-visible ``write_commit_ps``
    after arrival; reads are serviced by a bounded completer pipeline and
    answered with Completions-with-Data in MPS-sized chunks.
    """

    def __init__(self, engine: Engine, name: str, size: int,
                 params: MemoryParams = MemoryParams()):
        super().__init__(engine, name)
        self.store = BackingStore(size, name=name)
        self.params = params
        self.region: Region = Region(0, size, name)  # reassigned by the node
        self.port = Port(engine, f"{name}.port", PortRole.INTERNAL, self,
                         rx_credits=64)
        self._readers = Resource(engine, params.max_outstanding_reads,
                                 name=f"{name}.readers")
        self.bytes_written = 0
        self.bytes_read = 0

    # -- fabric-facing --------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """Memory-controller ingress: sink writes, serve reads."""
        if tlp.kind is TLPKind.MWR:
            offset = self.region.offset_of(tlp.address)
            self.engine.after(self.params.write_commit_ps,
                              self._commit, offset, tlp.payload)
            return None
        if tlp.kind is TLPKind.MRD:
            self.engine.process(self._serve_read(tlp),
                                name=f"{self.name}.read")
            return None
        raise AddressError(f"{self.name}: unexpected {tlp}")

    def _commit(self, offset: int, payload: np.ndarray) -> None:
        self.store.write(offset, payload)
        self.bytes_written += len(payload)
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "mem-commit", offset=offset,
                              bytes=len(payload))
        if self.engine.metrics is not None:
            self.engine.metrics.counter(
                f"mem.{self.name}.bytes_written").inc(len(payload))

    def _serve_read(self, request: TLP):
        yield self._readers.acquire()
        try:
            yield self.params.read_latency_ps
            offset = self.region.offset_of(request.address)
            data = self.store.read(offset, request.length)
            self.bytes_read += request.length
            chunk = self.params.completion_chunk
            for start in range(0, len(data), chunk):
                piece = data[start:start + chunk]
                accepted = self.port.send(make_completion(request, piece))
                if not accepted.fired:
                    yield accepted
        finally:
            self._readers.release()

    # -- zero-time host-software access (loads/stores by the local CPU) ------

    def cpu_read(self, address: int, nbytes: int) -> np.ndarray:
        """Local CPU load (used by polling driver code)."""
        return self.store.read(self.region.offset_of(address), nbytes)

    def cpu_write(self, address: int, data: np.ndarray) -> None:
        """Local CPU store directly into DRAM (driver buffer setup)."""
        self.store.write(self.region.offset_of(address),
                         np.ascontiguousarray(data, dtype=np.uint8))
