"""CPU complex: PIO stores, MMIO reads, TSC, and interrupt dispatch.

The CPU is the software anchor of a node: driver and benchmark code run as
engine processes "on" it, read the timestamp counter (the paper's TSC
methodology, §IV-A), issue uncached stores into device BARs (the PIO path
of §III-F), and field MSI interrupts from the PEACH2 DMA controller.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.pcie.address import Region
from repro.pcie.device import Device, TagPool
from repro.pcie.port import Port, PortRole
from repro.pcie.tlp import TLP, TLPKind, make_read, make_write
from repro.sim.core import Engine, Signal

#: MSI doorbell window; MSI writes from devices land here.  Real x86 puts
#: this at 0xFEE00000 inside the sub-4-GiB hole; our DRAM map is flat from
#: zero, so the doorbell is relocated above the largest supported DRAM.
MSI_REGION = Region(0x38_0000_0000, 0x1000, "msi")


class CPU(Device):
    """One CPU complex (both sockets' cores, simplified to one requester)."""

    def __init__(self, engine: Engine, name: str):
        super().__init__(engine, name)
        self.port = Port(engine, f"{name}.port", PortRole.INTERNAL, self,
                         rx_credits=64)
        self.tags = TagPool(engine, name=f"{name}.tags")
        self._irq_handlers: Dict[int, Callable[[int], None]] = {}
        self.interrupts_received = 0

    # -- timing ----------------------------------------------------------------

    def read_tsc(self) -> int:
        """Timestamp counter, in picoseconds of simulated time."""
        return self.engine.now_ps

    # -- fabric-facing ----------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """Field MSIs (dispatch IRQ handlers) and MMIO-read completions."""
        if tlp.kind is TLPKind.MSI:
            self.interrupts_received += 1
            vector = int.from_bytes(tlp.payload.tobytes(), "little")
            self.engine.trace(self.name, "msi", vector=vector)
            if self.engine.metrics is not None:
                self.engine.metrics.counter(
                    f"cpu.{self.name}.interrupts").inc()
            handler = self._irq_handlers.get(vector)
            if handler is not None:
                handler(vector)
            return None
        if tlp.kind is TLPKind.CPLD:
            self.tags.complete(tlp)
            return None
        # Stray memory writes to the CPU complex are ignored (aborted).
        return None

    # -- software-visible operations ---------------------------------------------

    def store(self, address: int, data: np.ndarray) -> None:
        """Issue one uncached store (a posted MWr); returns immediately.

        The store-to-fabric cost is carried by the CPU's internal link
        latency, so back-to-back stores pipeline like real write-combining
        doesn't — PEACH2 PIO uses small independent stores (§III-F).
        """
        data = np.asarray(data, dtype=np.uint8)
        if self.engine.tracer is not None:
            self.engine.trace(self.name, "pio-store", addr=address,
                              bytes=len(data))
        if self.engine.metrics is not None:
            self.engine.metrics.counter(f"cpu.{self.name}.pio_stores").inc()
        self.port.send(make_write(address, data,
                                  requester_id=self.device_id))

    def store_u32(self, address: int, value: int) -> None:
        """Store a little-endian 32-bit value (the paper's 4-byte PIO)."""
        data = np.frombuffer(int(value).to_bytes(4, "little"), dtype=np.uint8)
        self.store(address, data.copy())

    def store_stream(self, address: int, data: np.ndarray,
                     wc_buffer_bytes: int, drain_gap_ps: int):
        """Process: stream stores through the write-combining buffers.

        The TCA window is mapped write-combining (§III-F1): consecutive
        stores coalesce into WC-buffer-sized posted writes, drained at the
        core's WC cadence.  This is the *paced* PIO path used for anything
        beyond a few cache lines; :meth:`store` models the single posted
        store of a doorbell or flag.
        """
        data = np.ascontiguousarray(data, dtype=np.uint8)
        offset = 0
        while offset < len(data):
            # Coalesce up to one WC buffer, not crossing its alignment.
            boundary = wc_buffer_bytes - ((address + offset)
                                          % wc_buffer_bytes)
            take = min(len(data) - offset, boundary)
            yield drain_gap_ps
            self.store(address + offset, data[offset:offset + take])
            offset += take

    def load(self, address: int, nbytes: int) -> Signal:
        """Issue an uncached MMIO read; the signal fires with the bytes."""
        tag, done = self.tags.issue(nbytes)
        self.port.send(make_read(address, nbytes,
                                 requester_id=self.device_id, tag=tag))
        return done

    def register_irq_handler(self, vector: int,
                             handler: Callable[[int], None]) -> None:
        """Install the handler invoked when MSI ``vector`` arrives."""
        if vector in self._irq_handlers:
            raise ConfigError(f"{self.name}: IRQ vector {vector} already taken")
        self._irq_handlers[vector] = handler

    def unregister_irq_handler(self, vector: int) -> None:
        """Remove a previously installed handler."""
        self._irq_handlers.pop(vector, None)
