"""Kepler-class GPU endpoint: GDDR5 memory, BAR1 window, copy engines.

Two properties matter for the paper's results and are modelled carefully:

* **BAR1 read path**: reads of GPU memory through the PCIe BAR traverse
  the GPU's address-translation machinery; the completer pipeline is
  shallow (4 requests) and slow (~1.2 µs each), capping DMA reads from GPU
  memory at ~830 Mbytes/s (§IV-A2) no matter how fast the link is.
* **Page-granularity pinning**: GPUDirect Support for RDMA only exposes
  pages that the P2P driver pinned into the PCIe address space (§III-C);
  fabric access to an unpinned page is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import DriverError
from repro.hw.memory import BackingStore, PAGE_SIZE
from repro.model.calibration import CALIB
from repro.pcie.address import Region
from repro.pcie.config_space import (CAP_MSI, CAP_PCIE, Capability,
                                     ConfigSpace, VENDOR_NVIDIA)
from repro.pcie.device import Device, TagPool
from repro.pcie.port import Port, PortRole
from repro.pcie.packetizer import split_read_requests, split_transfer
from repro.pcie.tlp import TLP, TLPKind, make_completion, make_read, make_write
from repro.sim.core import Engine
from repro.sim.queues import Resource
from repro.units import transfer_ps


@dataclass(frozen=True)
class GPUParams:
    """Timing and capacity of one GPU."""

    memory_bytes: int = 5 * 1024**3  # K20: 5 Gbytes GDDR5
    bar_read_latency_ps: int = CALIB.gpu_bar_read_latency_ps
    bar_max_reads: int = CALIB.gpu_bar_max_reads
    bar_write_commit_ps: int = CALIB.gpu_bar_write_commit_ps
    # Copy-engine pacing (used by cudaMemcpy in the baselines).
    ce_per_tlp_overhead_ps: int = CALIB.dma_per_tlp_overhead_ps
    ce_max_outstanding_reads: int = 16
    # Compute roofline (K20: 1.17 DP TFlops, 208 GB/s GDDR5) and the
    # CUDA kernel-launch overhead of the era.
    peak_gflops: float = 1170.0
    mem_bandwidth_gbytes: float = 208.0
    kernel_launch_ps: int = 5_000_000  # 5 us


class GPU(Device):
    """One GPU: an endpoint with memory, a BAR1 window and copy engines."""

    def __init__(self, engine: Engine, name: str,
                 params: GPUParams = GPUParams()):
        super().__init__(engine, name)
        self.params = params
        self.memory = BackingStore(params.memory_bytes, name=f"{name}.mem")
        self.port = Port(engine, f"{name}.port", PortRole.EP, self,
                         rx_credits=64)
        # Type-0 function: a Kepler-class GPU with its large BAR1 window.
        bar1_size = 1 << (params.memory_bytes - 1).bit_length()
        self.config_space = ConfigSpace(VENDOR_NVIDIA, 0x1028, 0x03,
                                        name=name)
        self.config_space.add_bar(1, bar1_size)
        self.config_space.add_capability(Capability(CAP_MSI))
        self.config_space.add_capability(Capability(CAP_PCIE))
        self.bar1: Optional[Region] = None  # assigned at enumeration
        self.tags = TagPool(engine, name=f"{name}.tags")
        self._readers = Resource(engine, params.bar_max_reads,
                                 name=f"{name}.bar-readers")
        self._pinned: List[Tuple[int, int]] = []  # (start, end) mem offsets
        self.bytes_written = 0
        self.bytes_read = 0

    # -- BAR plumbing -----------------------------------------------------------

    def assign_bar1(self, region: Region) -> None:
        """BIOS hands the GPU its BAR1 window (1:1 over device memory)."""
        if region.size < self.params.memory_bytes:
            raise DriverError(
                f"{self.name}: BAR1 of {region.size:#x} bytes cannot cover "
                f"{self.params.memory_bytes:#x} bytes of device memory")
        self.bar1 = region

    def bar_to_offset(self, address: int) -> int:
        """Translate a BAR1 bus address to a device-memory offset."""
        if self.bar1 is None:
            raise DriverError(f"{self.name}: BAR1 not assigned yet")
        return self.bar1.offset_of(address)

    def offset_to_bar(self, offset: int) -> int:
        """Translate a device-memory offset to its BAR1 bus address."""
        if self.bar1 is None:
            raise DriverError(f"{self.name}: BAR1 not assigned yet")
        return self.bar1.base + offset

    # -- GPUDirect page pinning ---------------------------------------------------

    def pin_pages(self, offset: int, nbytes: int) -> Region:
        """Pin [offset, offset+nbytes), page-rounded, into the BAR window."""
        start = (offset // PAGE_SIZE) * PAGE_SIZE
        end = -(-(offset + nbytes) // PAGE_SIZE) * PAGE_SIZE
        self._pinned.append((start, min(end, self.params.memory_bytes)))
        return Region(self.offset_to_bar(start), end - start,
                      f"{self.name}.pinned")

    def unpin_pages(self, offset: int, nbytes: int) -> None:
        """Remove one earlier pin covering the same range."""
        start = (offset // PAGE_SIZE) * PAGE_SIZE
        end = -(-(offset + nbytes) // PAGE_SIZE) * PAGE_SIZE
        entry = (start, min(end, self.params.memory_bytes))
        if entry not in self._pinned:
            raise DriverError(f"{self.name}: range was not pinned")
        self._pinned.remove(entry)

    def is_pinned(self, offset: int, nbytes: int) -> bool:
        """True if the whole range lies inside some pinned interval."""
        return any(s <= offset and offset + nbytes <= e
                   for s, e in self._pinned)

    def _check_pinned(self, offset: int, nbytes: int) -> None:
        if not self.is_pinned(offset, nbytes):
            raise DriverError(
                f"{self.name}: fabric access to unpinned GPU memory "
                f"[{offset:#x}, {offset + nbytes:#x}) — GPUDirect RDMA "
                "requires the P2P driver to pin the pages first")

    # -- fabric-facing --------------------------------------------------------------

    def handle_tlp(self, port: Port, tlp: TLP):
        """BAR1 ingress: pinned-page writes, throttled reads, CplDs."""
        if tlp.kind is TLPKind.MWR:
            offset = self.bar_to_offset(tlp.address)
            self._check_pinned(offset, tlp.length)
            self.engine.after(self.params.bar_write_commit_ps,
                              self._commit, offset, tlp.payload)
            return None
        if tlp.kind is TLPKind.MRD:
            offset = self.bar_to_offset(tlp.address)
            self._check_pinned(offset, tlp.length)
            self.engine.process(self._serve_read(tlp, offset),
                                name=f"{self.name}.bar-read")
            return None
        if tlp.kind is TLPKind.CPLD:
            self.tags.complete(tlp)
            return None
        return None

    def _commit(self, offset: int, payload: np.ndarray) -> None:
        self.memory.write(offset, payload)
        self.bytes_written += len(payload)

    def _serve_read(self, request: TLP, offset: int):
        yield self._readers.acquire()
        try:
            yield self.params.bar_read_latency_ps
            data = self.memory.read(offset, request.length)
            self.bytes_read += request.length
            chunk = CALIB.mps_bytes
            for start in range(0, len(data), chunk):
                accepted = self.port.send(
                    make_completion(request, data[start:start + chunk]))
                if not accepted.fired:
                    yield accepted
        finally:
            self._readers.release()

    # -- compute (roofline-timed kernel execution) -----------------------------------

    def kernel_time_ps(self, flops: float, bytes_moved: float) -> int:
        """Roofline execution time: limited by DP peak or memory BW."""
        compute_ps = flops / self.params.peak_gflops / 1e9 * 1e12
        memory_ps = bytes_moved / self.params.mem_bandwidth_gbytes / 1e9 * 1e12
        return self.params.kernel_launch_ps + int(max(compute_ps, memory_ps))

    def launch_kernel(self, flops: float, bytes_moved: float,
                      body=None):
        """Process: run one kernel; ``body()`` applies its side effects
        to device memory when the kernel completes."""
        yield self.kernel_time_ps(flops, bytes_moved)
        if body is not None:
            body()

    # -- copy engine (cudaMemcpy's DMA, used by host-staged baselines) -------------

    def ce_write_to_bus(self, bus_address: int, src_offset: int, nbytes: int):
        """Copy-engine process: device memory -> bus address (D2H body)."""
        link_rate = self.port.link.params.bytes_per_ps
        for addr, size in split_transfer(bus_address, nbytes, CALIB.mps_bytes):
            data = self.memory.read(src_offset + (addr - bus_address), size)
            tlp = make_write(addr, data, requester_id=self.device_id)
            yield transfer_ps(tlp.wire_bytes, link_rate) \
                + self.params.ce_per_tlp_overhead_ps
            accepted = self.port.send(tlp)
            if not accepted.fired:
                yield accepted

    def ce_read_from_bus(self, bus_address: int, dst_offset: int, nbytes: int):
        """Copy-engine process: bus address -> device memory (H2D body)."""
        window = Resource(self.engine, self.params.ce_max_outstanding_reads,
                          name=f"{self.name}.ce-window")
        pending = []
        for addr, size in split_read_requests(bus_address, nbytes,
                                              CALIB.mrrs_bytes):
            yield window.acquire()
            tag, done = self.tags.issue(size)
            accepted = self.port.send(make_read(
                addr, size, requester_id=self.device_id, tag=tag))
            if not accepted.fired:
                yield accepted
            offset = dst_offset + (addr - bus_address)

            def _land(data: bytes, _off: int = offset) -> None:
                self.memory.write(_off,
                                  np.frombuffer(data, dtype=np.uint8).copy())
                window.release()

            done.add_callback(_land)
            pending.append(done)
            yield CALIB.dma_read_issue_gap_ps
        for done in pending:
            if not done.fired:
                yield done
