"""Exception hierarchy for the TCA/PEACH2 reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event kernel."""


class PCIeError(ReproError):
    """Base class for PCIe substrate errors."""


class AddressError(PCIeError):
    """An address fell outside every mapped region (PCIe Unsupported Request)."""


class LinkError(PCIeError):
    """A link was used while down, or trained with incompatible port roles."""


class CompletionTimeoutError(PCIeError):
    """A non-posted request's completion did not arrive before the deadline.

    Real root ports and endpoints arm a completion timeout per outstanding
    read; when it expires the request is dropped and the error is surfaced
    instead of the requester hanging forever.
    """


class FaultError(ReproError):
    """Fault-injection framework misuse, or a scenario exceeding its
    recovery budget (e.g. a chaos run that never converges)."""


class ConfigError(ReproError):
    """Invalid static configuration (topology, registers, BIOS limits...)."""


class BIOSError(ConfigError):
    """The simulated BIOS could not assign a requested BAR.

    The paper notes (footnote 2) that only a few motherboards can assign
    PEACH2's 512-Gbyte BAR; boards whose BIOS cannot do so fail enumeration.
    """


class DMAError(ReproError):
    """DMA controller misuse (bad descriptor, engine busy, ...)."""


class CudaError(ReproError):
    """CUDA-like runtime errors (invalid device pointer, P2P not enabled...)."""


class DriverError(ReproError):
    """Kernel-driver-level errors (mmap without BAR, unpinned page access...)."""
