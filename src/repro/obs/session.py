"""The Observability facade: attach tracing + metrics to engines.

One :class:`Observability` owns a tracer and a metrics registry *per
engine* (experiments build a fresh engine per rig, and mixing their
picosecond timelines would be meaningless), and knows how to export the
union — a multi-process Perfetto trace and a per-engine metrics document.

Two ways to wire it up::

    obs = Observability()
    obs.attach(engine, label="loopback")      # explicit, one engine

    with obs.session():                        # implicit, every engine
        experiments.latency()                  # created inside the block

The session form hooks :func:`repro.sim.core.register_engine_observer`,
which is how ``tca-bench <exp> --trace out.json`` captures rigs it never
sees constructed.  Attaching only sets the engine's ``tracer``/``metrics``
attributes — it schedules nothing, so instrumented runs are cycle-exact
with uninstrumented ones.
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Tuple

from repro.obs import exporters
from repro.obs.attribution import AttributionError, Segment, attribute_pio
from repro.obs.metrics import MetricsRegistry
from repro.sim.core import (Engine, register_engine_observer,
                            unregister_engine_observer)
from repro.sim.trace import Tracer

#: Generous default: a 255-descriptor chain emits a few thousand events.
DEFAULT_MAX_RECORDS = 1_000_000


class Observability:
    """Cross-cutting tracing + metrics for any number of engines."""

    def __init__(self, tracing: bool = True, metrics: bool = True,
                 max_records: Optional[int] = DEFAULT_MAX_RECORDS,
                 histogram_reservoir: Optional[int] = None):
        self.tracing = tracing
        self.metrics = metrics
        self.max_records = max_records
        #: Bounded-memory mode for long runs: cap every histogram at this
        #: many sampled values (see :class:`repro.obs.metrics.Histogram`).
        self.histogram_reservoir = histogram_reservoir
        #: (label, engine, tracer, registry) per attached engine.
        self.attached: List[Tuple[str, Engine, Tracer, MetricsRegistry]] = []

    # -- wiring -------------------------------------------------------------

    def attach(self, engine: Engine, label: Optional[str] = None) -> None:
        """Install a fresh tracer/registry pair on ``engine``."""
        label = label or f"engine{len(self.attached)}"
        tracer = Tracer(enabled=self.tracing, max_records=self.max_records)
        registry = MetricsRegistry(
            clock=lambda e=engine: e.now_ps,
            histogram_reservoir=self.histogram_reservoir)
        if self.tracing:
            engine.tracer = tracer
        if self.metrics:
            engine.metrics = registry
        self.attached.append((label, engine, tracer, registry))

    @contextlib.contextmanager
    def session(self):
        """Attach to every :class:`Engine` constructed inside the block."""
        register_engine_observer(self.attach)
        try:
            yield self
        finally:
            unregister_engine_observer(self.attach)

    # -- access -------------------------------------------------------------

    def tracer_for(self, engine: Engine) -> Optional[Tracer]:
        for _, eng, tracer, _ in self.attached:
            if eng is engine:
                return tracer
        return None

    def registry_for(self, engine: Engine) -> Optional[MetricsRegistry]:
        for _, eng, _, registry in self.attached:
            if eng is engine:
                return registry
        return None

    @property
    def total_records(self) -> int:
        return sum(len(t.records) for _, _, t, _ in self.attached)

    @property
    def total_dropped(self) -> int:
        return sum(t.dropped for _, _, t, _ in self.attached)

    # -- attribution --------------------------------------------------------

    def pio_segments(self) -> List[Segment]:
        """PIO attribution of the first engine with a complete store path.

        Rigs that move exactly one posted store (the Fig. 10 loopback)
        decompose cleanly; engines without a store->commit path are
        skipped.  Returns [] when no engine qualifies.
        """
        for _, _, tracer, _ in self.attached:
            try:
                return attribute_pio(tracer.records)
            except AttributionError:
                continue
        return []

    # -- export -------------------------------------------------------------

    def _trace_tuples(self):
        tuples = []
        for label, _, tracer, _ in self.attached:
            segments: List[Segment] = []
            try:
                segments = attribute_pio(tracer.records)
            except AttributionError:
                pass
            tuples.append((label, tracer.records, segments))
        return tuples

    def _metric_tuples(self):
        return [(label, registry, engine.now_ps)
                for label, engine, _, registry in self.attached]

    def perfetto_trace(self) -> dict:
        """The merged Perfetto document (one process per engine)."""
        return exporters.perfetto_trace(self._trace_tuples())

    def write_trace(self, path: str) -> None:
        """Write the merged Perfetto JSON trace to ``path``."""
        exporters.write_perfetto(path, self._trace_tuples())

    def metrics_document(self) -> dict:
        """The merged metrics document (one entry per engine)."""
        return exporters.metrics_document(self._metric_tuples())

    def write_metrics(self, path: str) -> None:
        """Write the merged metrics JSON to ``path``."""
        exporters.write_metrics(path, self._metric_tuples())

    def render_metrics(self) -> str:
        """Terminal-friendly dump of every attached registry."""
        return exporters.render_metrics(self._metric_tuples())
