"""Critical-path analysis of collective schedules (§III-D, §V).

A TCA collective is a schedule of flagged puts: each step ends when the
last receiver observes its completion flag, and the whole collective is
as fast as the chain of those last arrivals.  :func:`analyze` walks the
``coll-put`` / ``coll-wait`` trace records one collective emitted
(:mod:`repro.collectives.ring` decomposes every flagged put into wire
time and channel-queue wait) and rebuilds that chain: one
:class:`StepReport` per flag, naming the critical node, the dominating
component of its step — channel-queue wait, wire time, or the
flag-store ordering stall between payload completion and the poll that
saw it — and every other node's slack.

The serialized step count is itself a paper quantity: a dual-ring
allreduce must show N-1 steps against the flat ring's 2(N-1)
(anchor ``dual-ring-critpath-steps``).

Use :func:`trace_collective` to run a collective under a private
recorder; it forwards to any tracer already installed, so it composes
with ``--trace-out`` / :class:`~repro.obs.session.Observability`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.collectives.ring import (FLAG_AG, FLAG_BARRIER, FLAG_BCAST,
                                    FLAG_RS, FLAG_X)
from repro.sim.trace import TraceRecord, Tracer

#: Trace kinds the analyzer consumes (emitted by repro.collectives.ring).
PUT_KIND = "coll-put"
WAIT_KIND = "coll-wait"

#: The three components a step's critical receive decomposes into.
COMPONENTS = ("queue", "wire", "flag-stall")


def decode_flag(flag: int) -> Tuple[str, int]:
    """Map a flag index to its (phase, step) per the ring.py flag plan."""
    if FLAG_RS <= flag < FLAG_AG:
        return "reduce-scatter", flag - FLAG_RS
    if FLAG_AG <= flag < FLAG_X:
        return "allgather", flag - FLAG_AG
    if flag == FLAG_X:
        return "exchange", 0
    if flag == FLAG_BCAST:
        return "broadcast", 0
    if flag >= FLAG_BARRIER:
        return "barrier", flag - FLAG_BARRIER
    return "flag", flag


def _node_of(component: str) -> int:
    """Node id from a ``coll.n<id>`` component label."""
    return int(component.rpartition("n")[2])


@dataclass(frozen=True)
class StepReport:
    """One schedule step: the window between its first put launch and
    the last receiver's flag observation."""

    phase: str
    step: int
    flag: int
    start_ps: int
    end_ps: int
    critical_node: int
    #: Decomposition of the critical node's receive: channel-queue wait
    #: and wire time of the put that fed it, then the ordering stall
    #: between that put completing and the poll observing the flag.
    queue_ps: int
    wire_ps: int
    stall_ps: int
    dominant: str
    #: node -> picoseconds it finished ahead of the critical node.
    slack_ps: Dict[int, int] = field(default_factory=dict)

    @property
    def dur_ps(self) -> int:
        return self.end_ps - self.start_ps

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "step": self.step,
            "flag": self.flag,
            "start_ps": self.start_ps,
            "dur_ps": self.dur_ps,
            "critical_node": self.critical_node,
            "queue_ps": self.queue_ps,
            "wire_ps": self.wire_ps,
            "stall_ps": self.stall_ps,
            "dominant": self.dominant,
            "slack_ps": {str(k): v
                         for k, v in sorted(self.slack_ps.items())},
        }


class CritPathReport:
    """The serialized dependency chain of one collective."""

    def __init__(self, steps: List[StepReport]):
        self.steps = sorted(steps, key=lambda s: (s.start_ps, s.flag))

    @property
    def step_count(self) -> int:
        """Serialized steps on the critical path (N-1 for dual-ring
        allreduce, 2(N-1) flat — the §III-D schedule argument)."""
        return len(self.steps)

    @property
    def total_ps(self) -> int:
        if not self.steps:
            return 0
        return (max(s.end_ps for s in self.steps)
                - min(s.start_ps for s in self.steps))

    def dominant_counts(self) -> Dict[str, int]:
        """How many steps each component dominated."""
        counts = {name: 0 for name in COMPONENTS}
        for step in self.steps:
            counts[step.dominant] = counts.get(step.dominant, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "tca-bench-critpath/1",
            "step_count": self.step_count,
            "total_ps": self.total_ps,
            "dominant": self.dominant_counts(),
            "steps": [s.to_dict() for s in self.steps],
        }

    def render(self) -> str:
        """Terminal table, one row per serialized step."""
        header = (f"{'phase':<15} {'step':>4} {'dur_ns':>9} {'crit':>4} "
                  f"{'queue_ns':>9} {'wire_ns':>9} {'stall_ns':>9}  dominant")
        lines = [header, "-" * len(header)]
        for s in self.steps:
            lines.append(
                f"{s.phase:<15} {s.step:>4} {s.dur_ps / 1000:>9.1f} "
                f"{s.critical_node:>4} {s.queue_ps / 1000:>9.1f} "
                f"{s.wire_ps / 1000:>9.1f} {s.stall_ps / 1000:>9.1f}"
                f"  {s.dominant}")
        dom = ", ".join(f"{k} x{v}" for k, v in self.dominant_counts().items()
                        if v)
        lines.append("")
        lines.append(f"{self.step_count} serialized steps, "
                     f"{self.total_ps / 1000:.1f} ns total ({dom})")
        return "\n".join(lines)


def analyze(records: List[TraceRecord]) -> CritPathReport:
    """Rebuild the per-step dependency chain from collective records.

    Both rings of a dual-ring schedule reuse the same step flags
    concurrently, so grouping by flag naturally merges them into one
    serialized step — which is exactly the schedule-length the paper
    counts.
    """
    puts: Dict[int, List[TraceRecord]] = {}
    waits: Dict[int, List[TraceRecord]] = {}
    for record in records:
        if record.kind == PUT_KIND:
            puts.setdefault(record.detail["flag"], []).append(record)
        elif record.kind == WAIT_KIND:
            waits.setdefault(record.detail["flag"], []).append(record)

    steps = []
    for flag in sorted(set(puts) | set(waits)):
        phase, index = decode_flag(flag)
        flag_puts = puts.get(flag, [])
        flag_waits = waits.get(flag, [])
        spans = flag_puts or flag_waits
        start_ps = min(r.start_ps for r in spans)
        finishers = flag_waits or flag_puts
        end_ps = max(r.time_ps for r in finishers)
        # Critical node: the last to observe its flag (ties -> lowest id,
        # via the stable max over records sorted by node).
        ranked = sorted(finishers,
                        key=lambda r: (r.time_ps, -_node_of(r.component)))
        critical = _node_of(ranked[-1].component)
        feeding = next((r for r in flag_puts
                        if r.detail.get("dst") == critical), None)
        if feeding is not None:
            queue_ps = int(feeding.detail["queue_ps"])
            wire_ps = int(feeding.detail["wire_ps"])
            stall_ps = max(0, end_ps - feeding.time_ps)
        else:
            # Bare flag store (barrier rounds): the wait is all stall.
            queue_ps = wire_ps = 0
            stall_ps = max(0, end_ps - start_ps)
        dominant = max(zip((queue_ps, wire_ps, stall_ps), COMPONENTS))[1]
        slack = {_node_of(r.component): end_ps - r.time_ps
                 for r in flag_waits}
        steps.append(StepReport(
            phase=phase, step=index, flag=flag, start_ps=start_ps,
            end_ps=end_ps, critical_node=critical, queue_ps=queue_ps,
            wire_ps=wire_ps, stall_ps=stall_ps, dominant=dominant,
            slack_ps=slack))
    return CritPathReport(steps)


class CollectiveRecorder(Tracer):
    """A tracer that keeps only ``coll-*`` records, forwarding
    everything to any tracer that was already installed."""

    def __init__(self, chain: Optional[Any] = None):
        super().__init__(enabled=True, max_records=None)
        self.chain = chain

    def emit(self, time_ps: int, component: str, kind: str,
             **detail: Any) -> None:
        if self.chain is not None:
            self.chain.emit(time_ps, component, kind, **detail)
        if kind.startswith("coll-"):
            super().emit(time_ps, component, kind, **detail)


@contextlib.contextmanager
def record_collective(engine):
    """Install a :class:`CollectiveRecorder` on ``engine`` for a block."""
    recorder = CollectiveRecorder(chain=engine.tracer)
    engine.tracer = recorder
    try:
        yield recorder
    finally:
        engine.tracer = recorder.chain


def trace_collective(engine, fn: Callable[[], Any]
                     ) -> Tuple[Any, CritPathReport]:
    """Run ``fn()`` (which drives one collective on ``engine``) under a
    private recorder; returns ``(fn's result, critical-path report)``."""
    with record_collective(engine) as recorder:
        result = fn()
    return result, analyze(recorder.records)
