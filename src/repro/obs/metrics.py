"""Counters, time-weighted gauges, histograms, and their registry.

The registry is the quantitative half of :mod:`repro.obs` (the tracer is
the event half): components increment counters for discrete happenings
(TLPs forwarded, chains completed), sample gauges for instantaneous state
whose *time-weighted* average matters (link busy/idle, egress queue
depth), and feed histograms with per-item durations (chain latency).

Everything is pure bookkeeping in simulated time — no engine events are
scheduled, so attaching a registry can never perturb a measurement.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence


class Metric:
    """Base: a named instrument owned by one registry."""

    def __init__(self, name: str):
        self.name = name

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - abstract


class Counter(Metric):
    """A monotonically increasing count (events, bytes...)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (defaults to one event)."""
        self.value += n

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge(Metric):
    """A sampled level whose **time-weighted** statistics matter.

    ``set(value, time_ps)`` records the level from ``time_ps`` onward; the
    mean integrates level x duration, so a link that is busy (1) for 30 ns
    out of a 100 ns window reports a 0.3 utilization no matter how many
    samples were taken.  The observation window starts at the first sample.
    """

    def __init__(self, name: str, clock: Optional[Callable[[], int]] = None):
        super().__init__(name)
        self._clock = clock
        self.last: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0
        self._start_ps: Optional[int] = None
        self._last_ps: Optional[int] = None
        self._integral = 0.0  # sum of level * dt since _start_ps

    def _now(self, time_ps: Optional[int]) -> int:
        if time_ps is not None:
            return time_ps
        if self._clock is None:
            raise ValueError(f"gauge {self.name!r} has no clock; "
                             "pass time_ps explicitly")
        return self._clock()

    def set(self, value: float, time_ps: Optional[int] = None) -> None:
        """Record that the level is ``value`` from ``time_ps`` onward."""
        t = self._now(time_ps)
        if self._last_ps is not None:
            self._integral += self.last * (t - self._last_ps)
        else:
            self._start_ps = t
        self._last_ps = t
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self.samples += 1

    def mean(self, now_ps: Optional[int] = None) -> Optional[float]:
        """Time-weighted average over [first sample, ``now_ps``]."""
        if self._last_ps is None:
            return None
        t = self._now(now_ps)
        span = t - self._start_ps
        if span <= 0:
            return float(self.last)
        return (self._integral + self.last * (t - self._last_ps)) / span

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "gauge", "last": self.last,
                               "min": self.min, "max": self.max,
                               "samples": self.samples}
        try:
            out["mean"] = self.mean(now_ps)
        except ValueError:
            out["mean"] = None
        return out


class Histogram(Metric):
    """A distribution of observed values (durations, sizes...).

    Values are kept verbatim — experiment runs observe at most a few
    hundred thousand items, and exact percentiles beat bucket error when
    the point is to *explain* a latency budget.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one value."""
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> Optional[float]:
        if not self.values:
            return None
        return sum(self.values) / len(self.values)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, Any]:
        """count/mean/min/p50/p90/p99/max in one dict."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": min(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": max(self.values),
        }

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "histogram"}
        out.update(self.summary())
        return out


class MetricsRegistry:
    """Get-or-create home for one engine's instruments.

    ``clock`` (usually ``lambda: engine.now_ps``) stamps gauge samples so
    call sites never pass time explicitly on the hot path.
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock = clock
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} is a "
                             f"{type(metric).__name__}, not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, clock=self._clock)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        """All instruments as plain JSON-ready data, sorted by name."""
        return {name: self._metrics[name].to_dict(now_ps)
                for name in self.names()}

    def render_text(self, now_ps: Optional[int] = None) -> str:
        """Flat ``name key=value ...`` lines for terminal consumption."""
        lines = []
        for name, data in self.to_dict(now_ps).items():
            kind = data.pop("type")
            items = " ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in data.items() if v is not None)
            lines.append(f"{name} [{kind}] {items}")
        return "\n".join(lines)
