"""Counters, time-weighted gauges, histograms, and their registry.

The registry is the quantitative half of :mod:`repro.obs` (the tracer is
the event half): components increment counters for discrete happenings
(TLPs forwarded, chains completed), sample gauges for instantaneous state
whose *time-weighted* average matters (link busy/idle, egress queue
depth), and feed histograms with per-item durations (chain latency).

Everything is pure bookkeeping in simulated time — no engine events are
scheduled, so attaching a registry can never perturb a measurement.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence


class Metric:
    """Base: a named instrument owned by one registry."""

    def __init__(self, name: str):
        self.name = name

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        raise NotImplementedError  # pragma: no cover - abstract


class Counter(Metric):
    """A monotonically increasing count (events, bytes...)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (defaults to one event)."""
        self.value += n

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge(Metric):
    """A sampled level whose **time-weighted** statistics matter.

    ``set(value, time_ps)`` records the level from ``time_ps`` onward; the
    mean integrates level x duration, so a link that is busy (1) for 30 ns
    out of a 100 ns window reports a 0.3 utilization no matter how many
    samples were taken.  The observation window starts at the first sample.
    """

    def __init__(self, name: str, clock: Optional[Callable[[], int]] = None):
        super().__init__(name)
        self._clock = clock
        self.last: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0
        self._start_ps: Optional[int] = None
        self._last_ps: Optional[int] = None
        self._integral = 0.0  # sum of level * dt since _start_ps

    def _now(self, time_ps: Optional[int]) -> int:
        if time_ps is not None:
            return time_ps
        if self._clock is None:
            raise ValueError(f"gauge {self.name!r} has no clock; "
                             "pass time_ps explicitly")
        return self._clock()

    def set(self, value: float, time_ps: Optional[int] = None) -> None:
        """Record that the level is ``value`` from ``time_ps`` onward."""
        # _now() inlined: set() runs on per-TLP paths, one call frame less.
        if time_ps is None:
            if self._clock is None:
                raise ValueError(f"gauge {self.name!r} has no clock; "
                                 "pass time_ps explicitly")
            time_ps = self._clock()
        last_ps = self._last_ps
        if last_ps is not None:
            self._integral += self.last * (time_ps - last_ps)
        else:
            self._start_ps = time_ps
        self._last_ps = time_ps
        self.last = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.samples += 1

    def mean(self, now_ps: Optional[int] = None) -> Optional[float]:
        """Time-weighted average over [first sample, ``now_ps``].

        With no clock wired and ``now_ps`` omitted, the window closes at
        the *last sample time* instead of failing — the mean over every
        observed transition is always computable, so exporters never have
        to drop it.
        """
        if self._last_ps is None:
            return None
        if now_ps is not None:
            t = now_ps
        elif self._clock is not None:
            t = self._clock()
        else:
            t = self._last_ps
        span = t - self._start_ps
        if span <= 0:
            return float(self.last)
        return (self._integral + self.last * (t - self._last_ps)) / span

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        return {"type": "gauge", "last": self.last,
                "min": self.min, "max": self.max,
                "samples": self.samples, "mean": self.mean(now_ps)}


class Histogram(Metric):
    """A distribution of observed values (durations, sizes...).

    By default values are kept verbatim — experiment runs observe at most
    a few hundred thousand items, and exact percentiles beat bucket error
    when the point is to *explain* a latency budget.

    Long-running jobs (chaos soaks, hour-scale sweeps) instead pass a
    ``reservoir`` size: the histogram then keeps a uniform random sample
    of that many values (Vitter's Algorithm R) in bounded memory.
    ``count``, ``mean``, ``min`` and ``max`` stay exact; percentiles are
    estimated from the reservoir.  Sampling uses a private RNG seeded from
    the metric name, so runs stay deterministic, and draws happen only in
    bookkeeping — never on the engine — so measurements are unperturbed.
    """

    def __init__(self, name: str, reservoir: Optional[int] = None):
        super().__init__(name)
        if reservoir is not None and reservoir <= 0:
            raise ValueError(f"histogram {name!r}: reservoir size must be "
                             f"positive, got {reservoir}")
        self.reservoir = reservoir
        self.values: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Record one value (O(1) memory when a reservoir is set)."""
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if self.reservoir is None or len(self.values) < self.reservoir:
            self.values.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.reservoir:
                self.values[slot] = value

    @property
    def count(self) -> int:
        """Exact number of observations (not the reservoir occupancy)."""
        return self._count

    def mean(self) -> Optional[float]:
        """Exact mean over every observation."""
        if not self._count:
            return None
        return self._sum / self._count

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100].

        p=0 and p=100 return the exact observed min/max even when a
        reservoir is set — the extremes are tracked outside the sample,
        so they never degrade with sampling.
        """
        if not self.values:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, Any]:
        """count/mean/min/p50/p90/p99/max in one dict.

        count/mean/min/max are exact even in reservoir mode; the
        percentiles come from the (possibly sampled) ``values``.
        """
        if not self._count:
            return {"count": 0}
        return {
            "count": self._count,
            "mean": self.mean(),
            "min": self._min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self._max,
        }

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "histogram"}
        out.update(self.summary())
        return out


class MetricsRegistry:
    """Get-or-create home for one engine's instruments.

    ``clock`` (usually ``lambda: engine.now_ps``) stamps gauge samples so
    call sites never pass time explicitly on the hot path.
    ``histogram_reservoir`` caps every histogram created through this
    registry at that many sampled values (bounded memory for long runs);
    ``None`` keeps the default store-everything behaviour.
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 histogram_reservoir: Optional[int] = None):
        self._clock = clock
        self._histogram_reservoir = histogram_reservoir
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(f"metric {name!r} is a "
                             f"{type(metric).__name__}, not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, clock=self._clock)

    def histogram(self, name: str,
                  reservoir: Optional[int] = None) -> Histogram:
        if reservoir is None:
            reservoir = self._histogram_reservoir
        return self._get(name, Histogram, reservoir=reservoir)

    def names(self) -> Sequence[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self, now_ps: Optional[int] = None) -> Dict[str, Any]:
        """All instruments as plain JSON-ready data, sorted by name."""
        return {name: self._metrics[name].to_dict(now_ps)
                for name in self.names()}

    def render_text(self, now_ps: Optional[int] = None) -> str:
        """Flat ``name key=value ...`` lines for terminal consumption."""
        lines = []
        for name, data in self.to_dict(now_ps).items():
            kind = data.pop("type")
            items = " ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in data.items() if v is not None)
            lines.append(f"{name} [{kind}] {items}")
        return "\n".join(lines)
