"""Wall-clock run telemetry: a second clock domain for the PR 1 exporters.

Every tracer in :mod:`repro.sim.trace` records *simulated* picoseconds.
A suite run also has a wall-clock story — workers forking, entries
queueing, the cache answering — and that story fits the very same
:class:`~repro.sim.trace.TraceRecord` / Perfetto machinery, just with a
different meaning for the timestamp: a :class:`RunLog` stamps records
with **host nanoseconds since the log opened, scaled to the exporter's
picosecond unit** (1 ns of wall time = 1000 "ps"), so
``tca-bench suite --trace-out`` produces a Perfetto file where one
nanosecond of wall clock renders exactly like one nanosecond of
simulated time would.

The log also owns a wall-clock :class:`~repro.obs.metrics.MetricsRegistry`
(cache hit/miss latency histograms, worker gauges) whose gauge clock is
the same scaled wall clock.

Cross-process spans: worker processes report *offsets from the parent's
origin*.  ``time.perf_counter_ns`` reads ``CLOCK_MONOTONIC`` on the
platforms we run on, which is machine-wide, and fork workers inherit the
origin directly — good enough for a timeline whose spans are
milliseconds long.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import exporters
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecord

#: Scale between the wall clock (ns) and TraceRecord's unit (ps).
PS_PER_WALL_NS = 1000


class RunLog:
    """Wall-clock spans + instants + metrics for one run of something."""

    def __init__(self, label: str = "suite",
                 clock_ns: Callable[[], int] = time.perf_counter_ns):
        self.label = label
        self._clock_ns = clock_ns
        self.origin_ns = clock_ns()
        self.records: List[TraceRecord] = []
        self.metrics = MetricsRegistry(clock=self.now_ps)

    # -- the wall clock, in the exporter's unit ----------------------------

    def now_ps(self) -> int:
        """Scaled nanoseconds since the log opened."""
        return (self._clock_ns() - self.origin_ns) * PS_PER_WALL_NS

    # -- recording ----------------------------------------------------------

    def event(self, component: str, kind: str, **detail: Any) -> None:
        """One instant record at the current wall time."""
        self.records.append(
            TraceRecord(self.now_ps(), component, kind, detail))

    def add_span(self, component: str, kind: str, start_ps: int,
                 dur_ps: int, **detail: Any) -> None:
        """One complete span from explicit (scaled) wall timestamps.

        Follows the tracer's span convention: the record is stamped at
        the interval's *end* and carries ``dur_ps``.
        """
        detail["dur_ps"] = int(dur_ps)
        self.records.append(
            TraceRecord(int(start_ps) + int(dur_ps), component, kind,
                        detail))

    @contextlib.contextmanager
    def span(self, component: str, kind: str, **detail: Any):
        """Context manager recording the enclosed block as a span."""
        start = self.now_ps()
        try:
            yield
        finally:
            self.add_span(component, kind, start, self.now_ps() - start,
                          **detail)

    def timed(self, component: str, kind: str, fn: Callable[[], Any],
              **detail: Any) -> Any:
        """Run ``fn()`` inside a span; returns its result."""
        with self.span(component, kind, **detail):
            return fn()

    # -- export -------------------------------------------------------------

    def perfetto_trace(self) -> Dict[str, Any]:
        """The Perfetto document for this wall-clock domain alone."""
        return exporters.perfetto_trace([(self.label, self.records, None)])

    def write_trace(self, path: str) -> None:
        """Write the Perfetto-loadable JSON for this run to ``path``."""
        exporters.write_perfetto(path, [(self.label, self.records, None)])

    def summary(self) -> Dict[str, Any]:
        """Compact JSON telemetry: record count + every metric's dump."""
        return {
            "label": self.label,
            "records": len(self.records),
            "wall_ms": round(self.now_ps() / PS_PER_WALL_NS / 1e6, 3),
            "metrics": self.metrics.to_dict(self.now_ps()),
        }


def worker_clock(origin_ns: int,
                 clock_ns: Callable[[], int] = time.perf_counter_ns
                 ) -> Callable[[], int]:
    """A ``now_ps`` for worker processes sharing the parent's origin."""
    return lambda: (clock_ns() - origin_ns) * PS_PER_WALL_NS
