"""Latency attribution: decompose a measured interval into named segments.

The paper's argument is about *where* time goes — the 782 ns PIO budget
(Fig. 10), descriptor-fetch serialization (Fig. 8/9), interrupt overhead
(Fig. 9's 70 %-at-4-requests).  The walkers here turn the structured
events of an instrumented run into an ordered list of :class:`Segment`
objects that **partition** the measured interval, so the segment durations
always sum exactly to the end-to-end number the benchmark reported.

Two walkers:

* :func:`attribute_pio` follows a single posted store hop by hop (store
  issue, serialization, link hops, crossbar/switch routing, memory
  commit) — the Fig. 10 decomposition;
* :func:`attribute_dma` splits one DMA chain into its coarse phases
  (doorbell, descriptor fetch, data streaming, completion interrupt) —
  the Fig. 9 overhead story.

Both raise :class:`AttributionError` when the trace does not contain the
expected milestones (tracing disabled, or multiple transfers interleaved —
attribution is a single-transfer analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.obs import events
from repro.sim.trace import TraceRecord

# Segment names (the taxonomy docs/observability.md documents).
SEG_STORE_ISSUE = "store-issue"
SEG_DOORBELL = "doorbell"
SEG_DESC_FETCH = "descriptor-fetch"
SEG_TLP_SERIALIZATION = "tlp-serialization"
SEG_LOCAL_HOP = "local-hop"
SEG_CABLE_HOP = "cable-hop"
SEG_ROUTING = "routing"
SEG_MEM_COMMIT = "memory-commit"
SEG_DATA_STREAM = "data-stream"
SEG_IRQ = "completion-interrupt"
SEG_UNATTRIBUTED = "unattributed"

#: Ring-port name suffixes: a hop that *lands* on one of these crossed an
#: external PCIe cable (see the naming conventions in obs/events.py).
_RING_SUFFIXES = (".E", ".W", ".S")


class AttributionError(ReproError):
    """The trace lacks the milestones the walker needs."""


@dataclass(frozen=True)
class Segment:
    """One named slice of a measured interval."""

    name: str
    component: str
    start_ps: int
    end_ps: int

    @property
    def dur_ps(self) -> int:
        return self.end_ps - self.start_ps

    def __str__(self) -> str:
        return (f"{self.name:<20} {self.component:<28} "
                f"{self.dur_ps / 1000:9.3f} ns")


def total_ps(segments: Sequence[Segment]) -> int:
    """Sum of all segment durations (== measured interval by invariant)."""
    return sum(s.dur_ps for s in segments)


def render(segments: Sequence[Segment]) -> str:
    """Human-readable budget table, with the total on the last line."""
    lines = [str(s) for s in segments]
    lines.append(f"{'total':<20} {'':<28} {total_ps(segments) / 1000:9.3f} ns")
    return "\n".join(lines)


def _milestones(records: Iterable[TraceRecord], kinds: frozenset,
                start_ps: Optional[int],
                end_ps: Optional[int]) -> List[TraceRecord]:
    picked = [r for r in records if r.kind in kinds
              and (start_ps is None or r.time_ps >= start_ps)
              and (end_ps is None or r.time_ps <= end_ps)]
    picked.sort(key=lambda r: r.time_ps)
    return picked


def _is_ring_port(component: str) -> bool:
    return component.endswith(_RING_SUFFIXES)


def _classify_pair(prev: TraceRecord, nxt: TraceRecord) -> Segment:
    """Name the interval between two consecutive PIO milestones."""
    pk, nk = prev.kind, nxt.kind
    if pk == events.PIO_STORE and nk == events.TLP_SENT:
        return Segment(SEG_STORE_ISSUE, prev.component,
                       prev.time_ps, nxt.time_ps)
    if pk == events.TLP_SENT and nk == events.LINK_TX:
        return Segment(SEG_TLP_SERIALIZATION, nxt.component,
                       prev.time_ps, nxt.time_ps)
    if pk == events.LINK_TX and nk == events.TLP_RECV:
        if "cpul" in prev.component:
            # CPU-to-root-complex attach: this hop *is* the store-buffer
            # drain cost (calibration: cpu_store_issue_ps).
            name = SEG_STORE_ISSUE
        elif _is_ring_port(nxt.component):
            name = SEG_CABLE_HOP
        else:
            name = SEG_LOCAL_HOP
        return Segment(name, prev.component, prev.time_ps, nxt.time_ps)
    if pk == events.TLP_RECV and nk == events.TLP_SENT:
        return Segment(SEG_ROUTING, prev.component,
                       prev.time_ps, nxt.time_ps)
    if pk == events.TLP_RECV and nk == events.MEM_COMMIT:
        return Segment(SEG_MEM_COMMIT, nxt.component,
                       prev.time_ps, nxt.time_ps)
    return Segment(SEG_UNATTRIBUTED, f"{prev.component}->{nxt.component}",
                   prev.time_ps, nxt.time_ps)


def attribute_pio(records: Iterable[TraceRecord],
                  keep_zero: bool = False) -> List[Segment]:
    """Decompose one posted-store flight into hop-by-hop segments.

    Follows the first ``pio-store`` through to the first ``mem-commit``
    after it.  The returned segments partition [store, commit], so their
    durations sum exactly to the one-way latency the experiment reports.
    Zero-length segments (e.g. a store accepted in the same picosecond)
    are dropped unless ``keep_zero``.
    """
    records = list(records)
    stores = [r for r in records if r.kind == events.PIO_STORE]
    if not stores:
        raise AttributionError("no pio-store event in trace "
                               "(tracing disabled, or no PIO traffic)")
    t0 = stores[0].time_ps
    commits = [r for r in records
               if r.kind == events.MEM_COMMIT and r.time_ps >= t0]
    if not commits:
        raise AttributionError("no mem-commit event after the pio-store; "
                               "the store never reached a memory completer")
    t_end = commits[0].time_ps
    marks = _milestones(records, events.PIO_MILESTONES, t0, t_end)
    # Keep a single store/commit even if later traffic overlaps the window.
    marks = [m for m in marks
             if (m.kind != events.PIO_STORE or m.time_ps == t0)
             and (m.kind != events.MEM_COMMIT or m.time_ps == t_end)]
    segments = [_classify_pair(a, b) for a, b in zip(marks, marks[1:])]
    if not keep_zero:
        segments = [s for s in segments if s.dur_ps > 0]
    return segments


def attribute_dma(records: Iterable[TraceRecord],
                  channel: Optional[int] = None) -> List[Segment]:
    """Split one DMA chain into its coarse phases.

    Segments: ``doorbell`` (register store to engine wake-up),
    ``descriptor-fetch`` (wake-up to the first descriptor batch landing),
    ``data-stream`` (first batch to chain completion; later fetches are
    prefetched under it, which is the chaining DMA's whole point), and
    ``completion-interrupt`` (chain done to the driver's handler reading
    the TSC).  The sum equals the driver-reported doorbell->IRQ elapsed.
    """
    def wanted(r: TraceRecord) -> bool:
        if channel is not None and "channel" in r.detail:
            return r.detail["channel"] == channel
        return True

    marks = [r for r in records
             if r.kind in events.DMA_MILESTONES and wanted(r)]
    marks.sort(key=lambda r: r.time_ps)

    def first(kind: str) -> TraceRecord:
        for r in marks:
            if r.kind == kind:
                return r
        raise AttributionError(f"no {kind!r} event in trace")

    doorbell = first(events.DOORBELL)
    start = first(events.DMA_START)
    fetch = first(events.DESC_FETCH)
    done = first(events.DMA_DONE)
    irq = first(events.IRQ_COMPLETE)
    chip = start.component
    return [
        Segment(SEG_DOORBELL, doorbell.component,
                doorbell.time_ps, start.time_ps),
        Segment(SEG_DESC_FETCH, chip, start.time_ps, fetch.time_ps),
        Segment(SEG_DATA_STREAM, chip, fetch.time_ps, done.time_ps),
        Segment(SEG_IRQ, irq.component, done.time_ps, irq.time_ps),
    ]


def pio_reference_budget(calib) -> List[tuple]:
    """(segment name, calibration constant, picoseconds) anchor table.

    Maps the segment taxonomy onto the constants in
    :mod:`repro.model.calibration` that explain them, so a measured PIO
    decomposition can be checked anchor by anchor (docs/observability.md
    walks through the comparison).
    """
    return [
        (SEG_STORE_ISSUE, "cpu_store_issue_ps", calib.cpu_store_issue_ps),
        (SEG_ROUTING, "switch_forward_ps", calib.switch_forward_ps),
        (SEG_LOCAL_HOP, "local_link_latency_ps",
         calib.local_link_latency_ps),
        (SEG_CABLE_HOP, "cable_link_latency_ps",
         calib.cable_link_latency_ps),
        (SEG_ROUTING, "peach2_route_latency_ps",
         calib.peach2_route_latency_ps),
        (SEG_MEM_COMMIT, "host_mem_write_commit_ps",
         calib.host_mem_write_commit_ps),
    ]
