"""repro.obs — cross-cutting observability for the simulated fabric.

Seven pieces, layered on the :class:`repro.sim.trace.Tracer` hook that
every component already funnels through:

* :mod:`repro.obs.events` — the structured-event taxonomy (kind names);
* :mod:`repro.obs.metrics` — counters, time-weighted gauges, histograms;
* :mod:`repro.obs.attribution` — decompose a measured interval into named
  segments (the Fig. 10 / Fig. 9 latency budgets);
* :mod:`repro.obs.exporters` — Chrome/Perfetto trace JSON + metrics dumps;
* :mod:`repro.obs.profile` — wall-clock engine profiler (where does host
  time go, per component/event-kind/callback site);
* :mod:`repro.obs.runlog` — wall-clock run telemetry for the suite runner
  (worker timelines, cache latencies) in a second Perfetto clock domain;
* :mod:`repro.obs.critpath` — collective critical-path analyzer (which
  dependency dominates each allreduce step: queue, wire, or flag stall).

:class:`Observability` ties them together; the bench CLI exposes it as
``tca-bench <exp> --trace out.json --metrics out.json``.  Disabled-path
cost at every instrumentation site is one attribute check (``engine.tracer
is None`` / ``engine.metrics is None`` / ``engine.profiler is None``), so
paper numbers are unchanged.
"""

from repro.obs.attribution import (AttributionError, Segment, attribute_dma,
                                   attribute_pio, pio_reference_budget,
                                   render, total_ps)
from repro.obs.critpath import (CollectiveRecorder, CritPathReport,
                                StepReport, analyze, record_collective,
                                trace_collective)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.profile import EngineProfiler, ProfileEntry, ProfileReport
from repro.obs.runlog import PS_PER_WALL_NS, RunLog
from repro.obs.session import Observability

__all__ = [
    "AttributionError",
    "CollectiveRecorder",
    "Counter",
    "CritPathReport",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "PS_PER_WALL_NS",
    "ProfileEntry",
    "ProfileReport",
    "RunLog",
    "Segment",
    "StepReport",
    "analyze",
    "attribute_dma",
    "attribute_pio",
    "pio_reference_budget",
    "record_collective",
    "render",
    "total_ps",
    "trace_collective",
]
