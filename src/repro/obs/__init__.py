"""repro.obs — cross-cutting observability for the simulated fabric.

Four pieces, layered on the :class:`repro.sim.trace.Tracer` hook that
every component already funnels through:

* :mod:`repro.obs.events` — the structured-event taxonomy (kind names);
* :mod:`repro.obs.metrics` — counters, time-weighted gauges, histograms;
* :mod:`repro.obs.attribution` — decompose a measured interval into named
  segments (the Fig. 10 / Fig. 9 latency budgets);
* :mod:`repro.obs.exporters` — Chrome/Perfetto trace JSON + metrics dumps.

:class:`Observability` ties them together; the bench CLI exposes it as
``tca-bench <exp> --trace out.json --metrics out.json``.  Disabled-path
cost at every instrumentation site is one attribute check (``engine.tracer
is None`` / ``engine.metrics is None``), so paper numbers are unchanged.
"""

from repro.obs.attribution import (AttributionError, Segment, attribute_dma,
                                   attribute_pio, pio_reference_budget,
                                   render, total_ps)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.session import Observability

__all__ = [
    "AttributionError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Segment",
    "attribute_dma",
    "attribute_pio",
    "pio_reference_budget",
    "render",
    "total_ps",
]
