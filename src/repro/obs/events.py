"""The structured-event taxonomy emitted by the instrumented fabric.

Every instrumented component funnels through ``engine.trace(component,
kind, **detail)``; this module is the single authority on ``kind`` names
so tools (exporters, the latency-attribution walker, tests) never match
free-hand strings.

Instant events carry only a timestamp; *span* events additionally carry
``dur_ps`` in their detail and, per the :mod:`repro.sim.trace` convention,
are stamped at the instant the work **ended**.

Component-name conventions the attribution walker relies on:

* PEACH2 ring ports are named ``<chip>.E`` / ``<chip>.W`` / ``<chip>.S``,
  so a hop *into* one of them is an external-cable hop;
* the CPU-to-root-complex link is named ``<node>.cpul`` (see
  ``hw/node.py``), so the hop across it is the store-issue cost.
"""

from __future__ import annotations

# -- PCIe substrate ---------------------------------------------------------

#: A port queued a packet on its attached link (instant, at egress).
TLP_SENT = "tlp-sent"
#: A port's ingress loop picked a delivered packet up (instant).
TLP_RECV = "tlp-recv"
#: One packet finished wire serialization on a link direction (span).
LINK_TX = "link-tx"
#: A switch routed one packet ingress->egress (instant, after the
#: issue-interval occupancy).
SWITCH_FORWARD = "switch-forward"
#: The QPI bridge carried one packet across the socket boundary (instant;
#: detail ``cls`` is ``cpu`` or ``p2p``).
QPI_CROSS = "qpi-cross"

# -- PEACH2 -----------------------------------------------------------------

#: The chip's comparator router dispatched one packet (instant).
ROUTE = "route"
#: A DMA channel woke up after its doorbell (instant).
DMA_START = "dma-start"
#: A chain finished (instant; detail has ``aborted``).
DMA_DONE = "dma-done"
#: One descriptor-table batch landed in the prefetch queue (span).
DESC_FETCH = "desc-fetch"
#: The engine dispatched one descriptor to a data stream (instant).
DESC_EXEC = "desc-exec"

# -- host side --------------------------------------------------------------

#: The CPU issued one uncached store (instant; the PIO path's t0).
PIO_STORE = "pio-store"
#: An MSI arrived at the CPU complex (instant).
MSI = "msi"
#: A posted write became poll-visible in a memory completer (instant).
MEM_COMMIT = "mem-commit"
#: The driver rang a DMA doorbell register (instant; chain t0).
DOORBELL = "doorbell"
#: The driver's completion handler ran and read the TSC (instant).
IRQ_COMPLETE = "irq-complete"

# -- communication library --------------------------------------------------

#: One TCA put finished, any transport (span; detail ``transport``).
TCA_PUT = "tca-put"

#: Event kinds the PIO latency-attribution walker treats as milestones.
PIO_MILESTONES = frozenset({PIO_STORE, TLP_SENT, LINK_TX, TLP_RECV,
                            MEM_COMMIT})

#: Event kinds the DMA phase-attribution walker treats as milestones.
DMA_MILESTONES = frozenset({DOORBELL, DMA_START, DESC_FETCH, DMA_DONE,
                            IRQ_COMPLETE})
