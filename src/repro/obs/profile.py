"""Opt-in wall-clock profiler for the event-engine dispatch loop.

Every other instrument in :mod:`repro.obs` watches *simulated* time; this
one watches where *host* time goes while the engine dispatches events —
the targeting instrument for engine-speed work (ROADMAP item 1).  An
:class:`EngineProfiler` installs itself as ``engine.profiler``; the
engine then routes :meth:`~repro.sim.core.Engine.step` through a timed
copy of the dispatch body and reports each step's wall-clock nanoseconds
here, attributed to the callback that ran:

* **component** — who the callback belongs to: a process name with
  instance digits folded away (``flow``, ``coll.pio``), a signal family,
  or the owning class (``PCIeLink``, ``DMAEngine``),
* **kind** — what sort of callback it was (``process``, ``signal``,
  ``method``, ``function``),
* **site** — the exact code location (``module.qualname``), the thing a
  human optimizes.

Wall time *between* dispatches — experiment harness code, rig
construction, result analysis — is charged to an explicit
:data:`HARNESS` component, so a report attributes (essentially) the
whole profiling window and the dispatch/harness split is itself a
reported number.

Profiling is pure wall-clock bookkeeping: it schedules nothing and never
reads or advances simulated time, so a profiled run's simulated outputs
are picosecond-identical to an unprofiled one.  With no profiler
installed the entire cost is one ``is not None`` check per step.
"""

from __future__ import annotations

import contextlib
import re
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sim.core import (Engine, Process, Signal, register_engine_observer,
                            unregister_engine_observer)

#: Instance digits in process/signal names ("flow3", "node0.sched.17")
#: fragment hotspot aggregation; fold them away for the component label.
_DIGITS = re.compile(r"\d+")

#: Component label for wall time spent *between* dispatches — experiment
#: harness code, rig construction, analysis.  Attributing it explicitly
#: keeps the whole profiling window accounted for and shows how much of
#: a run is even engine time (the ROADMAP item 1 denominator).
HARNESS = "(harness)"
_HARNESS_KEY = (HARNESS, "gap", "outside engine dispatch")


def _fold(name: str) -> str:
    """Collapse instance digits: ``coll0.pio`` -> ``coll.pio``."""
    return _DIGITS.sub("", name).strip(".") or "anonymous"


@dataclass(frozen=True)
class ProfileEntry:
    """Aggregated dispatch cost of one (component, kind, site) bucket."""

    component: str
    kind: str
    site: str
    calls: int
    wall_ns: int

    @property
    def wall_s(self) -> float:
        return self.wall_ns / 1e9

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "kind": self.kind,
            "site": self.site,
            "calls": self.calls,
            "wall_ns": self.wall_ns,
        }


class ProfileReport:
    """One profiling window's hotspots, ready to rank and render."""

    def __init__(self, entries: List[ProfileEntry], window_ns: int,
                 engines: int, label: str = ""):
        self.entries = sorted(entries, key=lambda e: (-e.wall_ns, e.site))
        self.window_ns = window_ns
        self.engines = engines
        self.label = label

    @property
    def attributed_ns(self) -> int:
        """Window nanoseconds attributed to named components."""
        return sum(e.wall_ns for e in self.entries)

    @property
    def harness_ns(self) -> int:
        """Nanoseconds spent outside dispatch (the HARNESS bucket)."""
        return sum(e.wall_ns for e in self.entries
                   if e.component == HARNESS)

    @property
    def dispatch_ns(self) -> int:
        """Nanoseconds spent inside engine dispatch proper."""
        return self.attributed_ns - self.harness_ns

    @property
    def calls(self) -> int:
        """Dispatched events (HARNESS gap intervals excluded)."""
        return sum(e.calls for e in self.entries if e.component != HARNESS)

    @property
    def attributed_fraction(self) -> float:
        """Attributed share of the whole profiling window, in [0, 1]."""
        if self.window_ns <= 0:
            return 0.0
        return min(1.0, self.attributed_ns / self.window_ns)

    def top(self, n: int = 10) -> List[ProfileEntry]:
        """The ``n`` most expensive buckets, by attributed wall time."""
        return self.entries[:n]

    def by_component(self) -> Dict[str, int]:
        """Component -> attributed nanoseconds, hottest first."""
        totals: Dict[str, int] = {}
        for e in self.entries:
            totals[e.component] = totals.get(e.component, 0) + e.wall_ns
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def to_dict(self, top_n: int = 25) -> Dict[str, Any]:
        return {
            "schema": "tca-bench-profile/1",
            "label": self.label,
            "window_ns": self.window_ns,
            "attributed_ns": self.attributed_ns,
            "attributed_fraction": round(self.attributed_fraction, 4),
            "dispatch_ns": self.dispatch_ns,
            "harness_ns": self.harness_ns,
            "engines": self.engines,
            "calls": self.calls,
            "components": self.by_component(),
            "hotspots": [e.to_dict() for e in self.top(top_n)],
        }

    def render(self, top_n: int = 15) -> str:
        """Terminal hotspot table, hottest site first."""
        attributed = self.attributed_ns or 1
        header = (f"{'component':<18} {'kind':<9} {'calls':>9} "
                  f"{'wall_ms':>9} {'%':>6}  site")
        lines = [header, "-" * len(header)]
        for e in self.top(top_n):
            lines.append(
                f"{e.component:<18.18} {e.kind:<9} {e.calls:>9} "
                f"{e.wall_ns / 1e6:>9.2f} {100 * e.wall_ns / attributed:>5.1f}%"
                f"  {e.site}")
        lines.append("")
        lines.append(
            f"attributed {self.attributed_ns / 1e6:.2f} ms of a "
            f"{self.window_ns / 1e6:.2f} ms window "
            f"({100 * self.attributed_fraction:.1f}%) across "
            f"{self.engines} engine(s): "
            f"{self.dispatch_ns / 1e6:.2f} ms dispatch "
            f"({self.calls} events), "
            f"{self.harness_ns / 1e6:.2f} ms harness")
        return "\n".join(lines)


class EngineProfiler:
    """Attributes per-step dispatch wall time; install via ``session()``.

    One profiler may span any number of engines (an experiment builds a
    fresh engine per rig); buckets aggregate across all of them.  Nested
    ``engine.step()`` re-entry from inside a callback would double-count
    the outer step — no simulation code does that, and the profiler is a
    diagnostic, not an accounting system.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self.clock = clock
        self.engines = 0
        self._window_ns = 0
        self._t_start: Optional[int] = None
        #: Wall timestamp where the last attributed interval ended; the
        #: next dispatch charges the gap since then to HARNESS.
        self._last_ns: Optional[int] = None
        #: (component, kind, site) -> [calls, wall_ns]
        self._buckets: Dict[Tuple[str, str, str], List[int]] = {}
        #: function object -> (kind, site, static component or None)
        self._sites: Dict[Any, Tuple[str, str, Optional[str]]] = {}

    # -- wiring -------------------------------------------------------------

    def install(self, engine: Engine) -> None:
        """Hook one engine's dispatch loop."""
        engine.profiler = self
        self.engines += 1

    @contextlib.contextmanager
    def session(self):
        """Profile every :class:`Engine` constructed inside the block.

        Also opens the measurement window: ``attributed_fraction``
        relates dispatch time to wall time spent inside the block.
        """
        register_engine_observer(self.install)
        self.start()
        try:
            yield self
        finally:
            self.stop()
            unregister_engine_observer(self.install)

    def start(self) -> None:
        if self._t_start is None:
            self._t_start = self.clock()
            self._last_ns = self._t_start

    def stop(self) -> None:
        if self._t_start is not None:
            now = self.clock()
            self._window_ns += now - self._t_start
            self._t_start = None
            # Close out the tail: window time after the last dispatch is
            # harness time too.
            if self._last_ns is not None and now > self._last_ns:
                gap = self._buckets.setdefault(_HARNESS_KEY, [0, 0])
                gap[0] += 1
                gap[1] += now - self._last_ns
            self._last_ns = None

    # -- the hot path (called once per profiled event) ----------------------

    def record(self, callback: Callable[..., None], t0_ns: int,
               t1_ns: int) -> None:
        """Attribute one dispatched step (``t0..t1`` on the wall clock)
        to its callback; the gap since the previous step — experiment
        code, rig construction, result analysis — goes to the
        :data:`HARNESS` bucket, so the whole window stays attributed."""
        last = self._last_ns
        if last is not None and t0_ns > last:
            gap = self._buckets.get(_HARNESS_KEY)
            if gap is None:
                self._buckets[_HARNESS_KEY] = [1, t0_ns - last]
            else:
                gap[0] += 1
                gap[1] += t0_ns - last
        self._last_ns = t1_ns
        elapsed_ns = t1_ns - t0_ns
        owner = getattr(callback, "__self__", None)
        func = callback.__func__ if owner is not None else callback
        cached = self._sites.get(func)
        if cached is None:
            cached = self._classify(func, owner)
            self._sites[func] = cached
        kind, site, static_component = cached
        if static_component is not None:
            component = static_component
        elif isinstance(owner, (Process, Signal)):
            component = _fold(owner.name)
        else:
            component = type(owner).__name__
        bucket = self._buckets.get((component, kind, site))
        if bucket is None:
            self._buckets[(component, kind, site)] = [1, elapsed_ns]
        else:
            bucket[0] += 1
            bucket[1] += elapsed_ns

    @staticmethod
    def _classify(func: Any, owner: Any) -> Tuple[str, str, Optional[str]]:
        """(kind, site, static component) for one callback function.

        The static component is ``None`` when it depends on the owner
        instance (process/signal names, model class names) and must be
        resolved per call.
        """
        module = getattr(func, "__module__", None) or "?"
        qualname = getattr(func, "__qualname__", None) or repr(func)
        site = f"{module}.{qualname}"
        if owner is None:
            return "function", site, module.rsplit(".", 1)[-1]
        if isinstance(owner, Process):
            return "process", site, None
        if isinstance(owner, Signal):
            return "signal", site, None
        return "method", site, None

    # -- results ------------------------------------------------------------

    @property
    def window_ns(self) -> int:
        """Wall nanoseconds of the (possibly still open) window."""
        if self._t_start is not None:
            return self._window_ns + self.clock() - self._t_start
        return self._window_ns

    def report(self, label: str = "") -> ProfileReport:
        """Snapshot the buckets into a rankable report."""
        entries = [ProfileEntry(component, kind, site, calls, wall_ns)
                   for (component, kind, site), (calls, wall_ns)
                   in self._buckets.items()]
        return ProfileReport(entries, self.window_ns, self.engines,
                             label=label)

    def clear(self) -> None:
        """Drop all buckets, the window, and the engine count."""
        self._buckets.clear()
        self._sites.clear()
        self._window_ns = 0
        self._t_start = None
        self._last_ns = None
        self.engines = 0
