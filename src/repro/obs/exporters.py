"""Exporters: Chrome/Perfetto trace-event JSON and metrics dumps.

The trace exporter emits the `Trace Event Format`_ understood by
``chrome://tracing`` and https://ui.perfetto.dev: each simulation engine
becomes a *process* (pid), each emitting component a *thread* (tid), span
records become complete ("X") events and everything else instant ("i")
events.  Timestamps are microseconds (the format's unit) converted from
the engine's integer picoseconds.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.attribution import Segment
from repro.sim.trace import TraceRecord

_PS_PER_US = 1_000_000.0

#: Perfetto sorts same-name tracks by tid; keep attribution on top.
ATTRIBUTION_TRACK = "latency-attribution"


def _ts_us(time_ps: int) -> float:
    return time_ps / _PS_PER_US


def _args(detail: Dict[str, Any]) -> Dict[str, Any]:
    return {k: (v if isinstance(v, (int, float, bool, str)) else str(v))
            for k, v in detail.items()}


class _TidAllocator:
    """Stable component -> tid mapping in first-seen order."""

    def __init__(self) -> None:
        self._tids: Dict[str, int] = {}
        self.metadata: List[dict] = []

    def tid(self, pid: int, component: str) -> int:
        tid = self._tids.get(component)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[component] = tid
            self.metadata.append({
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_name", "args": {"name": component},
            })
        return tid


def record_events(records: Iterable[TraceRecord], pid: int,
                  tids: Optional[_TidAllocator] = None) -> List[dict]:
    """Trace-event dicts for one engine's records."""
    tids = tids or _TidAllocator()
    out: List[dict] = []
    for r in records:
        tid = tids.tid(pid, r.component)
        dur_ps = r.detail.get("dur_ps")
        if dur_ps:
            out.append({"ph": "X", "pid": pid, "tid": tid, "name": r.kind,
                        "ts": _ts_us(r.start_ps), "dur": _ts_us(dur_ps),
                        "args": _args(r.detail)})
        else:
            out.append({"ph": "i", "pid": pid, "tid": tid, "name": r.kind,
                        "ts": _ts_us(r.time_ps), "s": "t",
                        "args": _args(r.detail)})
    out.extend(tids.metadata)
    return out


def segment_events(segments: Sequence[Segment], pid: int,
                   tid: int = 0) -> List[dict]:
    """A latency-attribution track: one complete event per segment."""
    out: List[dict] = [{
        "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
        "args": {"name": ATTRIBUTION_TRACK},
    }]
    for seg in segments:
        out.append({"ph": "X", "pid": pid, "tid": tid, "name": seg.name,
                    "ts": _ts_us(seg.start_ps), "dur": _ts_us(seg.dur_ps),
                    "args": {"component": seg.component,
                             "dur_ns": seg.dur_ps / 1000.0}})
    return out


def perfetto_trace(engines: Sequence[tuple]) -> Dict[str, Any]:
    """Build the full trace document.

    ``engines`` is a sequence of ``(label, records, segments)`` triples —
    one per simulation engine; ``segments`` may be None/empty when no
    latency attribution applies to that engine.
    """
    events: List[dict] = []
    for pid, (label, records, segments) in enumerate(engines, start=1):
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": label}})
        tids = _TidAllocator()
        if segments:
            events.extend(segment_events(segments, pid, tid=0))
        events.extend(record_events(records, pid, tids))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_perfetto(path: str, engines: Sequence[tuple]) -> None:
    """Write the Perfetto-loadable JSON trace to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(perfetto_trace(engines), fh, indent=1)


#: Version tag of the document written by :func:`write_metrics`.
METRICS_SCHEMA = "tca-bench-metrics/1"


def metrics_document(engines: Sequence[tuple]) -> Dict[str, Any]:
    """Metrics dump: ``{"schema", "engines": [{"label", ...}...]}``.

    ``engines`` is a sequence of ``(label, registry, now_ps)`` triples.
    """
    return {"schema": METRICS_SCHEMA, "engines": [
        {"label": label, "now_ps": now_ps,
         "metrics": registry.to_dict(now_ps)}
        for label, registry, now_ps in engines
    ]}


def write_metrics(path: str, engines: Sequence[tuple]) -> None:
    """Write the metrics JSON document to ``path`` (keys sorted, so two
    dumps of the same state diff clean)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics_document(engines), fh, indent=1, sort_keys=True)


def render_metrics(engines: Sequence[tuple]) -> str:
    """Text rendering of every engine's registry (terminal dump)."""
    blocks = []
    for label, registry, now_ps in engines:
        text = registry.render_text(now_ps)
        blocks.append(f"== {label} (t={now_ps / 1000:.3f} ns) ==\n{text}"
                      if text else f"== {label} == (no metrics)")
    return "\n\n".join(blocks)
