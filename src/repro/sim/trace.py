"""Lightweight tracing and counters for simulation components.

Hardware models call :meth:`Tracer.emit` at interesting moments (TLP sent,
descriptor fetched, interrupt raised...).  Tracing is off by default and
costs one attribute check per call site when disabled — a disabled tracer
does **no** work at all, not even counting.

Span convention: a record whose ``detail`` carries ``dur_ps`` describes an
interval that *ended* at ``time_ps`` after lasting ``dur_ps`` picoseconds
(components emit once the modelled work completes).  Exporters and the
latency-attribution walker in :mod:`repro.obs` rely on this.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(slots=True)
class TraceRecord:
    """One trace event: time, component, event kind, free-form details."""

    time_ps: int
    component: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def start_ps(self) -> int:
        """Interval start for span records (``time_ps`` for instants)."""
        return self.time_ps - int(self.detail.get("dur_ps", 0))

    def __str__(self) -> str:
        items = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time_ps / 1000:12.3f}ns] {self.component}: {self.kind} {items}"


class Tracer:
    """Collects :class:`TraceRecord` objects and per-kind counters."""

    def __init__(self, enabled: bool = False, max_records: Optional[int] = 100_000):
        self.enabled = enabled
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        #: Records rejected because :attr:`max_records` was reached.  The
        #: per-kind counters keep counting past the cap, so a nonzero value
        #: here flags that ``records`` is an incomplete window.
        self.dropped = 0

    def emit(self, time_ps: int, component: str, kind: str, **detail: Any) -> None:
        """Record one event (a strict no-op when disabled)."""
        if not self.enabled:
            return
        self.counters[kind] += 1
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time_ps, component, kind, detail))

    def count(self, kind: str) -> int:
        """Number of events of ``kind`` seen so far (while enabled)."""
        return self.counters[kind]

    def clear(self) -> None:
        """Drop all records, counters and the dropped tally."""
        self.records.clear()
        self.counters.clear()
        self.dropped = 0

    def dump(self) -> str:
        """All records as a newline-joined string (for debugging)."""
        return "\n".join(str(r) for r in self.records)
