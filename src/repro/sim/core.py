"""Discrete-event engine, signals and coroutine processes.

Design notes
------------
* The event heap orders by ``(time_ps, sequence)``; the monotonically
  increasing sequence number makes simultaneous events fire in the order
  they were scheduled, which keeps runs deterministic.
* Processes are plain generators.  They may yield:

  - an ``int`` or :class:`Delay` — resume after that many picoseconds,
  - a :class:`Signal` — resume when it fires (receiving its value),
  - another :class:`Process` — resume when it finishes (receiving its
    return value); exceptions raised by the child are re-raised in the
    waiter.

* There is deliberately no wall-clock anywhere: simulated time only.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import (Any, Callable, Deque, Generator, Iterable, List, Optional,
                    Set, Tuple)

from repro.errors import SimulationError
from repro.units import PS_PER_NS

ProcessGen = Generator[Any, Any, Any]


class Delay:
    """Yieldable timeout of ``duration_ps`` picoseconds."""

    __slots__ = ("duration_ps",)

    def __init__(self, duration_ps: int):
        if duration_ps < 0:
            raise SimulationError(f"negative delay: {duration_ps}")
        self.duration_ps = int(duration_ps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration_ps}ps)"


class Signal:
    """A one-shot event that processes can wait on.

    A signal remembers that it fired, so waiting on an already-fired signal
    resumes immediately with the stored value.  Firing twice is an error —
    it almost always indicates a protocol bug in a hardware model.

    A pending signal can be cancelled via :meth:`cancel`: its scheduled fire (if any)
    is withdrawn from the event heap, waiters are dropped, and later fires
    become no-ops.  This is how the loser of a wait-with-timeout race is
    retired without padding drain-mode runs to the timer's expiry.
    """

    __slots__ = ("engine", "fired", "cancelled", "value", "_waiters", "name",
                 "_timer")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.fired = False
        self.cancelled = False
        self.value: Any = None
        self.name = name
        # Lazily allocated: most signals fire before anyone waits, and a
        # fresh list per signal shows up in profiles (one Signal per
        # queue operation on the hot path).
        self._waiters: Optional[List[Callable[[Any], None]]] = None
        self._timer: Optional[int] = None

    def fire(self, value: Any = None) -> None:
        """Fire the signal now; waiters resume at the current time."""
        if self.cancelled:
            return
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        self._timer = None
        waiters = self._waiters
        if waiters is not None:
            self._waiters = None
            for callback in waiters:
                self.engine.call_soon(callback, value)

    def fire_after(self, delay_ps: int, value: Any = None) -> None:
        """Schedule the signal to fire ``delay_ps`` from now."""
        self._timer = self.engine.after(delay_ps, self.fire, value)

    def cancel(self) -> None:
        """Retire a pending signal: drop waiters, void any scheduled fire.

        Cancelling an already-fired signal is a no-op (the race was lost
        anyway); cancelling twice is harmless.
        """
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        self._waiters = None
        if self._timer is not None:
            self.engine.cancel_event(self._timer)
            self._timer = None

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the signal fires (or now if it has)."""
        if self.fired:
            self.engine.call_soon(callback, self.value)
        elif not self.cancelled:
            if self._waiters is None:
                self._waiters = [callback]
            else:
                self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return f"Signal({self.name!r}, {state})"


class Process:
    """A running coroutine process; itself yieldable from other processes."""

    __slots__ = ("engine", "generator", "name", "done", "result", "error",
                 "_waiters")

    def __init__(self, engine: "Engine", generator: ProcessGen, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: List[Callable[[Any], None]] = []
        engine.call_soon(self._step, None)

    # -- wiring ------------------------------------------------------------

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(result)`` on completion (signal-compatible API)."""
        if self.done:
            self.engine.call_soon(callback, self.result)
        else:
            self._waiters.append(callback)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self.done = True
        self.result = result
        self.error = error
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.engine.call_soon(callback, result)
        if error is not None and not waiters:
            # Nobody is waiting; surface the failure instead of losing it.
            raise error

    def _step(self, send_value: Any, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                yielded = self.generator.throw(throw)
            else:
                yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            self._finish(None, exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        # Ordered by frequency on the hot path: bare-int delays and
        # Signals dominate; explicit Delay objects and Processes are rare.
        if isinstance(yielded, int):
            self.engine.after(yielded, self._step, None)
        elif isinstance(yielded, Signal):
            yielded.add_callback(self._step)
        elif isinstance(yielded, Delay):
            self.engine.after(yielded.duration_ps, self._step, None)
        elif isinstance(yielded, Process):
            child = yielded

            def resume(result: Any, _child: Process = child) -> None:
                if _child.error is not None:
                    self._step(None, throw=_child.error)
                else:
                    self._step(result)

            child.add_callback(resume)
        else:
            bad = type(yielded).__name__
            self._step(
                None,
                throw=SimulationError(
                    f"process {self.name!r} yielded unsupported {bad}"),
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


#: Callbacks invoked with every newly constructed :class:`Engine`.  An
#: observability session registers one to install its tracer/metrics on
#: each engine the experiments create (see :mod:`repro.obs.session`).
_engine_observers: List[Callable[["Engine"], None]] = []


def register_engine_observer(callback: Callable[["Engine"], None]) -> None:
    """Call ``callback(engine)`` for every Engine constructed from now on."""
    _engine_observers.append(callback)


def unregister_engine_observer(callback: Callable[["Engine"], None]) -> None:
    """Remove a previously registered engine observer (no-op if absent)."""
    try:
        _engine_observers.remove(callback)
    except ValueError:
        pass


class Engine:
    """The event loop: an integer-picosecond heap scheduler.

    Two internal queues carry events:

    * the **heap**, ordered by ``(time_ps, sequence)``, for anything
      scheduled at a future time;
    * the **ready deque**, a FIFO fast path for :meth:`call_soon` — the
      dominant scheduling call (every signal fire goes through it), which
      never needs heap ordering because it always targets *now*.

    The global sequence number spans both queues, and :meth:`step` always
    picks the lowest ``(time, sequence)`` across them, so the event order
    is bit-identical to a pure-heap scheduler — just cheaper.
    """

    def __init__(self) -> None:
        self._now_ps = 0
        self._sequence = 0
        self._heap: List[Tuple[int, int, Callable[..., None], tuple]] = []
        #: call_soon fast path: (sequence, callback, args), all at now.
        self._ready: Deque[Tuple[int, Callable[..., None], tuple]] = deque()
        #: Sequence numbers of cancelled events, discarded lazily at pop.
        self._cancelled: Set[int] = set()
        self.events_processed = 0
        #: Optional observability hook (repro.sim.trace.Tracer); hardware
        #: models emit routing/DMA/IRQ events through it when set.
        self.tracer = None
        #: Optional metrics hook (repro.obs.metrics.MetricsRegistry);
        #: components sample counters/gauges through it when set.  Like
        #: the tracer, a ``None`` check is the whole disabled-path cost.
        self.metrics = None
        #: Optional fault-injection hook (repro.faults.FaultInjector).
        #: Hardware models consult it at their fault points; when ``None``
        #: (the default) every fault path is skipped entirely, so an
        #: un-faulted run is picosecond-identical to an unhooked one.
        self.faults = None
        #: Optional dispatch profiler (repro.obs.profile.EngineProfiler).
        #: When set, :meth:`step` routes through the timed dispatch body;
        #: when ``None`` the whole cost is one attribute check, and the
        #: event order is identical either way (profiling is wall-clock
        #: bookkeeping only — it never touches simulated time).
        self.profiler = None
        for callback in list(_engine_observers):
            callback(self)

    def trace(self, component: str, kind: str, **detail: Any) -> None:
        """Emit a trace event if a tracer is installed (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now_ps, component, kind, **detail)

    # -- time --------------------------------------------------------------

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ps / PS_PER_NS

    # -- scheduling ----------------------------------------------------------

    def at(self, time_ps: int, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` at absolute simulated time ``time_ps``.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule in the past ({time_ps} < {self._now_ps})")
        token = self._sequence
        heapq.heappush(self._heap, (int(time_ps), token, callback, args))
        self._sequence += 1
        return token

    def after(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` after ``delay_ps`` picoseconds.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        token = self._sequence
        heapq.heappush(self._heap,
                       (self._now_ps + int(delay_ps), token, callback, args))
        self._sequence += 1
        return token

    def call_soon(self, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` at the current time, after pending events.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        token = self._sequence
        self._ready.append((token, callback, args))
        self._sequence += 1
        return token

    def cancel_event(self, token: int) -> None:
        """Withdraw a scheduled event before it runs.

        The event's queue entry is discarded lazily when it reaches the
        front, **without** advancing the clock or counting it in
        ``events_processed`` — a cancelled timer leaves no trace on a
        drain-mode run.  Cancelling an event that already ran is harmless
        (the stale token is ignored).
        """
        self._cancelled.add(token)

    # -- factories -----------------------------------------------------------

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot :class:`Signal`."""
        return Signal(self, name)

    def process(self, generator: ProcessGen, name: str = "") -> Process:
        """Start a coroutine process from a generator."""
        return Process(self, generator, name)

    # -- running ---------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; return False if no runnable event remains.

        Picks the lowest ``(time, sequence)`` across the ready deque and
        the heap; cancelled entries are discarded without running, without
        advancing the clock and without counting.
        """
        if self.profiler is not None:
            return self._step_profiled()
        ready = self._ready
        heap = self._heap
        cancelled = self._cancelled
        while True:
            if ready and (not heap or heap[0][0] > self._now_ps
                          or heap[0][1] > ready[0][0]):
                seq, callback, args = ready.popleft()
                time_ps = self._now_ps
            elif heap:
                time_ps, seq, callback, args = heapq.heappop(heap)
            else:
                return False
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now_ps = time_ps
            self.events_processed += 1
            callback(*args)
            return True

    def _step_profiled(self) -> bool:
        """The :meth:`step` body with wall-clock dispatch timing.

        A deliberate copy of :meth:`step` (same pop logic, same event
        order) so the unprofiled hot path pays nothing beyond the single
        ``profiler is not None`` check.  The whole step — queue pop plus
        callback — is attributed to the callback, so the only dispatch
        time a profiled run cannot attribute is the ``run()`` loop frame
        itself.
        """
        profiler = self.profiler
        clock = profiler.clock
        ready = self._ready
        heap = self._heap
        cancelled = self._cancelled
        t0 = clock()
        while True:
            if ready and (not heap or heap[0][0] > self._now_ps
                          or heap[0][1] > ready[0][0]):
                seq, callback, args = ready.popleft()
                time_ps = self._now_ps
            elif heap:
                time_ps, seq, callback, args = heapq.heappop(heap)
            else:
                return False
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now_ps = time_ps
            self.events_processed += 1
            callback(*args)
            profiler.record(callback, t0, clock())
            return True

    def run(self, until_ps: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queues drain, ``until_ps`` passes, or ``max_events``.

        Returns the simulated time (ps) when the loop stopped.  With
        ``until_ps`` the clock always lands exactly on ``until_ps`` when
        the loop stops for time — whether the next event lies beyond the
        bound or the queues drained early — so drain-to-a-deadline runs
        report consistent windows.  Stopping on ``max_events`` leaves the
        clock at the last processed event.
        """
        processed = 0
        while True:
            # Discard cancelled heads so the until_ps peek below (and the
            # drained-queue exit) only ever see live events.
            ready = self._ready
            cancelled = self._cancelled
            while ready and cancelled and ready[0][0] in cancelled:
                cancelled.discard(ready.popleft()[0])
            if not ready:
                heap = self._heap
                while heap and cancelled and heap[0][1] in cancelled:
                    cancelled.discard(heapq.heappop(heap)[1])
                if not heap:
                    break
                if until_ps is not None and heap[0][0] > until_ps:
                    break
            if max_events is not None and processed >= max_events:
                return self._now_ps
            if not self.step():
                break
            processed += 1
        if until_ps is not None and self._now_ps < until_ps:
            self._now_ps = until_ps
        return self._now_ps

    def run_process(self, generator: ProcessGen, name: str = "") -> Any:
        """Start a process and run the engine until it completes.

        This is the main entry point for "measure one transfer" experiments.
        """
        proc = self.process(generator, name)
        while not proc.done:
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {proc.name!r} is still waiting "
                    "but no events remain")
        if proc.error is not None:
            raise proc.error
        return proc.result


def all_of(engine: Engine, waitables: Iterable[Any]) -> Signal:
    """Signal that fires (with a list of results) when every waitable has.

    Accepts :class:`Signal` and :class:`Process` objects.
    """
    items = list(waitables)
    done = engine.signal("all_of")
    if not items:
        done.fire([])
        return done
    results: List[Any] = [None] * len(items)
    remaining = [len(items)]

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            results[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                done.fire(list(results))

        return callback

    for i, item in enumerate(items):
        item.add_callback(make_callback(i))
    return done


def first_of(engine: Engine, waitables: Iterable[Any]) -> Signal:
    """Signal that fires with ``(index, value)`` of the first waitable.

    Later finishers are ignored (their callbacks find the race already
    decided).  This is the primitive behind every wait-with-timeout: race
    the interesting signal against a timer.

    ``first_of`` never cancels the losers itself — a loser may be shared
    (the completion signal of a chain that outlives one timeout round) —
    but a caller that *owns* a losing :class:`Signal` should
    :meth:`~Signal.cancel` it, or its scheduled events stay in the heap
    and pad drain-mode runs to the timer's full expiry.
    """
    items = list(waitables)
    if not items:
        raise SimulationError("first_of needs at least one waitable")
    done = engine.signal("first_of")

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            if not done.fired:
                done.fire((index, value))

        return callback

    for i, item in enumerate(items):
        item.add_callback(make_callback(i))
    return done
