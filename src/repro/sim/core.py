"""Discrete-event engine, signals and coroutine processes.

Design notes
------------
* Event order is defined by ``(time_ps, sequence)``; the monotonically
  increasing sequence number makes simultaneous events fire in the order
  they were scheduled, which keeps runs deterministic.
* Processes are plain generators.  They may yield:

  - an ``int`` or :class:`Delay` — resume after that many picoseconds,
  - a :class:`Signal` — resume when it fires (receiving its value),
  - another :class:`Process` — resume when it finishes (receiving its
    return value); exceptions raised by the child are re-raised in the
    waiter.

* There is deliberately no wall-clock anywhere: simulated time only.

Dispatch modes
--------------
The engine ships two schedulers that produce **bit-identical** event
orders (see ``docs/performance.md`` for the invariants and the proof
sketch; ``tests/sim/test_dispatch_equivalence.py`` checks every registry
experiment byte-for-byte):

* ``"reference"`` — a pure heap scheduler: every event, including
  :meth:`Engine.call_soon`, is pushed onto the ``(time_ps, sequence)``
  heap.  Slow, obviously correct, and the oracle the differential tests
  compare against.
* ``"fast"`` (the default) — the production path: a FIFO ready deque as
  the *now bucket* for :meth:`Engine.call_soon` (the dominant scheduling
  call — every signal fire lands there and never needs heap ordering), the
  heap only for future timers, fused dispatch loops in
  :meth:`Engine.run` / :meth:`Engine.run_process`, and a batch-advance
  trampoline in :class:`Process` that keeps a resumed coroutine on the
  stack whenever its wakeup is provably the next event.

The default comes from the ``TCA_SIM_DISPATCH`` environment variable and
can be changed per-call-tree with :func:`set_default_dispatch` /
:func:`dispatch_mode`, or per engine with ``Engine(dispatch=...)``.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from contextlib import contextmanager
from typing import (Any, Callable, Deque, Generator, Iterable, Iterator, List,
                    Optional, Set, Tuple)

from repro.errors import SimulationError
from repro.units import PS_PER_NS

ProcessGen = Generator[Any, Any, Any]

#: Recognised scheduler implementations (see module docstring).
DISPATCH_MODES = ("fast", "reference")

#: Sentinel horizon for unbounded runs: far beyond any simulated time the
#: experiments reach, so the batch-advance clock check is a plain integer
#: compare instead of a ``None`` test on the hot path.
_NO_HORIZON = 1 << 200

_default_dispatch = os.environ.get("TCA_SIM_DISPATCH", "fast")
if _default_dispatch not in DISPATCH_MODES:
    raise SimulationError(
        f"TCA_SIM_DISPATCH={_default_dispatch!r} is not one of "
        f"{DISPATCH_MODES}")


def default_dispatch() -> str:
    """The dispatch mode new :class:`Engine` instances get by default."""
    return _default_dispatch


def set_default_dispatch(mode: str) -> str:
    """Set the process-wide default dispatch mode; returns the previous one."""
    global _default_dispatch
    if mode not in DISPATCH_MODES:
        raise SimulationError(
            f"unknown dispatch mode {mode!r}; expected one of "
            f"{DISPATCH_MODES}")
    previous = _default_dispatch
    _default_dispatch = mode
    return previous


@contextmanager
def dispatch_mode(mode: str) -> Iterator[None]:
    """Context manager: every engine built inside uses ``mode``.

    This is how the differential tests run a whole experiment — which
    constructs its engines internally — under the reference scheduler.
    """
    previous = set_default_dispatch(mode)
    try:
        yield
    finally:
        set_default_dispatch(previous)


class Delay:
    """Yieldable timeout of ``duration_ps`` picoseconds."""

    __slots__ = ("duration_ps",)

    def __init__(self, duration_ps: int):
        if duration_ps < 0:
            raise SimulationError(f"negative delay: {duration_ps}")
        self.duration_ps = int(duration_ps)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Delay({self.duration_ps}ps)"


class Signal:
    """A one-shot event that processes can wait on.

    A signal remembers that it fired, so waiting on an already-fired signal
    resumes immediately with the stored value.  Firing twice is an error —
    it almost always indicates a protocol bug in a hardware model.

    A pending signal can be cancelled via :meth:`cancel`: its scheduled fire (if any)
    is withdrawn from the event heap, waiters are dropped, and later fires
    become no-ops.  This is how the loser of a wait-with-timeout race is
    retired without padding drain-mode runs to the timer's expiry.
    """

    __slots__ = ("engine", "fired", "cancelled", "value", "_waiters", "name",
                 "_timer")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.fired = False
        self.cancelled = False
        self.value: Any = None
        self.name = name
        # Lazily allocated: most signals fire before anyone waits, and a
        # fresh list per signal shows up in profiles (one Signal per
        # queue operation on the hot path).
        self._waiters: Optional[List[Callable[[Any], None]]] = None
        self._timer: Optional[int] = None

    @classmethod
    def fired_signal(cls, engine: "Engine", name: str = "",
                     value: Any = None) -> "Signal":
        """Build a signal that is already fired with ``value``.

        Equivalent to ``Signal(engine, name)`` followed by ``fire(value)``
        on a signal nobody has waited on yet — which is the common case in
        the queue primitives (an accepted put, an immediate get, a granted
        slot).  Constructing it fired skips a call layer per operation on
        the hottest allocation path in the simulator.
        """
        signal = cls.__new__(cls)
        signal.engine = engine
        signal.fired = True
        signal.cancelled = False
        signal.value = value
        signal.name = name
        signal._waiters = None
        signal._timer = None
        return signal

    def fire(self, value: Any = None) -> None:
        """Fire the signal now; waiters resume at the current time."""
        if self.cancelled:
            return
        if self.fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.value = value
        self._timer = None
        waiters = self._waiters
        if waiters is not None:
            self._waiters = None
            engine = self.engine
            if engine.fast_dispatch:
                # Inlined call_soon: identical sequence allocation, one
                # ready entry per waiter, minus a method call per fire.
                append = engine._ready.append
                sequence = engine._sequence
                for callback in waiters:
                    append((sequence, callback, (value,)))
                    sequence += 1
                engine._sequence = sequence
            else:
                for callback in waiters:
                    engine.call_soon(callback, value)

    def fire_after(self, delay_ps: int, value: Any = None) -> None:
        """Schedule the signal to fire ``delay_ps`` from now."""
        self._timer = self.engine.after(delay_ps, self.fire, value)

    def cancel(self) -> None:
        """Retire a pending signal: drop waiters, void any scheduled fire.

        Cancelling an already-fired signal is a no-op (the race was lost
        anyway); cancelling twice is harmless.
        """
        if self.fired or self.cancelled:
            return
        self.cancelled = True
        self._waiters = None
        if self._timer is not None:
            self.engine.cancel_event(self._timer)
            self._timer = None

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(value)`` when the signal fires (or now if it has)."""
        if self.fired:
            self.engine.call_soon(callback, self.value)
        elif not self.cancelled:
            if self._waiters is None:
                self._waiters = [callback]
            else:
                self._waiters.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return f"Signal({self.name!r}, {state})"


class Process:
    """A running coroutine process; itself yieldable from other processes."""

    __slots__ = ("engine", "generator", "name", "done", "result", "error",
                 "_waiters")

    def __init__(self, engine: "Engine", generator: ProcessGen, name: str = ""):
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: List[Callable[[Any], None]] = []
        engine.call_soon(self._step, None)

    # -- wiring ------------------------------------------------------------

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Run ``callback(result)`` on completion (signal-compatible API)."""
        if self.done:
            self.engine.call_soon(callback, self.result)
        else:
            self._waiters.append(callback)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self.done = True
        self.result = result
        self.error = error
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.engine.call_soon(callback, result)
        if error is not None and not waiters:
            # Nobody is waiting; surface the failure instead of losing it.
            raise error

    def _step(self, send_value: Any, throw: Optional[BaseException] = None) -> None:
        """Resume the generator; batch-advance while it stays runnable.

        The loop is the fast path's **batch-advance trampoline**.  When
        the generator yields a delay (or an already-fired signal) and its
        wakeup is *provably* the next event — ready deque empty, heap head
        strictly later, horizon not crossed — the scheduler round-trip is
        skipped and the generator resumed right here, after performing
        exactly the bookkeeping dispatch would have: one sequence number
        consumed, the clock advanced to the wakeup time, one event
        counted.  Because every observable the scheduler maintains
        (``(time, sequence)`` order, ``events_processed``, ``now_ps`` at
        each resume) is preserved, a batched run is bit-identical to the
        reference scheduler by construction.  Batching is disabled when a
        profiler wants per-event records or a ``max_events`` bound is
        counting steps (see :attr:`Engine._batch`).
        """
        engine = self.engine
        generator = self.generator
        send = generator.send
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    yielded = generator.throw(exc)
                else:
                    yielded = send(send_value)
            except StopIteration as stop:
                self._finish(stop.value, None)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate to waiters
                self._finish(None, exc)
                return
            # Exact-class dispatch ordered by hot-path frequency (signals
            # from queue operations and bare-int delays dominate); the
            # isinstance chain below keeps the reference semantics for
            # subclasses and bool.
            cls = yielded.__class__
            if cls is Signal:
                if yielded.fired:
                    if engine._batch and not engine._ready:
                        heap = engine._heap
                        if not heap or heap[0][0] > engine._now_ps:
                            engine._sequence += 1
                            engine.events_processed += 1
                            send_value = yielded.value
                            continue
                    engine.call_soon(self._step, yielded.value)
                    return
                if yielded.cancelled:
                    # Reference semantics: add_callback on a cancelled
                    # signal drops the waiter (the process parks forever
                    # unless something else resumes the simulation).
                    return
                waiters = yielded._waiters
                if waiters is None:
                    yielded._waiters = [self._step]
                else:
                    waiters.append(self._step)
                return
            if cls is int or cls is Delay:
                delay_ps = yielded if cls is int else yielded.duration_ps
                if delay_ps >= 0 and engine._batch and not engine._ready:
                    time_ps = engine._now_ps + delay_ps
                    heap = engine._heap
                    if ((not heap or heap[0][0] > time_ps)
                            and time_ps <= engine._horizon):
                        engine._sequence += 1
                        engine._now_ps = time_ps
                        engine.events_processed += 1
                        send_value = None
                        continue
                engine.after(delay_ps, self._step, None)
                return
            if cls is Process:
                self._wait_child(yielded)
                return
            if isinstance(yielded, int):
                engine.after(yielded, self._step, None)
                return
            if isinstance(yielded, Signal):
                yielded.add_callback(self._step)
                return
            if isinstance(yielded, Delay):
                engine.after(yielded.duration_ps, self._step, None)
                return
            if isinstance(yielded, Process):
                self._wait_child(yielded)
                return
            bad = type(yielded).__name__
            throw = SimulationError(
                f"process {self.name!r} yielded unsupported {bad}")
            send_value = None

    def _wait_child(self, child: "Process") -> None:
        def resume(result: Any, _child: "Process" = child) -> None:
            if _child.error is not None:
                self._step(None, throw=_child.error)
            else:
                self._step(result)

        child.add_callback(resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"Process({self.name!r}, {state})"


#: Callbacks invoked with every newly constructed :class:`Engine`.  An
#: observability session registers one to install its tracer/metrics on
#: each engine the experiments create (see :mod:`repro.obs.session`).
_engine_observers: List[Callable[["Engine"], None]] = []


def register_engine_observer(callback: Callable[["Engine"], None]) -> None:
    """Call ``callback(engine)`` for every Engine constructed from now on."""
    _engine_observers.append(callback)


def unregister_engine_observer(callback: Callable[["Engine"], None]) -> None:
    """Remove a previously registered engine observer (no-op if absent)."""
    try:
        _engine_observers.remove(callback)
    except ValueError:
        pass


class Engine:
    """The event loop: an integer-picosecond scheduler.

    In the default ``"fast"`` mode two internal queues carry events:

    * the **heap**, ordered by ``(time_ps, sequence)``, for anything
      scheduled at a future time;
    * the **ready deque**, a FIFO *now bucket* for :meth:`call_soon` — the
      dominant scheduling call (every signal fire goes through it), which
      never needs heap ordering because it always targets *now*.

    The global sequence number spans both queues, and :meth:`step` always
    picks the lowest ``(time, sequence)`` across them, so the event order
    is bit-identical to a pure-heap scheduler — just cheaper.  In
    ``"reference"`` mode :meth:`call_soon` pushes onto the heap instead and
    the ready deque stays empty: that *is* the pure-heap scheduler, kept
    as the oracle for the differential tests.
    """

    def __init__(self, dispatch: Optional[str] = None) -> None:
        if dispatch is None:
            dispatch = _default_dispatch
        elif dispatch not in DISPATCH_MODES:
            raise SimulationError(
                f"unknown dispatch mode {dispatch!r}; expected one of "
                f"{DISPATCH_MODES}")
        #: Which scheduler this engine runs ("fast" or "reference").
        self.dispatch = dispatch
        self.fast_dispatch = dispatch == "fast"
        self._now_ps = 0
        self._sequence = 0
        self._heap: List[Tuple[int, int, Callable[..., None], tuple]] = []
        #: call_soon fast path: (sequence, callback, args), all at now.
        self._ready: Deque[Tuple[int, Callable[..., None], tuple]] = deque()
        #: Sequence numbers of cancelled events, discarded lazily at pop
        #: and cleared wholesale whenever the queues drain (every token
        #: left at that point is stale — see :meth:`cancel_event`).
        self._cancelled: Set[int] = set()
        self.events_processed = 0
        #: Batch-advance gate for the :class:`Process` trampoline: true
        #: only when this is a fast-dispatch engine, no profiler wants
        #: per-event records, and no ``max_events`` bound is counting
        #: individual steps.  Kept as one precomputed flag so the
        #: trampoline check is a single attribute load.
        self._batch = self.fast_dispatch
        self._batch_inhibit = False
        #: Clock bound for batch-advance; ``run(until_ps=...)`` lowers it
        #: so a batched delay never carries the clock past the bound.
        self._horizon = _NO_HORIZON
        #: Optional observability hook (repro.sim.trace.Tracer); hardware
        #: models emit routing/DMA/IRQ events through it when set.
        self.tracer = None
        #: Optional metrics hook (repro.obs.metrics.MetricsRegistry);
        #: components sample counters/gauges through it when set.  Like
        #: the tracer, a ``None`` check is the whole disabled-path cost.
        self.metrics = None
        #: Optional fault-injection hook (repro.faults.FaultInjector).
        #: Hardware models consult it at their fault points; when ``None``
        #: (the default) every fault path is skipped entirely, so an
        #: un-faulted run is picosecond-identical to an unhooked one.
        self.faults = None
        #: Optional dispatch profiler (repro.obs.profile.EngineProfiler),
        #: held behind a property: installing one routes :meth:`step`
        #: through the timed dispatch body *and* turns batch-advance off
        #: so every event gets its own attribution record.  The event
        #: order is identical either way (profiling is wall-clock
        #: bookkeeping only — it never touches simulated time).
        self._profiler = None
        for callback in list(_engine_observers):
            callback(self)

    def trace(self, component: str, kind: str, **detail: Any) -> None:
        """Emit a trace event if a tracer is installed (cheap when not)."""
        if self.tracer is not None:
            self.tracer.emit(self._now_ps, component, kind, **detail)

    # -- dispatch-mode plumbing --------------------------------------------

    @property
    def profiler(self):
        """The installed :class:`~repro.obs.profile.EngineProfiler` or None."""
        return self._profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self._profiler = value
        self._refresh_batch()

    def _refresh_batch(self) -> None:
        self._batch = (self.fast_dispatch and self._profiler is None
                       and not self._batch_inhibit)

    # -- time --------------------------------------------------------------

    @property
    def now_ps(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now_ps

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ps / PS_PER_NS

    # -- scheduling ----------------------------------------------------------

    def at(self, time_ps: int, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` at absolute simulated time ``time_ps``.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule in the past ({time_ps} < {self._now_ps})")
        token = self._sequence
        heapq.heappush(self._heap, (int(time_ps), token, callback, args))
        self._sequence += 1
        return token

    def after(self, delay_ps: int, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` after ``delay_ps`` picoseconds.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps}")
        token = self._sequence
        heapq.heappush(self._heap,
                       (self._now_ps + int(delay_ps), token, callback, args))
        self._sequence += 1
        return token

    def call_soon(self, callback: Callable[..., None], *args: Any) -> int:
        """Run ``callback(*args)`` at the current time, after pending events.

        Returns an opaque token accepted by :meth:`cancel_event`.
        """
        token = self._sequence
        if self.fast_dispatch:
            self._ready.append((token, callback, args))
        else:
            heapq.heappush(self._heap,
                           (self._now_ps, token, callback, args))
        self._sequence += 1
        return token

    def cancel_event(self, token: int) -> None:
        """Withdraw a scheduled event before it runs.

        The event's queue entry is discarded lazily when it reaches the
        front, **without** advancing the clock or counting it in
        ``events_processed`` — a cancelled timer leaves no trace on a
        drain-mode run.

        Cancelling an event that already ran — or one that was already
        cancelled — is a documented no-op: sequence numbers are never
        reused, so a stale token can never suppress a future event.  Stale
        tokens are remembered only until the queues next drain, at which
        point the cancellation set is cleared wholesale (every token left
        in it is, by construction, stale).
        """
        self._cancelled.add(token)

    # -- factories -----------------------------------------------------------

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot :class:`Signal`."""
        return Signal(self, name)

    def process(self, generator: ProcessGen, name: str = "") -> Process:
        """Start a coroutine process from a generator."""
        return Process(self, generator, name)

    # -- running ---------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; return False if no runnable event remains.

        Picks the lowest ``(time, sequence)`` across the ready deque and
        the heap; cancelled entries are discarded without running, without
        advancing the clock and without counting.  Note that one ``step``
        may execute more than one *event* when batch-advance is active —
        ``events_processed`` is the authoritative event count.
        """
        if self._profiler is not None:
            return self._step_profiled()
        ready = self._ready
        heap = self._heap
        cancelled = self._cancelled
        while True:
            if ready and (not heap or heap[0][0] > self._now_ps
                          or heap[0][1] > ready[0][0]):
                seq, callback, args = ready.popleft()
                time_ps = self._now_ps
            elif heap:
                time_ps, seq, callback, args = heapq.heappop(heap)
            else:
                if cancelled:
                    cancelled.clear()
                return False
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now_ps = time_ps
            self.events_processed += 1
            callback(*args)
            return True

    def _step_profiled(self) -> bool:
        """The :meth:`step` body with wall-clock dispatch timing.

        A deliberate copy of :meth:`step` (same pop logic, same event
        order) so the unprofiled hot path pays nothing beyond the single
        ``profiler is not None`` check.  The whole step — queue pop plus
        callback — is attributed to the callback, so the only dispatch
        time a profiled run cannot attribute is the ``run()`` loop frame
        itself.  Batch-advance is off whenever a profiler is installed
        (see :attr:`profiler`), so every event gets its own record.
        """
        profiler = self._profiler
        clock = profiler.clock
        ready = self._ready
        heap = self._heap
        cancelled = self._cancelled
        t0 = clock()
        while True:
            if ready and (not heap or heap[0][0] > self._now_ps
                          or heap[0][1] > ready[0][0]):
                seq, callback, args = ready.popleft()
                time_ps = self._now_ps
            elif heap:
                time_ps, seq, callback, args = heapq.heappop(heap)
            else:
                if cancelled:
                    cancelled.clear()
                return False
            if cancelled and seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now_ps = time_ps
            self.events_processed += 1
            callback(*args)
            profiler.record(callback, t0, clock())
            return True

    def run(self, until_ps: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queues drain, ``until_ps`` passes, or ``max_events``.

        Returns the simulated time (ps) when the loop stopped.  With
        ``until_ps`` the clock always lands exactly on ``until_ps`` when
        the loop stops for time — whether the next event lies beyond the
        bound or the queues drained early — so drain-to-a-deadline runs
        report consistent windows.  Stopping on ``max_events`` leaves the
        clock at the last processed event.
        """
        if until_ps is None and max_events is None:
            # Unbounded drain — the hot case.  Fused dispatch loop: the
            # step() body inlined with the queues bound to locals, one
            # Python frame for the whole run instead of one per event.
            if self._profiler is None:
                ready = self._ready
                heap = self._heap
                cancelled = self._cancelled
                pop_ready = ready.popleft
                heappop = heapq.heappop
                while True:
                    if ready and (not heap or heap[0][0] > self._now_ps
                                  or heap[0][1] > ready[0][0]):
                        seq, callback, args = pop_ready()
                        time_ps = self._now_ps
                    elif heap:
                        time_ps, seq, callback, args = heappop(heap)
                    else:
                        break
                    if cancelled and seq in cancelled:
                        cancelled.discard(seq)
                        continue
                    self._now_ps = time_ps
                    self.events_processed += 1
                    callback(*args)
                if cancelled:
                    cancelled.clear()
                return self._now_ps
            while self.step():
                pass
            return self._now_ps
        # Bounded run.  An until_ps bound lowers the batch-advance horizon
        # so a batched delay cannot carry the clock past it; a max_events
        # bound counts individual steps, so batch-advance (which executes
        # several events inside one step) is suspended for the duration.
        if until_ps is not None:
            self._horizon = until_ps
        if max_events is not None:
            self._batch_inhibit = True
            self._refresh_batch()
        try:
            processed = 0
            while True:
                # Discard cancelled heads so the until_ps peek below (and
                # the drained-queue exit) only ever see live events.
                ready = self._ready
                cancelled = self._cancelled
                while ready and cancelled and ready[0][0] in cancelled:
                    cancelled.discard(ready.popleft()[0])
                if not ready:
                    heap = self._heap
                    while heap and cancelled and heap[0][1] in cancelled:
                        cancelled.discard(heapq.heappop(heap)[1])
                    if not heap:
                        break
                    if until_ps is not None and heap[0][0] > until_ps:
                        break
                if max_events is not None and processed >= max_events:
                    return self._now_ps
                if not self.step():
                    break
                processed += 1
            if until_ps is not None and self._now_ps < until_ps:
                self._now_ps = until_ps
            return self._now_ps
        finally:
            if until_ps is not None:
                self._horizon = _NO_HORIZON
            if max_events is not None:
                self._batch_inhibit = False
                self._refresh_batch()

    def run_process(self, generator: ProcessGen, name: str = "") -> Any:
        """Start a process and run the engine until it completes.

        This is the main entry point for "measure one transfer" experiments.
        """
        proc = self.process(generator, name)
        if self._profiler is None:
            # Fused dispatch loop; see run() for the rationale.
            ready = self._ready
            heap = self._heap
            cancelled = self._cancelled
            pop_ready = ready.popleft
            heappop = heapq.heappop
            while not proc.done:
                if ready and (not heap or heap[0][0] > self._now_ps
                              or heap[0][1] > ready[0][0]):
                    seq, callback, args = pop_ready()
                    time_ps = self._now_ps
                elif heap:
                    time_ps, seq, callback, args = heappop(heap)
                else:
                    raise SimulationError(
                        f"deadlock: process {proc.name!r} is still waiting "
                        "but no events remain")
                if cancelled and seq in cancelled:
                    cancelled.discard(seq)
                    continue
                self._now_ps = time_ps
                self.events_processed += 1
                callback(*args)
        else:
            while not proc.done:
                if not self.step():
                    raise SimulationError(
                        f"deadlock: process {proc.name!r} is still waiting "
                        "but no events remain")
        if proc.error is not None:
            raise proc.error
        return proc.result


def all_of(engine: Engine, waitables: Iterable[Any]) -> Signal:
    """Signal that fires (with a list of results) when every waitable has.

    Accepts :class:`Signal` and :class:`Process` objects.
    """
    items = list(waitables)
    done = engine.signal("all_of")
    if not items:
        done.fire([])
        return done
    results: List[Any] = [None] * len(items)
    remaining = [len(items)]

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            results[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                done.fire(list(results))

        return callback

    for i, item in enumerate(items):
        item.add_callback(make_callback(i))
    return done


def first_of(engine: Engine, waitables: Iterable[Any]) -> Signal:
    """Signal that fires with ``(index, value)`` of the first waitable.

    Later finishers are ignored (their callbacks find the race already
    decided).  This is the primitive behind every wait-with-timeout: race
    the interesting signal against a timer.

    ``first_of`` never cancels the losers itself — a loser may be shared
    (the completion signal of a chain that outlives one timeout round) —
    but a caller that *owns* a losing :class:`Signal` should
    :meth:`~Signal.cancel` it, or its scheduled events stay in the heap
    and pad drain-mode runs to the timer's full expiry.
    """
    items = list(waitables)
    if not items:
        raise SimulationError("first_of needs at least one waitable")
    done = engine.signal("first_of")

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            if not done.fired:
                done.fire((index, value))

        return callback

    for i, item in enumerate(items):
        item.add_callback(make_callback(i))
    return done
