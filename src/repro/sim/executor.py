"""Multi-engine execution: run independent simulations across fork workers.

The experiment sweeps are embarrassingly parallel at the *engine*
granularity: fig7 builds 28 independent rigs (one per measurement
point), fig9 builds 36, and every point constructs its own
:class:`~repro.sim.core.Engine` from scratch.  The event loop itself is
single-threaded by design — event order *is* the model — so the way to
use more than one core is to run whole engines side by side, exactly
like the suite's sharded ``tca-bench suite --shards N`` mode.

:class:`MultiEngineExecutor` does that for in-process sweeps:

* tasks are sharded with the suite's deterministic LPT heuristic
  (:func:`repro.bench.jobs.lpt_shards`), weighted by a caller-supplied
  cost hint so a few heavy points do not serialize the run;
* one **fork** worker per shard runs its tasks in order on fresh
  engines and ships the picklable results (plus an event/engine tally)
  back over a private pipe — the same no-shared-channel rule the suite
  supervisor follows, so one dying child cannot wedge the rest;
* the parent reassembles results in *task order*, which keeps every
  consumer byte-identical to the inline run: each task builds its own
  engine, so nothing about *where* it ran can change its numbers.

Workers resolve as: explicit argument, else the ``TCA_ENGINE_WORKERS``
environment variable, else 1 (inline).  ``workers <= 1`` short-circuits
to a plain loop with zero multiprocessing machinery, so the default
path is exactly the historical one.

Because forked children construct their engines out of the parent's
sight, the wall-clock harness cannot count their events through
:func:`~repro.sim.core.register_engine_observer`.  Children therefore
report ``(events_processed, engines)`` alongside their results, the
parent accrues the tallies here, and ``tca-bench perf`` drains them via
:func:`consume_stats` — keeping its "bare events == instrumented
events" invariant true under any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.core import register_engine_observer, unregister_engine_observer

#: Environment default for :class:`MultiEngineExecutor` worker count.
WORKERS_ENV = "TCA_ENGINE_WORKERS"

_stats_lock = threading.Lock()
_pending_events = 0
_pending_engines = 0


def _credit_stats(events: int, engines: int) -> None:
    global _pending_events, _pending_engines
    with _stats_lock:
        _pending_events += events
        _pending_engines += engines


def consume_stats() -> Tuple[int, int]:
    """Drain the fork-worker ``(events, engines)`` tally accrued so far.

    Destructive read: the caller (the perf harness) snapshots around a
    timed region, so every child-side event is attributed exactly once.
    """
    global _pending_events, _pending_engines
    with _stats_lock:
        taken = (_pending_events, _pending_engines)
        _pending_events = 0
        _pending_engines = 0
    return taken


def default_workers() -> int:
    """Worker count from ``TCA_ENGINE_WORKERS`` (1 = inline, the default)."""
    raw = os.environ.get(WORKERS_ENV)
    if raw is None or not raw.strip():
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}") from None
    if workers < 0:
        raise ConfigError(f"{WORKERS_ENV} must be >= 0, got {workers}")
    return workers


def set_default_workers(workers: Optional[int]) -> None:
    """Set (or, with ``None``, clear) the environment worker default.

    Exposed for the CLI's ``--engine-workers`` flag; stored in the
    environment so forked suite workers inherit it too.
    """
    if workers is None:
        os.environ.pop(WORKERS_ENV, None)
        return
    if workers < 0:
        raise ConfigError(f"engine workers must be >= 0, got {workers}")
    os.environ[WORKERS_ENV] = str(workers)


def _shard_main(conn, fn: Callable[[Any], Any],
                tasks: Sequence[Any]) -> None:  # pragma: no cover - child
    """Fork-worker body: run one shard's tasks, report results + tally.

    Counts every engine the tasks construct via the observer hook (the
    child inherited the parent's observer list, but the parent's
    callbacks only mutate parent-side state that dies with this copy;
    our own observer is registered fresh here).  Exits via ``os._exit``
    so the child never runs the parent's atexit machinery.
    """
    code = 0
    engines: List[Any] = []
    register_engine_observer(engines.append)
    try:
        results = [fn(task) for task in tasks]
        conn.send(("ok", results,
                   sum(e.events_processed for e in engines), len(engines)))
    except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
        code = 1
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
    os._exit(code)


class MultiEngineExecutor:
    """Run independent engine-building tasks across fork workers.

    ``executor.map(fn, tasks)`` returns ``[fn(t) for t in tasks]`` — same
    values, same order — computed on up to ``workers`` forked children.
    ``fn`` must build everything it needs (rigs, engines) inside the
    call and return something picklable; tasks must not share live
    simulation state, which every sweep in :mod:`repro.bench` already
    guarantees by constructing a fresh rig per point.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is None:
            workers = default_workers()
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any],
            cost: Optional[Callable[[Any], float]] = None) -> List[Any]:
        """Apply ``fn`` to every task; results come back in task order.

        ``cost`` is the LPT weight hint (uniform when omitted).  With an
        effective worker count of one — or when ``fork`` is unavailable
        on this platform — the tasks run inline in the calling process.
        """
        tasks = list(tasks)
        workers = min(self.workers, len(tasks))
        if (workers <= 1
                or "fork" not in multiprocessing.get_all_start_methods()):
            return [fn(task) for task in tasks]

        from repro.bench.jobs import lpt_shards

        costs = ([1.0] * len(tasks) if cost is None
                 else [float(cost(task)) for task in tasks])
        shards = lpt_shards(costs, workers)

        ctx = multiprocessing.get_context("fork")
        children = []
        try:
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_shard_main,
                    args=(child_conn, fn, [tasks[i] for i in shard]),
                    name=f"tca-engine-worker-{len(children)}")
                proc.start()
                child_conn.close()  # parent keeps only the read end
                children.append((shard, parent_conn, proc))

            out: List[Any] = [None] * len(tasks)
            events = engines = 0
            failures: List[str] = []
            for shard, parent_conn, proc in children:
                try:
                    message = parent_conn.recv()
                except EOFError:
                    message = ("error", "worker died before reporting")
                if message[0] == "ok":
                    _, results, shard_events, shard_engines = message
                    for index, result in zip(shard, results):
                        out[index] = result
                    events += shard_events
                    engines += shard_engines
                else:
                    failures.append(message[1])
            if failures:
                raise SimulationError(
                    "engine worker failed: " + "; ".join(failures))
            _credit_stats(events, engines)
            return out
        finally:
            for _, parent_conn, proc in children:
                parent_conn.close()
                proc.join(timeout=30.0)
                if proc.is_alive():  # pragma: no cover - hung child
                    proc.kill()
                    proc.join()
