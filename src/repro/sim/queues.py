"""Blocking FIFO queues and counted resources for hardware models.

:class:`Store` models a buffer between a producer and a consumer (e.g. a
link's transmit queue); :class:`Resource` models a pool of identical
execution slots (e.g. the maximum number of outstanding PCIe read requests
a completer allows).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.core import Engine, Signal


class Store:
    """FIFO queue with optional capacity; puts and gets return signals.

    ``put`` returns a signal that fires when the item has been accepted
    (immediately if below capacity).  ``get`` returns a signal that fires
    with the next item.  Ordering is strictly FIFO for both sides.
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        # Signal names are built once here, not per operation: puts and
        # gets run once per TLP, and the f-string shows up in profiles.
        self._put_name = f"{name}.put"
        self._get_name = f"{name}.get"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[tuple] = deque()  # (signal, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining capacity, or None if unbounded."""
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    def put(self, item: Any) -> Signal:
        """Offer an item; the returned signal fires once it is enqueued."""
        if self._getters:
            # Hand the item straight to the oldest waiting getter.  The
            # accepted signal is born fired — nobody can have waited on a
            # signal that does not exist yet, so this is exactly
            # ``Signal(...)`` + ``fire()`` minus two calls per put.
            self._getters.popleft().fire(item)
            return Signal.fired_signal(self.engine, self._put_name)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return Signal.fired_signal(self.engine, self._put_name)
        accepted = Signal(self.engine, self._put_name)
        self._putters.append((accepted, item))
        return accepted

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().fire(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Signal:
        """Request the next item; the returned signal fires with it."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                self._admit_waiting_putter()
            return Signal.fired_signal(self.engine, self._get_name, item)
        got = Signal(self.engine, self._get_name)
        self._getters.append(got)
        return got

    def try_get(self) -> tuple:
        """Non-blocking get; returns (True, item) or (False, None)."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_waiting_putter()
        return True, item

    def _admit_waiting_putter(self) -> None:
        if self._putters and (self.capacity is None
                              or len(self._items) < self.capacity):
            accepted, item = self._putters.popleft()
            self._items.append(item)
            accepted.fire()


class Latch:
    """Countdown latch: wait until the in-flight count drains to zero.

    Used as a DMA scoreboard — every issued read increments, every arrived
    completion decrements, and the chain-completion logic waits for zero.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._zero_name = f"{name}.zero"
        self.count = 0
        self._waiters: Deque[Signal] = deque()

    def up(self, n: int = 1) -> None:
        """Add ``n`` in-flight items."""
        if n < 0:
            raise SimulationError("latch increment must be non-negative")
        self.count += n

    def down(self, n: int = 1) -> None:
        """Retire ``n`` items; wakes waiters at zero."""
        self.count -= n
        if self.count < 0:
            raise SimulationError(f"latch {self.name!r} went negative")
        if self.count == 0:
            waiters, self._waiters = self._waiters, deque()
            for waiter in waiters:
                waiter.fire()

    def wait_zero(self) -> Signal:
        """Signal that fires when the count is (or becomes) zero."""
        if self.count == 0:
            return Signal.fired_signal(self.engine, self._zero_name)
        done = self.engine.signal(self._zero_name)
        self._waiters.append(done)
        return done


class Resource:
    """A pool of ``capacity`` identical slots with FIFO acquisition.

    ``acquire`` returns a signal that fires when a slot is granted;
    ``release`` frees a slot and wakes the oldest waiter.
    """

    def __init__(self, engine: Engine, capacity: int, name: str = ""):
        if capacity <= 0:
            raise SimulationError("resource capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._acquire_name = f"{name}.acquire"
        self.in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def available(self) -> int:
        """Number of free slots right now."""
        return self.capacity - self.in_use

    def acquire(self) -> Signal:
        """Request a slot; the returned signal fires once granted."""
        if self.in_use < self.capacity:
            self.in_use += 1
            return Signal.fired_signal(self.engine, self._acquire_name)
        granted = Signal(self.engine, self._acquire_name)
        self._waiters.append(granted)
        return granted

    def release(self) -> None:
        """Free a slot previously granted by :meth:`acquire`."""
        if self.in_use <= 0:
            raise SimulationError(f"resource {self.name!r} released too often")
        if self._waiters:
            # Hand the slot directly to the oldest waiter.
            self._waiters.popleft().fire()
        else:
            self.in_use -= 1
