"""Deterministic discrete-event simulation kernel.

Everything in the reproduction — PCIe links, DMA engines, the PEACH2
crossbar, InfiniBand baselines — runs on this kernel.  Time is integer
picoseconds; events with equal timestamps fire in scheduling order, so a
simulation is a pure function of its inputs (bit-reproducible runs).

The programming model is a small subset of the SimPy idea: a *process* is a
Python generator that yields :class:`Delay`, :class:`Signal` or another
:class:`Process` and is resumed by the :class:`Engine` when the awaited
thing happens.
"""

from repro.sim.core import Delay, Engine, Process, Signal, all_of
from repro.sim.queues import Latch, Resource, Store
from repro.sim.trace import Tracer

__all__ = [
    "Delay",
    "Engine",
    "Process",
    "Signal",
    "all_of",
    "Latch",
    "Resource",
    "Store",
    "Tracer",
]
