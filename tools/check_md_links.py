#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Validates every inline link in the scanned files:

* relative paths must exist on disk (anchored at the linking file's
  directory, or at the repo root for absolute-style ``/path`` links);
* ``#fragment`` parts — same-file or cross-file — must match a heading
  in the target markdown file (GitHub slugification);
* external schemes (http, https, mailto) are ignored: this checker is
  offline and cares about repo-internal rot only.

Run:  python tools/check_md_links.py          (from the repo root)
Exits non-zero and lists every broken link.  CI runs this plus the
mirror test in tests/docs/test_md_links.py.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` — ignores images' leading ``!`` by matching it away.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
EXTERNAL = re.compile(r"^[a-z][a-z0-9+.-]*:", re.IGNORECASE)
CODE_FENCE = re.compile(r"^(```|~~~)")


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, dashes."""
    text = heading.strip().lower()
    # Drop inline-code backticks and link syntax, keep the text.
    text = text.replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    slugs, counts = set(), {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> List[str]:
    problems = []
    for lineno, target in iter_links(path):
        if EXTERNAL.match(target):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (REPO_ROOT / base.lstrip("/") if base.startswith("/")
                        else path.parent / base)
            try:
                resolved = resolved.resolve()
                resolved.relative_to(REPO_ROOT)
            except ValueError:
                problems.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                f"link escapes the repo: {target}")
                continue
            if not resolved.exists():
                problems.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                f"missing file: {target}")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue  # fragment into non-markdown: not checkable
            if fragment.lower() not in heading_slugs(resolved):
                problems.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: "
                                f"missing anchor: {target}")
    return problems


def main(argv: List[str]) -> int:
    files = ([Path(a).resolve() for a in argv] if argv else default_files())
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(f.relative_to(REPO_ROOT)) for f in files)
    if problems:
        print(f"{len(problems)} broken link(s) in: {checked}",
              file=sys.stderr)
        return 1
    print(f"all links OK in: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
