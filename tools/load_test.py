#!/usr/bin/env python3
"""Standalone wrapper for the serve load test.

Equivalent to ``tca-bench serve-bench``; kept as a tool so the harness
can be pointed at the repo without installing the console script::

    python tools/load_test.py --requests 5000 --concurrency 64 \
        --assert-speedup 100

See docs/serving.md for what the two phases prove and how to read the
output document (``tca-bench-serve-bench/1``).
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv=None) -> int:
    from repro.bench.cli import main as cli_main

    return cli_main(["serve-bench"] + list(argv or sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main())
