"""Unit tests for the CUDA-like runtime."""

import numpy as np
import pytest

from repro.cuda.pointer import CU_POINTER_ATTRIBUTE_P2P_TOKENS, DevicePtr
from repro.cuda.runtime import CudaContext, CudaParams
from repro.errors import CudaError
from repro.units import us


@pytest.fixture
def cuda(node):
    return CudaContext(node)


class TestAllocation:
    def test_cu_mem_alloc_bounds(self, cuda, node):
        ptr = cuda.cu_mem_alloc(0, 4096)
        assert ptr.gpu is node.gpus[0]
        assert ptr.nbytes == 4096

    def test_allocations_do_not_overlap(self, cuda):
        a = cuda.cu_mem_alloc(0, 1000)
        b = cuda.cu_mem_alloc(0, 1000)
        assert b.offset >= a.offset + 1000

    def test_out_of_memory(self, cuda, node):
        size = node.gpus[0].params.memory_bytes
        cuda.cu_mem_alloc(0, size - 4096)
        with pytest.raises(CudaError, match="out of device memory"):
            cuda.cu_mem_alloc(0, 2 * 4096)

    def test_bad_gpu_index(self, cuda):
        with pytest.raises(CudaError):
            cuda.cu_mem_alloc(9, 16)

    def test_pointer_arithmetic(self, cuda):
        ptr = cuda.cu_mem_alloc(0, 100)
        shifted = ptr + 60
        assert shifted.offset == ptr.offset + 60
        assert shifted.nbytes == 40
        with pytest.raises(CudaError):
            ptr + 101

    def test_span_check(self, cuda):
        ptr = cuda.cu_mem_alloc(0, 64)
        ptr.check_span(64)
        with pytest.raises(CudaError):
            ptr.check_span(65)


class TestTokens:
    def test_p2p_token_carries_identity(self, cuda, node):
        ptr = cuda.cu_mem_alloc(1, 8192)
        token = cuda.cu_pointer_get_attribute(
            CU_POINTER_ATTRIBUTE_P2P_TOKENS, ptr)
        assert token.gpu_name == node.gpus[1].name
        assert token.offset == ptr.offset and token.nbytes == 8192

    def test_unknown_attribute(self, cuda):
        ptr = cuda.cu_mem_alloc(0, 16)
        with pytest.raises(CudaError):
            cuda.cu_pointer_get_attribute("NOPE", ptr)


class TestCopies:
    def test_htod_dtoh_roundtrip(self, cuda, node, rng):
        data = rng.integers(0, 256, 8192, dtype=np.uint8)
        host_src = node.dram_alloc(16384)
        host_dst = node.dram_alloc(16384)
        node.dram.cpu_write(host_src, data)
        ptr = cuda.cu_mem_alloc(0, 8192)
        engine = node.engine
        engine.run_process(cuda.memcpy_htod(ptr, host_src, 8192))
        assert np.array_equal(cuda.download(ptr, 8192), data)
        engine.run_process(cuda.memcpy_dtoh(host_dst, ptr, 8192))
        engine.run()
        assert np.array_equal(node.dram.cpu_read(host_dst, 8192), data)

    def test_memcpy_pays_launch_overhead(self, node):
        cuda = CudaContext(node, CudaParams(memcpy_overhead_ps=us(8)))
        host = node.dram_alloc(4096)
        ptr = cuda.cu_mem_alloc(0, 64)
        start = node.engine.now_ps
        node.engine.run_process(cuda.memcpy_htod(ptr, host, 64))
        assert node.engine.now_ps - start >= us(8)

    def test_memcpy_peer_within_node(self, cuda, node, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8)
        src = cuda.cu_mem_alloc(0, 4096)
        dst = cuda.cu_mem_alloc(1, 4096)
        cuda.upload(src, data)
        node.engine.run_process(cuda.memcpy_peer(dst, src, 4096))
        node.engine.run()
        assert np.array_equal(cuda.download(dst, 4096), data)

    def test_memcpy_peer_same_gpu_rejected(self, cuda, node):
        a = cuda.cu_mem_alloc(0, 64)
        b = cuda.cu_mem_alloc(0, 64)

        def run():
            yield node.engine.process(cuda.memcpy_peer(a, b, 64))

        with pytest.raises(CudaError):
            node.engine.run_process(run())

    def test_upload_download_backdoor(self, cuda, rng):
        ptr = cuda.cu_mem_alloc(0, 256)
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        cuda.upload(ptr, data)
        assert np.array_equal(cuda.download(ptr, 256), data)

    def test_upload_overrun_rejected(self, cuda):
        ptr = cuda.cu_mem_alloc(0, 16)
        with pytest.raises(CudaError):
            cuda.upload(ptr, np.zeros(17, dtype=np.uint8))
